//! Per-address predictability classes (paper §4): classify every branch of
//! a benchmark as ideal-static / loop / repeating-pattern / non-repeating,
//! and show an exemplar of each class.
//!
//! ```text
//! cargo run --release --example classify_branches [benchmark]
//! ```

use correlation_predictability::core::{Classifier, ClassifierConfig, PaClass};
use correlation_predictability::trace::BranchProfile;
use correlation_predictability::workloads::{Benchmark, WorkloadConfig};

fn main() {
    let benchmark: Benchmark = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("benchmark name"))
        .unwrap_or(Benchmark::M88ksim);

    let cfg = WorkloadConfig::default().with_target(150_000);
    println!("generating {benchmark}...");
    let trace = benchmark.generate(&cfg);
    let profile = BranchProfile::of(&trace);

    let classification = Classifier::classify(&trace, &ClassifierConfig::default());
    let dist = classification.dynamic_distribution();

    println!("\nclass distribution (dynamically weighted):");
    for class in PaClass::ALL {
        println!("  {:<22} {:>5.1}%", class.label(), dist[&class] * 100.0);
    }
    println!(
        "  of the ideal-static class, {:.0}% of dynamic branches are >99% biased",
        classification.static_class_bias_fraction(&profile, 0.99) * 100.0
    );

    println!("\nexemplars (heaviest branch of each class):");
    for class in PaClass::ALL {
        let best = classification
            .iter()
            .filter(|(_, s)| s.class() == class)
            .max_by_key(|(_, s)| s.executions);
        match best {
            Some((pc, s)) => {
                let pct = |correct: u64| correct as f64 / s.executions as f64 * 100.0;
                println!(
                    "  {:<22} {pc:#x}: {} execs | static {:.1}% loop {:.1}% \
                     repeat {:.1}% (best k={}) pas {:.1}%",
                    class.label(),
                    s.executions,
                    pct(s.static_correct),
                    pct(s.loop_correct),
                    pct(s.repeating_correct()),
                    s.best_period,
                    pct(s.pas_correct),
                );
            }
            None => println!("  {:<22} (no branch in this class)", class.label()),
        }
    }
}

//! Does the oracle's choice of correlated branches *generalize*?
//!
//! The paper's selective-history predictor is an oracle: it picks each
//! branch's most important correlated instances a posteriori, on the same
//! trace it is scored on. This example splits a workload trace in half,
//! lets the oracle choose tags on the **training** half, then runs the
//! *runtime* [`SelectivePredictor`] on the **test** half — measuring how
//! much of the oracle's advantage survives out-of-sample, with gshare as
//! the reference on both halves.
//!
//! ```text
//! cargo run --release --example selective_live [benchmark]
//! ```

use correlation_predictability::core::{OracleConfig, OracleSelector, SelectivePredictor};
use correlation_predictability::predictors::{simulate, Gshare};
use correlation_predictability::workloads::{Benchmark, WorkloadConfig};

fn main() {
    let benchmark: Benchmark = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("benchmark name"))
        .unwrap_or(Benchmark::Gcc);

    let cfg = WorkloadConfig::default().with_target(200_000);
    println!("generating {benchmark}...");
    let full = benchmark.generate(&cfg);
    let mid = full.len() / 2;
    let train = full.slice(0, mid);
    let test = full.slice(mid, full.len());

    let oracle_cfg = OracleConfig::default();
    println!("choosing correlated branches on the first half...");
    let oracle = OracleSelector::analyze(&train, &oracle_cfg);

    println!("\n{:<28} {:>9} {:>9}", "", "train", "test");
    for k in 1..=3 {
        // In-sample: the oracle's own score. Out-of-sample: a fresh
        // runtime selective predictor over the unseen half.
        let train_acc = oracle.accuracy(k);
        let mut live = SelectivePredictor::from_oracle(&oracle, k, &oracle_cfg);
        let test_acc = simulate(&mut live, &test).accuracy();
        println!(
            "{:<28} {:>8.2}% {:>8.2}%",
            format!("selective history ({k} tag)"),
            train_acc * 100.0,
            test_acc * 100.0
        );
    }
    let gshare_train = simulate(&mut Gshare::default(), &train).accuracy();
    let gshare_test = simulate(&mut Gshare::default(), &test).accuracy();
    println!(
        "{:<28} {:>8.2}% {:>8.2}%",
        "gshare (for reference)",
        gshare_train * 100.0,
        gshare_test * 100.0
    );
    println!(
        "\nIf the test column tracks the train column, the oracle's tag\n\
         choices reflect stable program structure rather than overfitting."
    );
}

//! Quickstart: generate a synthetic workload and race the classic
//! predictors on it.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark] [branches]
//! ```

use correlation_predictability::core::CostModel;
use correlation_predictability::predictors::{
    simulate, BackwardTaken, Gshare, Hybrid, IdealStatic, Pas, Predictor, Smith, StaticTaken,
};
use correlation_predictability::trace::BranchProfile;
use correlation_predictability::workloads::{Benchmark, WorkloadConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let benchmark: Benchmark = args
        .next()
        .map(|s| s.parse().expect("benchmark name (e.g. gcc, go, perl)"))
        .unwrap_or(Benchmark::Gcc);
    let target: usize = args
        .next()
        .map(|s| s.parse().expect("branch count"))
        .unwrap_or(200_000);

    let cfg = WorkloadConfig::default().with_target(target);
    println!("generating {benchmark} (~{target} conditional branches)...");
    let trace = benchmark.generate(&cfg);
    let profile = BranchProfile::of(&trace);
    println!(
        "{} dynamic conditional branches over {} static sites\n",
        profile.dynamic_count(),
        profile.static_count()
    );

    // Every predictor starts cold and is trained in trace order, exactly
    // like the paper's trace-driven simulator.
    let mut predictors: Vec<Box<dyn Predictor>> = vec![
        Box::new(StaticTaken),
        Box::new(BackwardTaken),
        Box::new(IdealStatic::from_profile(&profile)),
        Box::new(Smith::default()),
        Box::new(Gshare::default()),
        Box::new(Pas::default()),
        Box::new(Hybrid::new(Gshare::default(), Pas::default(), 12)),
    ];

    let cost = CostModel::default();
    println!(
        "{:<34} {:>8} {:>8} {:>9}",
        "predictor", "accuracy", "MPKB", "est. CPI"
    );
    for predictor in &mut predictors {
        let stats = simulate(predictor.as_mut(), &trace);
        println!(
            "{:<34} {:>7.2}% {:>8.1} {:>9.3}",
            predictor.name(),
            stats.accuracy_pct(),
            CostModel::mpkb(&stats),
            cost.cpi(&stats),
        );
    }
}

//! Bring your own program: instrument ordinary Rust control flow with the
//! [`Recorder`], then analyze its branches with the full toolkit — the same
//! flow the synthetic workloads use internally.
//!
//! The instrumented program here is a tiny sieve + binary-search mix; every
//! `if`/`while` reports its decision to the recorder.
//!
//! ```text
//! cargo run --release --example instrument_your_own
//! ```

use correlation_predictability::core::{Classifier, ClassifierConfig, PaClass};
use correlation_predictability::predictors::{simulate, Gshare, LoopPredictor, Pas};
use correlation_predictability::trace::{Recorder, Trace, TraceStats};

// Branch site addresses for the instrumented program (any distinct values).
const PC_SIEVE_OUTER: u64 = 0x100;
const PC_SIEVE_IS_PRIME: u64 = 0x104;
const PC_SIEVE_MARK_LOOP: u64 = 0x108;
const PC_SEARCH_GO_RIGHT: u64 = 0x10c;
const PC_SEARCH_LOOP: u64 = 0x110;
const PC_SEARCH_FOUND: u64 = 0x114;

/// Sieve of Eratosthenes, instrumented.
fn sieve(rec: &mut Recorder, n: usize) -> Vec<usize> {
    let mut composite = vec![false; n];
    let mut primes = Vec::new();
    for i in 2..n {
        if rec.cond(PC_SIEVE_IS_PRIME, !composite[i]) {
            primes.push(i);
            let mut j = i * i;
            while j < n {
                composite[j] = true;
                j += i;
                rec.loop_back(PC_SIEVE_MARK_LOOP, j < n);
            }
        }
        rec.loop_back(PC_SIEVE_OUTER, i + 1 < n);
    }
    primes
}

/// Binary search over the primes, instrumented.
fn search(rec: &mut Recorder, primes: &[usize], needle: usize) -> bool {
    let (mut lo, mut hi) = (0usize, primes.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if rec.cond(PC_SEARCH_GO_RIGHT, primes[mid] < needle) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
        rec.loop_back(PC_SEARCH_LOOP, lo < hi);
    }
    let found = lo < primes.len() && primes[lo] == needle;
    rec.cond(PC_SEARCH_FOUND, found);
    found
}

fn main() {
    let mut rec = Recorder::new();
    let primes = sieve(&mut rec, 3_000);
    let mut hits = 0;
    for k in 0..5_000 {
        // A deterministic pseudo-random probe stream.
        let needle = (k * 2654435761u64 % 3_000) as usize;
        if search(&mut rec, &primes, needle) {
            hits += 1;
        }
    }
    let trace: Trace = rec.into_trace();

    let stats = TraceStats::of(&trace);
    println!(
        "instrumented program: {} dynamic branches over {} sites ({} primes, {hits} probe hits)\n",
        stats.dynamic_conditional,
        stats.static_conditional,
        primes.len()
    );

    for (name, acc) in [
        (
            "gshare(16)",
            simulate(&mut Gshare::default(), &trace).accuracy(),
        ),
        ("pas", simulate(&mut Pas::default(), &trace).accuracy()),
        (
            "loop",
            simulate(&mut LoopPredictor::new(), &trace).accuracy(),
        ),
    ] {
        println!("{name:<12} {:.2}%", acc * 100.0);
    }

    let classes = Classifier::classify(&trace, &ClassifierConfig::default());
    let dist = classes.dynamic_distribution();
    println!("\nper-address classes of your program's branches:");
    for class in PaClass::ALL {
        println!("  {:<22} {:>5.1}%", class.label(), dist[&class] * 100.0);
    }
}

//! Correlation explorer (paper §3): run the oracle selective-history
//! analysis on a benchmark and show, for the branches with the strongest
//! correlations, *which* prior branch instances predict them.
//!
//! ```text
//! cargo run --release --example correlation_explorer [benchmark]
//! ```

use correlation_predictability::core::{OracleConfig, OracleSelector};
use correlation_predictability::trace::TagScheme;
use correlation_predictability::workloads::{Benchmark, WorkloadConfig};

fn main() {
    let benchmark: Benchmark = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("benchmark name"))
        .unwrap_or(Benchmark::Gcc);

    let cfg = WorkloadConfig::default().with_target(120_000);
    println!("generating {benchmark}...");
    let trace = benchmark.generate(&cfg);

    let oracle_cfg = OracleConfig::default();
    println!(
        "oracle selective-history analysis (window {}, greedy search)...\n",
        oracle_cfg.window
    );
    let oracle = OracleSelector::analyze(&trace, &oracle_cfg);

    println!(
        "selective-history accuracy: 1 tag {:.2}%, 2 tags {:.2}%, 3 tags {:.2}%\n",
        oracle.accuracy(1) * 100.0,
        oracle.accuracy(2) * 100.0,
        oracle.accuracy(3) * 100.0
    );

    // Branches where adding correlated instances helps the most: the gap
    // between the 3-tag and 0-information view of the branch.
    let mut rows: Vec<_> = oracle
        .iter()
        .filter(|(_, sel)| sel.executions >= 500)
        .map(|(pc, sel)| {
            let acc = |k: usize| sel.best[k - 1].correct as f64 / sel.executions as f64;
            (pc, sel, acc(3) - acc(1))
        })
        .collect();
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));

    println!("branches gaining most from multi-branch correlation:");
    for (pc, sel, gain) in rows.iter().take(8) {
        let acc = |k: usize| sel.best[k - 1].correct as f64 / sel.executions as f64 * 100.0;
        println!(
            "  branch {pc:#x} ({} execs): 1-tag {:.1}% -> 3-tag {:.1}% (+{:.1}pp)",
            sel.executions,
            acc(1),
            acc(3),
            gain * 100.0
        );
        for tag in &sel.best[2].tags {
            let scheme = match tag.scheme {
                TagScheme::Occurrence => "occurrence",
                TagScheme::Iteration => "iteration",
            };
            println!(
                "      correlated with {:#x} [{scheme} #{}]",
                tag.pc, tag.index
            );
        }
    }
}

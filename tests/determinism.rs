//! Golden-value regression tests.
//!
//! The workloads were *calibrated* against the paper's Tables 2 and 3
//! (DESIGN.md §7); that calibration is the most fragile asset in the
//! repository. These tests pin exact trace lengths and predictor correct
//! counts for the default seed, so any change that silently shifts a
//! workload's branch behavior — a refactor, a dependency bump, an
//! "equivalent" RNG call reordering — fails loudly instead of quietly
//! degrading the reproduction.
//!
//! If a change is *supposed* to alter a workload, regenerate these values
//! and re-run `repro table2 table3` to confirm the paper shapes still hold
//! (see EXPERIMENTS.md).

use correlation_predictability::predictors::{simulate, Gshare, Pas};
use correlation_predictability::workloads::{Benchmark, WorkloadConfig};

/// (benchmark, conditional count, gshare-correct, pas-correct) at the
/// default seed with a 20k-branch target.
const GOLDEN: [(Benchmark, usize, u64, u64); 8] = [
    (Benchmark::Compress, 35063, 32260, 31914),
    (Benchmark::Gcc, 22542, 19179, 19559),
    (Benchmark::Go, 20576, 16422, 15425),
    (Benchmark::Ijpeg, 23808, 22213, 22586),
    (Benchmark::M88ksim, 20232, 19759, 19755),
    (Benchmark::Perl, 34231, 34150, 34125),
    (Benchmark::Vortex, 20013, 19285, 19394),
    (Benchmark::Xlisp, 20265, 19058, 19708),
];

#[test]
fn workload_traces_and_predictor_scores_are_pinned() {
    let cfg = WorkloadConfig::default().with_target(20_000);
    for (benchmark, count, gshare_correct, pas_correct) in GOLDEN {
        let trace = benchmark.generate(&cfg);
        assert_eq!(
            trace.conditional_count(),
            count,
            "{benchmark}: trace length drifted — workload behavior changed"
        );
        let g = simulate(&mut Gshare::default(), &trace);
        assert_eq!(
            g.correct, gshare_correct,
            "{benchmark}: gshare score drifted — recalibrate and update goldens"
        );
        let p = simulate(&mut Pas::default(), &trace);
        assert_eq!(
            p.correct, pas_correct,
            "{benchmark}: PAs score drifted — recalibrate and update goldens"
        );
    }
}

#[test]
fn seeds_change_traces_but_not_the_shape() {
    // A different seed must give a different trace (no hidden constants)
    // while keeping the benchmark's qualitative difficulty ordering.
    let a = WorkloadConfig::default().with_target(15_000);
    let b = a.with_seed(0xFEED);
    let mut orderings = Vec::new();
    for cfg in [a, b] {
        let go = simulate(&mut Gshare::default(), &Benchmark::Go.generate(&cfg)).accuracy();
        let vortex = simulate(&mut Gshare::default(), &Benchmark::Vortex.generate(&cfg)).accuracy();
        assert!(
            vortex > go,
            "vortex must stay easier than go (seed {:x})",
            cfg.seed
        );
        orderings.push((go, vortex));
    }
    assert_ne!(
        Benchmark::Go.generate(&a),
        Benchmark::Go.generate(&b),
        "different seeds must differ"
    );
}

//! Cross-crate integration: workloads → traces → predictors → analyses,
//! including persistence round-trips.

use correlation_predictability::core::{Classifier, ClassifierConfig};
use correlation_predictability::predictors::{
    simulate, Gshare, GshareInterferenceFree, Hybrid, Pas, PasInterferenceFree,
};
use correlation_predictability::trace::{io, BranchProfile, TraceStats};
use correlation_predictability::workloads::{Benchmark, WorkloadConfig};

fn small_cfg() -> WorkloadConfig {
    WorkloadConfig::default().with_target(15_000)
}

#[test]
fn every_benchmark_generates_deterministically() {
    let cfg = small_cfg();
    for b in Benchmark::ALL {
        let a = b.generate(&cfg);
        let c = b.generate(&cfg);
        assert_eq!(a, c, "{b} not deterministic");
        assert!(
            a.conditional_count() >= cfg.target_branches,
            "{b} too short"
        );
        let stats = TraceStats::of(&a);
        assert!(stats.static_conditional >= 6, "{b}: {stats:?}");
        assert!(stats.backward > 0, "{b} has no loop back-edges");
    }
}

#[test]
fn traces_survive_serialization_with_identical_analysis() {
    let trace = Benchmark::Compress.generate(&small_cfg());
    let mut buf = Vec::new();
    io::write_trace(&mut buf, &trace).expect("encode");
    let back = io::read_trace(buf.as_slice()).expect("decode");
    assert_eq!(back, trace);

    // Analyses on the decoded trace match exactly.
    let a = simulate(&mut Gshare::default(), &trace);
    let b = simulate(&mut Gshare::default(), &back);
    assert_eq!(a, b);
    let pa = BranchProfile::of(&trace);
    let pb = BranchProfile::of(&back);
    assert_eq!(pa.ideal_static_correct(), pb.ideal_static_correct());
}

#[test]
fn hybrid_rivals_its_best_component_everywhere() {
    let cfg = small_cfg();
    for b in Benchmark::ALL {
        let trace = b.generate(&cfg);
        let g = simulate(&mut Gshare::default(), &trace);
        let p = simulate(&mut Pas::default(), &trace);
        let h = simulate(
            &mut Hybrid::new(Gshare::default(), Pas::default(), 12),
            &trace,
        );
        let best = g.accuracy().max(p.accuracy());
        assert!(
            h.accuracy() > best - 0.02,
            "{b}: hybrid {:.3} vs best component {:.3}",
            h.accuracy(),
            best
        );
    }
}

#[test]
fn interference_free_wins_on_aggregate() {
    // Per-benchmark the idealization can tie, but summed over the suite the
    // interference-free predictors must not lose to their aliased twins.
    let cfg = small_cfg();
    let (mut g, mut ig, mut p, mut ip) = (0u64, 0u64, 0u64, 0u64);
    for b in Benchmark::ALL {
        let trace = b.generate(&cfg);
        g += simulate(&mut Gshare::default(), &trace).correct;
        ig += simulate(&mut GshareInterferenceFree::default(), &trace).correct;
        p += simulate(&mut Pas::default(), &trace).correct;
        ip += simulate(&mut PasInterferenceFree::default(), &trace).correct;
    }
    assert!(ig >= g, "IF gshare {ig} vs gshare {g}");
    // IF PAs can lose to PAs through training time (the paper itself shows
    // this for gcc in Table 3) but not by much.
    assert!(ip * 100 >= p * 98, "IF pas {ip} vs pas {p}");
}

#[test]
fn classification_is_stable_across_reruns() {
    let trace = Benchmark::M88ksim.generate(&small_cfg());
    let a = Classifier::classify(&trace, &ClassifierConfig::default());
    let b = Classifier::classify(&trace, &ClassifierConfig::default());
    for (pc, sa) in a.iter() {
        assert_eq!(b.get(pc), Some(sa));
    }
}

#[test]
fn benchmark_names_parse_back() {
    for b in Benchmark::ALL {
        assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
    }
}

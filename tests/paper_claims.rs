//! The paper's qualitative claims, checked end-to-end at reduced scale.
//! Absolute numbers vary with trace length; these assertions pin the
//! *shapes* the reproduction is supposed to preserve.

use correlation_predictability::core::{
    combined_correct, Classifier, ClassifierConfig, OracleConfig, OracleSelector, PaClass,
    PercentileCurve,
};
use correlation_predictability::predictors::{simulate, simulate_per_branch, Gshare, Pas};
use correlation_predictability::workloads::{Benchmark, WorkloadConfig};

fn cfg(n: usize) -> WorkloadConfig {
    WorkloadConfig::default().with_target(n)
}

#[test]
fn go_is_the_hardest_benchmark_for_gshare() {
    let cfg = cfg(20_000);
    let mut accuracies = Vec::new();
    for b in Benchmark::ALL {
        let trace = b.generate(&cfg);
        accuracies.push((b, simulate(&mut Gshare::default(), &trace).accuracy()));
    }
    let (worst, _) = accuracies
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("eight benchmarks");
    assert_eq!(worst, Benchmark::Go, "{accuracies:?}");
    // And the easy end is very predictable.
    for (b, acc) in accuracies {
        if matches!(b, Benchmark::Vortex | Benchmark::M88ksim | Benchmark::Perl) {
            assert!(acc > 0.95, "{b} only {acc}");
        }
    }
}

#[test]
fn single_strongest_correlation_helps_gshare_where_it_matters() {
    // §3.6.3: grafting the 1-branch selective history onto gshare helps —
    // substantially for the large-static-footprint benchmark (gcc).
    let trace = Benchmark::Gcc.generate(&cfg(40_000));
    let gshare = simulate_per_branch(&mut Gshare::default(), &trace);
    let oracle = OracleSelector::analyze(&trace, &OracleConfig::default());
    let combined = combined_correct(&gshare, &oracle.selective_stats(1));
    let gain = combined.accuracy() - gshare.total().accuracy();
    assert!(gain > 0.005, "gcc corr gain only {gain}");
}

#[test]
fn selective_history_of_three_rivals_if_gshare_for_most_benchmarks() {
    // Figure 4's headline: a few oracle-chosen branches carry most of the
    // correlation signal. At reduced scale we require 3-tag selective to be
    // within 4pp of interference-free gshare for at least five benchmarks.
    use correlation_predictability::predictors::GshareInterferenceFree;
    let cfg = cfg(20_000);
    let mut close = 0;
    for b in Benchmark::ALL {
        let trace = b.generate(&cfg);
        let ifg = simulate(&mut GshareInterferenceFree::default(), &trace).accuracy();
        let oracle = OracleSelector::analyze(&trace, &OracleConfig::default());
        if oracle.accuracy(3) + 0.04 >= ifg {
            close += 1;
        }
    }
    assert!(close >= 5, "only {close}/8 benchmarks close");
}

#[test]
fn loop_class_exists_and_loop_predictor_beats_pas_there() {
    // §4.2.2: loop-type branches are better served by a loop predictor
    // than by PAs; m88ksim's guest loop is the canonical case.
    let trace = Benchmark::M88ksim.generate(&cfg(30_000));
    let classification = Classifier::classify(&trace, &ClassifierConfig::default());
    let dist = classification.dynamic_distribution();
    assert!(dist[&PaClass::Loop] > 0.05, "{dist:?}");

    let pas = simulate_per_branch(&mut Pas::default(), &trace);
    let mut pas_on_loop = 0u64;
    let mut loop_on_loop = 0u64;
    for (pc, s) in classification.iter() {
        if s.class() == PaClass::Loop {
            pas_on_loop += pas.get(pc).map_or(0, |st| st.correct);
            loop_on_loop += s.loop_correct;
        }
    }
    assert!(
        loop_on_loop > pas_on_loop,
        "loop {loop_on_loop} vs pas {pas_on_loop}"
    );
}

#[test]
fn both_predictor_families_have_strongholds() {
    // §5.2 / figure 9: there are branches where gshare is much better and
    // branches where PAs is much better — the case for hybrids.
    let trace = Benchmark::Gcc.generate(&cfg(40_000));
    let g = simulate_per_branch(&mut Gshare::default(), &trace);
    let p = simulate_per_branch(&mut Pas::default(), &trace);
    let curve = PercentileCurve::accuracy_difference(&g, &p);
    assert!(
        curve.value_at(5.0) < -1.0,
        "PAs stronghold missing: {}",
        curve.value_at(5.0)
    );
    assert!(
        curve.value_at(95.0) > 1.0,
        "gshare stronghold missing: {}",
        curve.value_at(95.0)
    );
    assert!(curve.loss_if_only_first() > 0.0);
    assert!(curve.loss_if_only_second() > 0.0);
}

#[test]
fn static_class_branches_are_mostly_heavily_biased() {
    // §4.2.1: most branches not better served by any dynamic class are
    // simply very biased.
    let cfg = cfg(20_000);
    let mut biased_weight = 0.0;
    let mut count = 0;
    for b in Benchmark::ALL {
        let trace = b.generate(&cfg);
        let profile = correlation_predictability::trace::BranchProfile::of(&trace);
        let c = Classifier::classify(&trace, &ClassifierConfig::default());
        let frac = c.static_class_bias_fraction(&profile, 0.99);
        if frac > 0.0 {
            biased_weight += frac;
            count += 1;
        }
    }
    assert!(count >= 5, "too few benchmarks with a static class");
    assert!(
        biased_weight / count as f64 > 0.4,
        "mean biased fraction {biased_weight}/{count}"
    );
}

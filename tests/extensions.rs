//! Integration tests for the beyond-the-paper extensions: the predictor
//! zoo on real workloads, out-of-sample selective prediction, micro
//! workloads driving the classifier, and the interference accounting.

use correlation_predictability::core::{
    Classifier, ClassifierConfig, MispredictProfile, OracleConfig, OracleSelector, PaClass,
    SelectivePredictor,
};
use correlation_predictability::predictors::{
    simulate, ClassHybrid, Gag, Gshare, Gskew, InterferenceGshare, Pag, StaticPhtGshare,
};
use correlation_predictability::trace::BranchProfile;
use correlation_predictability::workloads::micro::{MicroPattern, MicroTrace};
use correlation_predictability::workloads::{Benchmark, WorkloadConfig};

#[test]
fn predictor_zoo_runs_on_every_workload() {
    let cfg = WorkloadConfig::default().with_target(8_000);
    for b in Benchmark::ALL {
        let trace = b.generate(&cfg);
        let profile = BranchProfile::of(&trace);
        let n = trace.conditional_count() as u64;
        let results = [
            simulate(&mut Gag::default(), &trace),
            simulate(&mut Pag::default(), &trace),
            simulate(&mut Gskew::default(), &trace),
            simulate(&mut InterferenceGshare::new(12), &trace),
            simulate(
                &mut ClassHybrid::new(Gshare::default(), &profile, 0.95),
                &trace,
            ),
            simulate(&mut StaticPhtGshare::profile(&trace, 12), &trace),
        ];
        for r in results {
            assert_eq!(r.predictions, n, "{b}");
            assert!(r.accuracy() > 0.5, "{b}: {r:?}");
        }
    }
}

#[test]
fn oracle_selections_generalize_out_of_sample() {
    // Train the oracle on the first half of a workload, run the live
    // selective predictor on the second half: it must stay well above the
    // static baseline of the unseen half.
    let cfg = WorkloadConfig::default().with_target(60_000);
    let full = Benchmark::Compress.generate(&cfg);
    let mid = full.len() / 2;
    let train = full.slice(0, mid);
    let test = full.slice(mid, full.len());

    let oracle_cfg = OracleConfig::default();
    let oracle = OracleSelector::analyze(&train, &oracle_cfg);
    let mut live = SelectivePredictor::from_oracle(&oracle, 3, &oracle_cfg);
    let out_of_sample = simulate(&mut live, &test).accuracy();
    let static_floor = BranchProfile::of(&test).ideal_static_accuracy();
    assert!(
        out_of_sample > static_floor,
        "out-of-sample {out_of_sample} vs static {static_floor}"
    );
    // And it retains most of its in-sample level.
    assert!(out_of_sample > oracle.accuracy(3) - 0.03);
}

#[test]
fn micro_patterns_classify_as_designed() {
    // Each isolated micro behavior must land in its §4 class.
    let cases = [
        (MicroPattern::Loop { trip: 30 }, PaClass::Loop),
        (
            MicroPattern::Periodic {
                pattern: vec![true, true, false, true, false],
            },
            PaClass::RepeatingPattern,
        ),
        (
            MicroPattern::Biased { taken_rate: 0.995 },
            PaClass::IdealStatic,
        ),
    ];
    for (pattern, expected) in cases {
        let trace = MicroTrace::new(3).with(pattern.clone()).generate(6_000);
        let classification = Classifier::classify(&trace, &ClassifierConfig::default());
        let base = MicroTrace::base_pc(0);
        let scores = classification.get(base).expect("pattern branch classified");
        assert_eq!(scores.class(), expected, "{pattern:?}: {scores:?}");
    }
}

#[test]
fn micro_correlated_pair_is_found_by_the_oracle() {
    let trace = MicroTrace::new(9)
        .with(MicroPattern::Correlated { distance: 6 })
        .generate(30_000);
    let oracle = OracleSelector::analyze(&trace, &OracleConfig::default());
    let follower = MicroTrace::base_pc(0) + 4;
    let sel = oracle.selection(follower).expect("follower analyzed");
    let acc = sel.best[0].correct as f64 / sel.executions as f64;
    assert!(acc > 0.95, "1-tag accuracy on follower {acc}");
    assert_eq!(sel.best[0].tags[0].pc, MicroTrace::base_pc(0));
}

#[test]
fn interference_accounting_is_consistent_on_workloads() {
    let cfg = WorkloadConfig::default().with_target(20_000);
    let trace = Benchmark::Gcc.generate(&cfg);
    let mut p = InterferenceGshare::new(12);
    let r = simulate(&mut p, &trace);
    let s = p.stats();
    assert_eq!(s.total(), r.predictions);
    assert!(s.interference_rate() > 0.0, "gcc must alias at 2^12");
}

#[test]
fn warmup_profile_agrees_with_simulate() {
    let cfg = WorkloadConfig::default().with_target(10_000);
    let trace = Benchmark::Perl.generate(&cfg);
    let profile = MispredictProfile::measure(&mut Gshare::default(), &trace);
    let plain = simulate(&mut Gshare::default(), &trace);
    assert_eq!(profile.mispredictions(), plain.mispredictions());
    assert!((profile.accuracy() - plain.accuracy()).abs() < 1e-12);
}

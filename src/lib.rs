//! # correlation-predictability
//!
//! A reproduction of **Evers, Patel, Chappell & Patt, "An Analysis of
//! Correlation and Predictability: What Makes Two-Level Branch Predictors
//! Work" (ISCA 1998)** as a production-quality Rust workspace.
//!
//! This umbrella crate re-exports the workspace's library layers:
//!
//! * [`trace`] ([`bp_trace`]) — branch traces, the instrumentation
//!   recorder, path windows and the dual instance-tagging schemes of §3.2.
//! * [`workloads`] ([`bp_workloads`]) — deterministic synthetic analogs of
//!   the eight SPECint95 benchmarks (paper Table 1).
//! * [`predictors`] ([`bp_predictors`]) — every predictor the paper uses:
//!   Smith, GAs, gshare, PAs (plus interference-free variants), path-based,
//!   loop, fixed-length-pattern, block-pattern, ideal static, and hybrids.
//! * [`core`] ([`bp_core`]) — the paper's analyses: oracle selective
//!   histories (§3), per-address predictability classes (§4), and the
//!   global-vs-per-address comparisons (§5).
//! * [`experiments`] ([`bp_experiments`]) — the harness regenerating every
//!   table and figure (run `cargo run --release --bin repro -- all`).
//!
//! # Quickstart
//!
//! ```
//! use correlation_predictability::predictors::{simulate, Gshare, Predictor};
//! use correlation_predictability::workloads::{Benchmark, WorkloadConfig};
//!
//! let cfg = WorkloadConfig::default().with_target(20_000);
//! let trace = Benchmark::Gcc.generate(&cfg);
//! let mut gshare = Gshare::default();
//! let stats = simulate(&mut gshare, &trace);
//! println!("{}: {:.2}%", gshare.name(), stats.accuracy_pct());
//! assert!(stats.accuracy() > 0.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bp_core as core;
pub use bp_experiments as experiments;
pub use bp_predictors as predictors;
pub use bp_trace as trace;
pub use bp_workloads as workloads;

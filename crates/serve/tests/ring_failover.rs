//! Sharded serving end to end, in process: two real daemons, a
//! [`ShardedClient`] routing keys over the consistent-hash ring, a
//! mid-run shard kill with byte-identical failover, and the typed
//! [`ClientError::ShardUnreachable`] once the whole ring is down.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use bp_serve::{
    spawn, Client, ClientError, Response, RetryPolicy, ServerConfig, ServerHandle, ShardedClient,
};

fn unique_seed() -> u64 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    0x5AAD_0000 + u64::from(NEXT.fetch_add(1, Ordering::Relaxed))
}

const TARGET: u64 = 1500;

fn shard() -> ServerHandle {
    spawn(ServerConfig {
        workers: 2,
        queue_capacity: 32,
        quiet: true,
        ..ServerConfig::default()
    })
    .expect("bind 127.0.0.1:0")
}

/// A retry policy that fails over quickly so tests stay fast.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 2,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(20),
        seed: 7,
    }
}

fn output_of(resp: Response) -> String {
    match resp {
        Response::Result { output, .. } => output,
        other => panic!("expected a result, got {other:?}"),
    }
}

#[test]
fn keys_spread_over_both_shards_and_route_deterministically() {
    let (a, b) = (shard(), shard());
    let addrs = vec![a.local_addr().to_string(), b.local_addr().to_string()];
    let mut client = ShardedClient::new(addrs, fast_retry());
    let base = unique_seed() + 0x1000;

    let mut owners = [0usize; 2];
    for i in 0..16 {
        let owner = client
            .owner_of("fig4", base + i, TARGET)
            .expect("two shards, every key has an owner");
        owners[owner] += 1;
        let resp = client
            .eval("fig4", base + i, TARGET, None)
            .expect("fleet is healthy");
        output_of(resp);
    }
    assert!(
        owners[0] > 0 && owners[1] > 0,
        "16 keys all routed to one shard: {owners:?}"
    );

    // The partition is visible server-side: both shards built engines.
    for handle in [&a, &b] {
        let mut c = Client::connect(&handle.local_addr().to_string()).expect("connect");
        match c.stats().expect("stats") {
            Response::Stats { snapshot, .. } => {
                assert!(
                    snapshot.eval.requests > 0,
                    "each shard served part of the key space"
                );
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    a.begin_drain();
    b.begin_drain();
    a.join();
    b.join();
}

#[test]
fn killing_a_shard_fails_over_byte_identically() {
    let (a, b) = (shard(), shard());
    let addrs = vec![a.local_addr().to_string(), b.local_addr().to_string()];
    let mut client = ShardedClient::new(addrs, fast_retry());
    let seed = unique_seed() + 0x2000;

    // Serve once with both shards up and note who owns the key.
    let owner = client
        .owner_of("fig5", seed, TARGET)
        .expect("key has an owner");
    let healthy = output_of(client.eval("fig5", seed, TARGET, None).expect("both up"));

    // Kill the owner mid-run; the ring's next candidate must serve the
    // same key with byte-identical output (it recomputes — different
    // process, same deterministic engine).
    let (victim, survivor) = if owner == 0 { (a, b) } else { (b, a) };
    victim.begin_drain();
    victim.join();

    let after = output_of(
        client
            .eval("fig5", seed, TARGET, None)
            .expect("failover serves the key"),
    );
    assert_eq!(after, healthy, "failover output must be byte-identical");

    // Recovery probing: the survivor answers health checks, the corpse
    // does not.
    let survivor_idx = 1 - owner;
    assert!(client.check(survivor_idx), "survivor passes health check");
    assert!(!client.check(owner), "killed shard fails health check");

    survivor.begin_drain();
    survivor.join();
}

#[test]
fn exhausting_the_ring_is_a_typed_shard_unreachable_error() {
    let (a, b) = (shard(), shard());
    let addrs = vec![a.local_addr().to_string(), b.local_addr().to_string()];
    let mut client = ShardedClient::new(addrs, fast_retry());
    let seed = unique_seed() + 0x3000;

    // Prove the fleet works, then take all of it down.
    output_of(client.eval("fig4", seed, TARGET, None).expect("fleet up"));
    a.begin_drain();
    b.begin_drain();
    a.join();
    b.join();

    match client.eval("fig4", seed, TARGET, None) {
        Err(ClientError::ShardUnreachable { shards, attempts }) => {
            assert_eq!(shards, 2, "both ring candidates were tried");
            assert!(attempts >= 1);
            // The error renders as the documented one-liner.
            let msg = ClientError::ShardUnreachable { shards, attempts }.to_string();
            assert!(msg.starts_with("shard unreachable"), "got: {msg}");
        }
        other => panic!("expected ShardUnreachable, got {other:?}"),
    }
}

#[test]
fn single_shard_ring_degenerates_to_a_plain_client() {
    let a = shard();
    let mut client = ShardedClient::new(vec![a.local_addr().to_string()], RetryPolicy::none());
    let seed = unique_seed() + 0x4000;
    let first = output_of(client.eval("table1", seed, TARGET, None).expect("serves"));
    let again = output_of(client.eval("table1", seed, TARGET, None).expect("serves"));
    assert_eq!(first, again);
    a.begin_drain();
    a.join();
}

//! In-process integration tests for the serving stack: byte-identical
//! outputs vs the direct engine path, warm-cache hits, coalescing,
//! overload shedding, deadlines, trace evaluation, the typed error paths,
//! and graceful drain.
//!
//! Every test binds `127.0.0.1:0` so tests run concurrently without port
//! clashes, and uses small workload targets so the whole file stays fast.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use bp_experiments::{run_experiment, Engine, ExperimentConfig, TraceSet};
use bp_serve::{
    read_frame, run_bench, spawn, write_frame, BenchOptions, Client, ErrorCode, PredictorSpec,
    Response, ServerConfig, ServerHandle, DEFAULT_MAX_FRAME,
};
use bp_trace::{BranchKind, BranchRecord, Trace};
use bp_workloads::WorkloadConfig;

/// Per-test unique seeds so result caches never alias across tests that
/// share a server, while staying deterministic.
fn unique_seed() -> u64 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    0x5EED_0000 + u64::from(NEXT.fetch_add(1, Ordering::Relaxed))
}

fn quiet_server(workers: usize, queue_capacity: usize) -> ServerHandle {
    spawn(ServerConfig {
        workers,
        queue_capacity,
        quiet: true,
        ..ServerConfig::default()
    })
    .expect("bind 127.0.0.1:0")
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(&handle.local_addr().to_string()).expect("connect to test server")
}

const TARGET: u64 = 1500;

#[test]
fn served_output_is_byte_identical_to_direct_engine() {
    let seed = unique_seed();
    let handle = quiet_server(2, 16);
    let mut client = connect(&handle);

    let served = match client.eval("fig4", seed, TARGET, None).expect("eval call") {
        Response::Result { output, cached, .. } => {
            assert!(!cached, "first query computes");
            output
        }
        other => panic!("expected a result, got {other:?}"),
    };

    let workload = WorkloadConfig::default()
        .with_seed(seed)
        .with_target(TARGET as usize);
    let engine = Engine::new(TraceSet::new(workload), 1);
    let cfg = ExperimentConfig {
        workload,
        ..ExperimentConfig::default()
    };
    let direct = run_experiment("fig4", &cfg, &engine).expect("fig4 is a valid id");
    assert_eq!(served, direct, "served output must be byte-identical");

    handle.begin_drain();
    handle.join();
}

#[test]
fn repeated_query_is_a_cache_hit_and_stats_see_it() {
    let seed = unique_seed();
    let handle = quiet_server(2, 16);
    let mut client = connect(&handle);

    let first = match client.eval("fig5", seed, TARGET, None).expect("first eval") {
        Response::Result { output, cached, .. } => {
            assert!(!cached);
            output
        }
        other => panic!("expected a result, got {other:?}"),
    };
    for _ in 0..3 {
        match client.eval("fig5", seed, TARGET, None).expect("warm eval") {
            Response::Result { output, cached, .. } => {
                assert!(cached, "identical repeat must hit the rendered cache");
                assert_eq!(output, first);
            }
            other => panic!("expected a result, got {other:?}"),
        }
    }

    let snapshot = match client.stats().expect("stats call") {
        Response::Stats { snapshot, .. } => snapshot,
        other => panic!("expected stats, got {other:?}"),
    };
    assert_eq!(snapshot.eval.requests, 4);
    assert_eq!(snapshot.eval.ok, 4);
    assert_eq!(snapshot.result_cache_hits, 3);
    assert_eq!(snapshot.engines, 1);
    assert!(snapshot.eval_latency.count >= 4);

    handle.begin_drain();
    handle.join();
}

#[test]
fn identical_inflight_requests_coalesce() {
    let seed = unique_seed();
    // One worker, so the delayed ping keeps the eval queued while the
    // duplicates arrive and attach to the in-flight entry.
    let handle = quiet_server(1, 16);
    let addr = handle.local_addr().to_string();

    let mut pinger = connect(&handle);
    let outputs: Vec<String> = std::thread::scope(|scope| {
        // Occupy the only worker so the eval cannot start yet.
        let pinger = scope.spawn(move || pinger.ping(Some(400)).expect("delayed ping"));
        std::thread::sleep(Duration::from_millis(100));
        let evals: Vec<_> = (0..3)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    match client.eval("table1", seed, TARGET, None).expect("eval") {
                        Response::Result { output, .. } => output,
                        other => panic!("expected a result, got {other:?}"),
                    }
                })
            })
            .collect();
        let outputs = evals
            .into_iter()
            .map(|h| h.join().expect("eval thread"))
            .collect();
        assert!(matches!(
            pinger.join().expect("ping thread"),
            Response::Pong { .. }
        ));
        outputs
    });
    assert!(outputs.windows(2).all(|w| w[0] == w[1]));

    let mut client = connect(&handle);
    let snapshot = match client.stats().expect("stats") {
        Response::Stats { snapshot, .. } => snapshot,
        other => panic!("expected stats, got {other:?}"),
    };
    assert!(
        snapshot.coalesced >= 2,
        "two of the three identical evals must coalesce, saw {}",
        snapshot.coalesced
    );
    assert_eq!(snapshot.eval.ok, 3);

    handle.begin_drain();
    handle.join();
}

#[test]
fn overload_sheds_with_typed_errors() {
    let seed = unique_seed();
    // One worker and a one-slot queue: one job runs, one waits, the next
    // is shed at the door.
    let handle = quiet_server(1, 1);
    let addr = handle.local_addr().to_string();

    std::thread::scope(|scope| {
        let a = addr.clone();
        let busy = scope.spawn(move || {
            let mut c = Client::connect(&a).expect("connect");
            c.ping(Some(500)).expect("ping occupying the worker")
        });
        std::thread::sleep(Duration::from_millis(100));
        let a = addr.clone();
        let queued = scope.spawn(move || {
            let mut c = Client::connect(&a).expect("connect");
            c.ping(Some(500)).expect("ping filling the queue")
        });
        std::thread::sleep(Duration::from_millis(100));

        // Queue full: the eval must be rejected immediately and typed.
        let mut c = Client::connect(&addr).expect("connect");
        match c.eval("fig4", seed, TARGET, None).expect("eval call") {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Overloaded),
            other => panic!("expected overloaded, got {other:?}"),
        }

        assert!(matches!(
            busy.join().expect("busy ping"),
            Response::Pong { .. }
        ));
        assert!(matches!(
            queued.join().expect("queued ping"),
            Response::Pong { .. }
        ));
    });

    let mut client = connect(&handle);
    let snapshot = match client.stats().expect("stats") {
        Response::Stats { snapshot, .. } => snapshot,
        other => panic!("expected stats, got {other:?}"),
    };
    assert!(snapshot.overloaded >= 1);
    assert!(snapshot.eval.errors >= 1);

    handle.begin_drain();
    handle.join();
}

#[test]
fn deadline_exceeded_while_queued() {
    let seed = unique_seed();
    let handle = quiet_server(1, 16);
    let addr = handle.local_addr().to_string();

    std::thread::scope(|scope| {
        let a = addr.clone();
        let busy = scope.spawn(move || {
            let mut c = Client::connect(&a).expect("connect");
            c.ping(Some(400)).expect("ping occupying the worker")
        });
        std::thread::sleep(Duration::from_millis(100));

        // Queued behind a 400ms job with a 50ms deadline: by the time a
        // worker reaches it the deadline has passed, and the computation
        // is skipped in favor of a typed error.
        let mut c = Client::connect(&addr).expect("connect");
        match c.eval("fig4", seed, TARGET, Some(50)).expect("eval call") {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::DeadlineExceeded),
            other => panic!("expected deadline_exceeded, got {other:?}"),
        }
        assert!(matches!(
            busy.join().expect("busy ping"),
            Response::Pong { .. }
        ));
    });

    let mut client = connect(&handle);
    let snapshot = match client.stats().expect("stats") {
        Response::Stats { snapshot, .. } => snapshot,
        other => panic!("expected stats, got {other:?}"),
    };
    assert!(snapshot.deadline_missed >= 1);

    handle.begin_drain();
    handle.join();
}

#[test]
fn invalid_requests_get_typed_errors() {
    let handle = quiet_server(1, 4);
    let mut client = connect(&handle);

    match client
        .eval("no_such_figure", 1, TARGET, None)
        .expect("call")
    {
        Response::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("no_such_figure"));
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
    match client.eval("fig4", 1, 0, None).expect("call") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected bad_request for target 0, got {other:?}"),
    }
    // trace_eval without a configured --trace-dir is refused.
    match client
        .trace_eval("a.bpt", PredictorSpec::Gshare { bits: 10 }, None)
        .expect("call")
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected bad_request, got {other:?}"),
    }

    handle.begin_drain();
    handle.join();
}

#[test]
fn unknown_request_type_and_oversized_frames_are_rejected() {
    let handle = spawn(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        max_frame: 4096,
        quiet: true,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr();

    // An unrecognized type gets a typed `unknown_request` error that still
    // echoes the id, and the connection stays usable.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let payload = br#"{"type": "no_such_thing", "id": 77}"#;
        write_frame(&mut stream, payload, DEFAULT_MAX_FRAME).expect("write");
        let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME)
            .expect("read")
            .expect("response present");
        match Response::decode(&resp).expect("decodes") {
            Response::Error { id, code, .. } => {
                assert_eq!(id, 77);
                assert_eq!(code, ErrorCode::UnknownRequest);
            }
            other => panic!("expected unknown_request, got {other:?}"),
        }
        // Still usable afterwards.
        write_frame(
            &mut stream,
            br#"{"type": "ping", "id": 78}"#,
            DEFAULT_MAX_FRAME,
        )
        .expect("write");
        let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME)
            .expect("read")
            .expect("pong present");
        assert!(matches!(
            Response::decode(&resp).expect("decodes"),
            Response::Pong { id: 78 }
        ));
    }

    // A frame above the server's cap is answered with an error and the
    // connection dropped (the payload is never buffered).
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let huge = vec![b'{'; 8192];
        write_frame(&mut stream, &huge, DEFAULT_MAX_FRAME).expect("client-side write");
        let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME)
            .expect("read")
            .expect("error present");
        match Response::decode(&resp).expect("decodes") {
            Response::Error { code, message, .. } => {
                assert_eq!(code, ErrorCode::BadRequest);
                assert!(message.contains("exceeds"));
            }
            other => panic!("expected bad_request, got {other:?}"),
        }
        // Server closes after an oversized frame.
        assert!(matches!(
            read_frame(&mut stream, DEFAULT_MAX_FRAME),
            Ok(None) | Err(_)
        ));
    }

    handle.begin_drain();
    handle.join();
}

#[test]
fn trace_eval_works_inside_the_sandbox() {
    let dir = std::env::temp_dir().join(format!("bp-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create trace dir");

    // An alternating branch: gshare learns it almost perfectly.
    let records: Vec<BranchRecord> = (0..512)
        .map(|i| BranchRecord {
            pc: 0x40,
            target: 0x80,
            taken: i % 2 == 0,
            kind: BranchKind::Conditional,
        })
        .collect();
    let trace = Trace::from_records(records);
    let mut buf = Vec::new();
    bp_trace::io::write_trace(&mut buf, &trace).expect("encode");
    std::fs::write(dir.join("alt.bpt"), &buf).expect("write trace");
    // A corrupt file: valid magic prefix, then a mid-record cut.
    std::fs::write(dir.join("cut.bpt"), &buf[..buf.len() - 3]).expect("write corrupt trace");

    let handle = spawn(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        trace_dir: Some(dir.clone()),
        quiet: true,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = connect(&handle);

    match client
        .trace_eval("alt.bpt", PredictorSpec::Gshare { bits: 10 }, None)
        .expect("call")
    {
        Response::TraceResult {
            predictions,
            correct,
            ..
        } => {
            assert_eq!(predictions, 512);
            assert!(
                correct >= 500,
                "gshare must learn an alternating branch, got {correct}/512"
            );
        }
        other => panic!("expected a trace result, got {other:?}"),
    }

    // Corruption surfaces as a typed bad_trace error, not a dead worker.
    match client
        .trace_eval("cut.bpt", PredictorSpec::Pas, None)
        .expect("call")
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadTrace),
        other => panic!("expected bad_trace, got {other:?}"),
    }
    // And the worker is still alive for the next request.
    match client
        .trace_eval("alt.bpt", PredictorSpec::IfGshare { bits: 8 }, None)
        .expect("call")
    {
        Response::TraceResult { predictions, .. } => assert_eq!(predictions, 512),
        other => panic!("expected a trace result, got {other:?}"),
    }

    // Escape attempts are refused at admission.
    for path in ["../alt.bpt", "/etc/passwd", ""] {
        match client
            .trace_eval(path, PredictorSpec::Pas, None)
            .expect("call")
        {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("expected bad_request for {path:?}, got {other:?}"),
        }
    }

    handle.begin_drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_drain_finishes_queued_work_then_exits() {
    let handle = quiet_server(1, 8);
    let addr = handle.local_addr().to_string();

    std::thread::scope(|scope| {
        // Occupy the worker, leaving a queued ping behind it.
        let a = addr.clone();
        let slow = scope.spawn(move || {
            let mut c = Client::connect(&a).expect("connect");
            c.ping(Some(300)).expect("slow ping")
        });
        let a = addr.clone();
        let queued = scope.spawn(move || {
            let mut c = Client::connect(&a).expect("connect");
            c.ping(Some(50)).expect("queued ping")
        });
        std::thread::sleep(Duration::from_millis(100));

        // Shutdown is acknowledged while work is still in the queue.
        let mut c = Client::connect(&addr).expect("connect");
        match c.shutdown().expect("shutdown call") {
            Response::ShuttingDown { .. } => {}
            other => panic!("expected shutdown ack, got {other:?}"),
        }

        // Nothing queued is dropped: both pings still complete.
        assert!(matches!(
            slow.join().expect("slow ping"),
            Response::Pong { .. }
        ));
        assert!(matches!(
            queued.join().expect("queued ping"),
            Response::Pong { .. }
        ));

        // New work after the drain began is refused (or the listener is
        // already gone).
        if let Ok(mut late) = Client::connect(&addr) {
            if let Ok(resp) = late.eval("fig4", unique_seed(), TARGET, None) {
                match resp {
                    Response::Error { code, .. } => {
                        assert_eq!(code, ErrorCode::ShuttingDown);
                    }
                    other => panic!("expected shutting_down, got {other:?}"),
                }
            }
        }
    });

    // join() returning at all is the drain guarantee; a hang here fails
    // the test by timeout.
    handle.join();
}

#[test]
fn restarted_server_serves_prior_working_set_from_the_warm_cache() {
    let dir = std::env::temp_dir().join(format!("bp-serve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let seed = unique_seed();
    let cached_server = || {
        spawn(ServerConfig {
            workers: 2,
            queue_capacity: 16,
            cache_dir: Some(dir.clone()),
            quiet: true,
            ..ServerConfig::default()
        })
        .expect("bind 127.0.0.1:0")
    };

    // First life: compute once, cache persists to disk.
    let cold = {
        let handle = cached_server();
        let mut client = connect(&handle);
        let output = match client.eval("fig4", seed, TARGET, None).expect("cold eval") {
            Response::Result { output, cached, .. } => {
                assert!(!cached, "first-ever query computes");
                output
            }
            other => panic!("expected a result, got {other:?}"),
        };
        handle.begin_drain();
        handle.join();
        output
    };

    // Second life: the same key must be served as a cache hit without
    // recomputation, byte-identical to the cold run.
    let handle = cached_server();
    let mut client = connect(&handle);
    match client.eval("fig4", seed, TARGET, None).expect("warm eval") {
        Response::Result { output, cached, .. } => {
            assert!(cached, "a restarted daemon must hit its warm-started cache");
            assert_eq!(
                output, cold,
                "warm output is byte-identical to the cold run"
            );
        }
        other => panic!("expected a result, got {other:?}"),
    }
    match client.stats().expect("stats") {
        Response::Stats { snapshot, .. } => {
            assert!(
                snapshot.warm_start_entries >= 1,
                "boot reloaded the persisted entry"
            );
            assert_eq!(snapshot.result_cache_hits, 1, "the repeat was a memory hit");
            assert_eq!(
                snapshot.engines, 0,
                "no engine was built — the warm hit skipped computation entirely"
            );
        }
        other => panic!("expected stats, got {other:?}"),
    }
    handle.begin_drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn open_loop_bench_reports_queueing_delay_and_closed_loop_does_not() {
    let seed = unique_seed();
    let handle = quiet_server(2, 16);
    let addr = handle.local_addr().to_string();

    // Open loop at a rate this warm-cache path meets easily: the report
    // carries the queueing-delay percentiles and renders them.
    let open = run_bench(&BenchOptions {
        addrs: vec![addr.clone()],
        conns: 2,
        requests_per_conn: 6,
        seed,
        target: TARGET,
        rate: Some(400.0),
        ..BenchOptions::default()
    })
    .expect("open-loop bench");
    assert_eq!(open.sent, 12);
    assert_eq!(open.ok, 12, "all requests answered: {open:?}");
    assert!(open.open_loop);
    assert!(
        open.queue_max_ms >= open.queue_p50_ms,
        "queue percentiles ordered: {open:?}"
    );
    assert!(open.render_text().contains("queueing delay ms"));
    assert!(open.render_json().contains("\"queue_p50_ms\""));

    // The same run closed-loop keeps the historical report shape: no
    // queueing fields in either rendering.
    let closed = run_bench(&BenchOptions {
        addrs: vec![addr],
        conns: 2,
        requests_per_conn: 6,
        seed,
        target: TARGET,
        ..BenchOptions::default()
    })
    .expect("closed-loop bench");
    assert!(!closed.open_loop);
    assert!(!closed.render_text().contains("queueing delay"));
    assert!(!closed.render_json().contains("queue_p50_ms"));

    handle.begin_drain();
    handle.join();
}

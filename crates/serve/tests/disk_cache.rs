//! The persistent result cache's failure matrix, ported from the spirit
//! of `crates/trace/tests/bpt2_corruption.rs`: every way a `.bpo` entry
//! can be damaged must surface as a typed [`DiskCacheError`] and a
//! regenerate — one-line notice, file removed, next request recomputes —
//! never a panic and never an allocation sized by a lying header. Plus
//! the LRU eviction order of the memory tier and warm-start byte
//! identity across a restart.

use std::sync::Arc;

use bp_serve::disk_cache::{
    decode_entry, encode_entry, CacheConfig, DiskCacheError, EvalKey, ResultCache, MAGIC, VERSION,
};
use bp_serve::CacheTier;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bp-bpo-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn key(exp: &str, seed: u64, target: u64) -> EvalKey {
    (exp.to_owned(), seed, target)
}

fn open(dir: &std::path::Path, budget: usize) -> ResultCache {
    ResultCache::open(CacheConfig {
        dir: Some(dir.to_path_buf()),
        memory_budget: budget,
    })
}

/// The only `.bpo` file in `dir` (each test key maps to one file).
fn entry_file(dir: &std::path::Path) -> std::path::PathBuf {
    let mut found: Vec<_> = std::fs::read_dir(dir)
        .expect("read cache dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "bpo"))
        .collect();
    assert_eq!(found.len(), 1, "expected exactly one entry in {dir:?}");
    found.pop().expect("one entry")
}

#[test]
fn truncation_at_every_byte_boundary_is_a_typed_error() {
    let k = key("fig4", 7, 40_000);
    let full = encode_entry(&k, "rendered output\nwith two lines\n");
    for cut in 0..full.len() {
        match decode_entry(&full[..cut]) {
            Err(DiskCacheError::Truncated(_) | DiskCacheError::LyingLength { .. }) => {}
            Err(other) => panic!("cut at {cut}: expected Truncated/LyingLength, got {other}"),
            Ok(_) => panic!("cut at {cut}: a truncated entry must not decode"),
        }
    }
    // And the untouched entry still decodes, so the loop above really
    // exercised truncation rather than a broken fixture.
    let (dk, dp) = decode_entry(&full).expect("intact entry decodes");
    assert_eq!(dk, k);
    assert_eq!(dp, "rendered output\nwith two lines\n");
}

#[test]
fn every_flipped_magic_byte_is_bad_magic() {
    let k = key("fig5", 1, 1000);
    let full = encode_entry(&k, "x");
    for i in 0..MAGIC.len() {
        let mut bytes = full.clone();
        bytes[i] ^= 0xFF;
        assert!(
            matches!(decode_entry(&bytes), Err(DiskCacheError::BadMagic)),
            "flipping magic byte {i} must be BadMagic"
        );
    }
}

#[test]
fn unknown_version_is_typed() {
    let k = key("fig5", 1, 1000);
    let mut bytes = encode_entry(&k, "x");
    bytes[4..6].copy_from_slice(&(VERSION + 9).to_le_bytes());
    match decode_entry(&bytes) {
        Err(DiskCacheError::BadVersion(v)) => assert_eq!(v, VERSION + 9),
        other => panic!("expected BadVersion, got {other:?}"),
    }
}

#[test]
fn flipped_payload_byte_is_a_content_fingerprint_mismatch() {
    let k = key("table1", 2, 2000);
    let payload = "the rendered table body";
    let mut bytes = encode_entry(&k, payload);
    // Flip one payload byte (payload sits 8 bytes before the trailer).
    let payload_start = bytes.len() - 8 - payload.len();
    bytes[payload_start] ^= 0x20;
    assert!(
        matches!(
            decode_entry(&bytes),
            Err(DiskCacheError::FingerprintMismatch("content"))
        ),
        "payload damage must be a content fingerprint mismatch"
    );
}

#[test]
fn flipped_key_byte_is_a_config_fingerprint_mismatch() {
    let k = key("table1", 2, 2000);
    let mut bytes = encode_entry(&k, "body");
    // The seed field follows magic(4) version(2) reserved(2) exp_len(2)
    // and the experiment id.
    let seed_start = 10 + k.0.len();
    bytes[seed_start] ^= 1;
    assert!(
        matches!(
            decode_entry(&bytes),
            Err(DiskCacheError::FingerprintMismatch("config"))
        ),
        "key damage must be a config fingerprint mismatch"
    );
}

#[test]
fn lying_payload_length_is_rejected_before_any_slicing() {
    let k = key("fig4", 3, 3000);
    let payload = "short";
    let mut bytes = encode_entry(&k, payload);
    // Announce an absurd payload length. The decoder must compare the
    // announcement against the bytes actually present *before* slicing,
    // so this can never drive an allocation or an out-of-bounds read.
    let len_start = 10 + k.0.len() + 24;
    bytes[len_start..len_start + 8].copy_from_slice(&(u64::MAX).to_le_bytes());
    match decode_entry(&bytes) {
        Err(DiskCacheError::LyingLength { announced, actual }) => {
            assert_eq!(announced, u64::MAX);
            assert_eq!(actual, payload.len() as u64);
        }
        other => panic!("expected LyingLength, got {other:?}"),
    }
    // An understatement is just as much a lie.
    bytes[len_start..len_start + 8].copy_from_slice(&1u64.to_le_bytes());
    assert!(matches!(
        decode_entry(&bytes),
        Err(DiskCacheError::LyingLength {
            announced: 1,
            actual: 5
        })
    ));
}

#[test]
fn corrupt_disk_entry_is_removed_noticed_and_regenerated() {
    let dir = temp_dir("regen");
    let k = key("fig4", 11, 4000);
    let output = Arc::new("the answer\n".to_owned());
    {
        let cache = open(&dir, 1 << 20);
        cache.put(&k, &output);
        assert!(
            cache.take_notices().is_empty(),
            "clean put leaves no notices"
        );
    }
    // Damage the persisted entry mid-payload.
    let path = entry_file(&dir);
    let mut bytes = std::fs::read(&path).expect("read entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("write damaged entry");

    // A fresh cache warm-starts over the damaged file: typed error path,
    // one-line notice, file removed — and no panic.
    let cache = open(&dir, 1 << 20);
    let notices = cache.take_notices();
    assert_eq!(notices.len(), 1, "exactly one notice: {notices:?}");
    assert!(
        notices[0].contains("removed corrupt cache entry"),
        "notice names the removal: {}",
        notices[0]
    );
    assert!(!path.exists(), "the corrupt entry file is gone");
    assert_eq!(cache.gauges().warm_start_entries, 0);
    assert!(cache.get(&k).is_none(), "the damaged entry is a miss");

    // Regeneration: the next put rewrites the entry and it serves again.
    cache.put(&k, &output);
    let (back, _) = cache.get(&k).expect("regenerated entry hits");
    assert_eq!(*back, *output);
    assert!(entry_file(&dir).exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_disk_entries_found_at_warm_start_never_panic() {
    let dir = temp_dir("trunc-scan");
    let k = key("fig5", 21, 5000);
    let full = encode_entry(&k, "payload under test\n");
    // One file per truncation boundary, all in one directory.
    for cut in 0..full.len() {
        std::fs::write(dir.join(format!("cut-{cut:04}.bpo")), &full[..cut]).expect("write stub");
    }
    let cache = open(&dir, 1 << 20);
    let notices = cache.take_notices();
    assert_eq!(
        notices.len(),
        full.len(),
        "every truncated file leaves one notice"
    );
    assert_eq!(cache.gauges().warm_start_entries, 0);
    let leftovers = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "bpo"))
        .count();
    assert_eq!(leftovers, 0, "every truncated file is removed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memory_tier_evicts_in_lru_order_and_disk_tier_backstops() {
    let dir = temp_dir("lru");
    // Budget fits three 8-byte outputs but not four.
    let cache = open(&dir, 26);
    let out = |s: &str| Arc::new(s.to_owned());
    let (a, b, c, d) = (
        key("fig4", 1, 100),
        key("fig4", 2, 100),
        key("fig4", 3, 100),
        key("fig4", 4, 100),
    );
    cache.put(&a, &out("aaaaaaaa"));
    cache.put(&b, &out("bbbbbbbb"));
    cache.put(&c, &out("cccccccc"));
    assert_eq!(cache.gauges().entries, 3);
    assert_eq!(cache.gauges().evictions, 0);

    // Touch `a` so `b` becomes the least recently used...
    assert_eq!(cache.get(&a).expect("a is resident").1, CacheTier::Memory);
    // ...then overflow the budget: exactly `b` must go.
    cache.put(&d, &out("dddddddd"));
    assert_eq!(cache.gauges().evictions, 1);
    assert_eq!(cache.get(&a).expect("a stays").1, CacheTier::Memory);
    assert_eq!(cache.get(&c).expect("c stays").1, CacheTier::Memory);
    assert_eq!(cache.get(&d).expect("d stays").1, CacheTier::Memory);
    // `b` left memory but persists on disk; the hit promotes it back.
    let (b_out, b_tier) = cache.get(&b).expect("b comes back from disk");
    assert_eq!(b_tier, CacheTier::Disk);
    assert_eq!(*b_out, "bbbbbbbb");
    let g = cache.gauges();
    assert_eq!(g.disk_hits, 1);
    assert!(g.evictions >= 2, "promoting b evicts another entry");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_oversized_entry_is_never_evicted() {
    let cache = ResultCache::open(CacheConfig {
        dir: None,
        memory_budget: 4,
    });
    let k = key("fig9", 1, 100);
    cache.put(&k, &Arc::new("far larger than the whole budget".to_owned()));
    assert!(
        cache.get(&k).is_some(),
        "the newest entry always serves, even over budget"
    );
    assert_eq!(cache.gauges().evictions, 0);
}

#[test]
fn warm_start_serves_the_prior_working_set_byte_identically() {
    let dir = temp_dir("warm");
    let keys: Vec<EvalKey> = (0..5).map(|i| key("fig4", i, 1000 + i)).collect();
    let outputs: Vec<Arc<String>> = (0..5)
        .map(|i| Arc::new(format!("output {i}\nsecond line {i}\n")))
        .collect();
    {
        let cold = open(&dir, 1 << 20);
        for (k, o) in keys.iter().zip(&outputs) {
            cold.put(k, o);
        }
        assert!(cold.take_notices().is_empty());
    } // "restart": the first cache is dropped, memory tier lost.

    let warm = open(&dir, 1 << 20);
    assert_eq!(warm.gauges().warm_start_entries, 5);
    assert!(warm.take_notices().is_empty());
    for (k, o) in keys.iter().zip(&outputs) {
        let (back, tier) = warm.get(k).expect("warm-started entry hits");
        assert_eq!(
            tier,
            CacheTier::Memory,
            "warm start preloads the memory tier"
        );
        assert_eq!(*back, **o, "byte-identical to the cold run's output");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Property tests for the `bp-serve` wire protocol: encode/decode
//! round-trips for every request and response shape (including hostile
//! strings), oversized-frame rejection on both sides, the
//! unknown-request-type error path, and decoder robustness against
//! arbitrary bytes.

use std::io::Cursor;

use proptest::prelude::*;

use bp_serve::stats::{EndpointSnapshot, LatencySnapshot, StatsSnapshot};
use bp_serve::{
    read_frame, write_frame, ErrorCode, FrameError, PredictorSpec, ProtocolError, Request,
    Response, DEFAULT_MAX_FRAME,
};

/// Strings that stress the JSON layer: quotes, backslashes, control
/// characters, multi-byte UTF-8, and astral-plane characters (which the
/// writer emits as surrogate-pair escapes).
fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec((0u8..6, 0u32..0xD7FF), 0..24).prop_map(|parts| {
        parts
            .into_iter()
            .map(|(family, code)| match family {
                0 => char::from(b' ' + (code % 94) as u8), // printable ASCII
                1 => '"',
                2 => '\\',
                3 => char::from((code % 32) as u8), // control characters
                4 => char::from_u32(code.max(1)).unwrap_or('\u{FFFD}'),
                _ => char::from_u32(0x1F300 + code % 256).unwrap_or('\u{1F300}'),
            })
            .collect()
    })
}

fn arb_predictor() -> impl Strategy<Value = PredictorSpec> {
    (0u8..4, 1u32..32).prop_map(|(kind, bits)| match kind {
        0 => PredictorSpec::Gshare { bits },
        1 => PredictorSpec::IfGshare { bits },
        2 => PredictorSpec::Pas,
        _ => PredictorSpec::IfPas { history_bits: bits },
    })
}

fn arb_deadline() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(some, ms)| some.then_some(ms))
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u8..5,
        any::<u64>(),
        arb_string(),
        (any::<u64>(), any::<u64>()),
        arb_predictor(),
        arb_deadline(),
    )
        .prop_map(
            |(kind, id, text, (seed, target), predictor, deadline_ms)| match kind {
                0 => Request::Eval {
                    id,
                    experiment: text,
                    seed,
                    target,
                    deadline_ms,
                },
                1 => Request::TraceEval {
                    id,
                    path: text,
                    predictor,
                    deadline_ms,
                },
                2 => Request::Stats { id },
                3 => Request::Ping {
                    id,
                    delay_ms: deadline_ms.map(|ms| ms ^ 1),
                    deadline_ms,
                },
                _ => Request::Shutdown { id },
            },
        )
}

fn arb_endpoint() -> impl Strategy<Value = EndpointSnapshot> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(requests, ok, errors)| EndpointSnapshot {
        requests,
        ok,
        errors,
    })
}

fn arb_latency() -> impl Strategy<Value = LatencySnapshot> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(count, p50_us, p99_us, p999_us, max_us)| LatencySnapshot {
            count,
            p50_us,
            p99_us,
            p999_us,
            max_us,
        })
}

fn arb_snapshot() -> impl Strategy<Value = StatsSnapshot> {
    (
        (
            arb_endpoint(),
            arb_endpoint(),
            arb_endpoint(),
            arb_endpoint(),
            arb_endpoint(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (any::<u64>(), any::<u64>()),
        (arb_latency(), arb_latency()),
    )
        .prop_map(
            |(
                (eval, trace_eval, stats, ping, shutdown),
                (overloaded, deadline_missed, coalesced, result_cache_hits, bad_frames),
                (engines, engine_cache_hits, engine_cache_misses),
                (disk_cache_hits, cache_entries, cache_bytes, cache_evictions, warm_start_entries),
                (open_connections, conns_accepted),
                (eval_latency, trace_latency),
            )| StatsSnapshot {
                eval,
                trace_eval,
                stats,
                ping,
                shutdown,
                overloaded,
                deadline_missed,
                coalesced,
                result_cache_hits,
                disk_cache_hits,
                cache_entries,
                cache_bytes,
                cache_evictions,
                warm_start_entries,
                open_connections,
                conns_accepted,
                bad_frames,
                engines,
                engine_cache_hits,
                engine_cache_misses,
                eval_latency,
                trace_latency,
            },
        )
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    (0u8..7).prop_map(|k| match k {
        0 => ErrorCode::Overloaded,
        1 => ErrorCode::DeadlineExceeded,
        2 => ErrorCode::UnknownRequest,
        3 => ErrorCode::BadRequest,
        4 => ErrorCode::BadTrace,
        5 => ErrorCode::ShuttingDown,
        _ => ErrorCode::Internal,
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u8..6,
        any::<u64>(),
        (any::<bool>(), 0.0f64..3600.0, arb_string()),
        (any::<u64>(), any::<u64>()),
        arb_snapshot(),
        arb_error_code(),
    )
        .prop_map(
            |(kind, id, (cached, seconds, text), (predictions, correct), snapshot, code)| match kind
            {
                0 => Response::Result {
                    id,
                    cached,
                    seconds,
                    output: text,
                },
                1 => Response::TraceResult {
                    id,
                    predictions,
                    correct,
                    seconds,
                },
                2 => Response::Stats {
                    id,
                    snapshot: Box::new(snapshot),
                },
                3 => Response::Pong { id },
                4 => Response::ShuttingDown { id },
                _ => Response::Error {
                    id,
                    code,
                    message: text,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_roundtrips(req in arb_request()) {
        let payload = req.encode();
        let back = Request::decode(&payload).expect("decode what we encoded");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn response_roundtrips(resp in arb_response()) {
        let payload = resp.encode();
        let back = Response::decode(&payload).expect("decode what we encoded");
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn framed_request_roundtrips(req in arb_request()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode(), DEFAULT_MAX_FRAME).expect("fits the cap");
        let mut cursor = Cursor::new(wire);
        let payload = read_frame(&mut cursor, DEFAULT_MAX_FRAME)
            .expect("frame reads back")
            .expect("not EOF");
        prop_assert_eq!(Request::decode(&payload).expect("decodes"), req);
        // The stream is exactly consumed: a second read is a clean EOF.
        prop_assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).expect("clean EOF").is_none());
    }

    #[test]
    fn pipelined_frames_preserve_order(reqs in prop::collection::vec(arb_request(), 0..8)) {
        let mut wire = Vec::new();
        for req in &reqs {
            write_frame(&mut wire, &req.encode(), DEFAULT_MAX_FRAME).expect("fits");
        }
        let mut cursor = Cursor::new(wire);
        for req in &reqs {
            let payload = read_frame(&mut cursor, DEFAULT_MAX_FRAME)
                .expect("reads")
                .expect("present");
            prop_assert_eq!(&Request::decode(&payload).expect("decodes"), req);
        }
        prop_assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).expect("clean EOF").is_none());
    }

    #[test]
    fn oversized_frames_are_rejected_without_reading(len in 1usize..4096, max in 0usize..512) {
        // A writer refuses to emit a frame over the cap...
        let payload = vec![b'x'; len];
        if len > max {
            let mut sink = Vec::new();
            match write_frame(&mut sink, &payload, max) {
                Err(FrameError::Oversized { len: l, max: m }) => {
                    prop_assert_eq!(l, len);
                    prop_assert_eq!(m, max);
                    prop_assert!(sink.is_empty(), "nothing written for a rejected frame");
                }
                other => prop_assert!(false, "expected Oversized, got {:?}", other.map(|()| "ok")),
            }
            // ...and a reader rejects an announced length over the cap
            // after consuming only the 4-byte prefix.
            let mut wire = (len as u32).to_be_bytes().to_vec();
            wire.extend_from_slice(&payload);
            let mut cursor = Cursor::new(wire);
            match read_frame(&mut cursor, max) {
                Err(FrameError::Oversized { len: l, max: m }) => {
                    prop_assert_eq!(l, len);
                    prop_assert_eq!(m, max);
                    prop_assert_eq!(cursor.position(), 4, "payload must stay unread");
                }
                other => {
                    prop_assert!(false, "expected Oversized, got {:?}", other.map(|_| "frame"));
                }
            }
        } else {
            let mut wire = Vec::new();
            write_frame(&mut wire, &payload, max).expect("under the cap");
            let mut cursor = Cursor::new(wire);
            let back = read_frame(&mut cursor, max).expect("reads").expect("present");
            prop_assert_eq!(back, payload);
        }
    }

    #[test]
    fn unknown_request_types_decode_to_typed_errors(id in any::<u64>(), tag in 0u8..200) {
        // Well-formed JSON with a type this build does not know must
        // surface as UnknownType (the server answers it with an
        // `unknown_request` error), never as a panic or a misparse.
        let ty = format!("no_such_request_{tag}");
        let payload = format!("{{\"type\": \"{ty}\", \"id\": {id}}}");
        match Request::decode(payload.as_bytes()) {
            Err(ProtocolError::UnknownType(t)) => prop_assert_eq!(t, ty),
            other => prop_assert!(false, "expected UnknownType, got {other:?}"),
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Errors are fine; panics are not.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let mut cursor = Cursor::new(bytes);
        let _ = read_frame(&mut cursor, 64);
    }

    #[test]
    fn truncated_frames_error_cleanly(req in arb_request(), cut in 1usize..64) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode(), DEFAULT_MAX_FRAME).expect("fits");
        let cut = cut.min(wire.len() - 1);
        let mut cursor = Cursor::new(&wire[..wire.len() - cut]);
        // A mid-frame truncation is an error, never a short read or hang.
        prop_assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).is_err());
    }

    #[test]
    fn error_codes_roundtrip_via_wire_strings(code in arb_error_code()) {
        prop_assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
    }
}

#[test]
fn unknown_error_code_strings_do_not_parse() {
    assert_eq!(ErrorCode::parse("no_such_code"), None);
    assert_eq!(ErrorCode::parse(""), None);
}

//! Thin, auditable wrapper over `poll(2)`.
//!
//! The workspace vendors no crates, so the one foreign call the reactor
//! needs is declared here directly; the platform C library is already
//! linked into every Rust binary, so no build-system work is involved.
//! This is the only module in the crate allowed to use `unsafe`, and the
//! whole unsafe surface is a single syscall over a `#[repr(C)]` struct
//! the kernel treats as plain memory.
//!
//! `poll` is chosen over `epoll`/`kqueue` deliberately: it is POSIX, it
//! needs no extra kernel object to manage, and at the fleet sizes this
//! daemon targets (~10k sockets) the O(n) scan per wakeup is microseconds
//! — far below the cost of one evaluation. See DESIGN.md §3h.

/// Interest/readiness flag: readable.
pub const POLLIN: i16 = 0x001;
/// Interest/readiness flag: writable.
pub const POLLOUT: i16 = 0x004;
/// Readiness flag (output only): error condition.
pub const POLLERR: i16 = 0x008;
/// Readiness flag (output only): peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Readiness flag (output only): fd not open.
pub const POLLNVAL: i16 = 0x020;

/// One entry of the `poll(2)` fd array, layout-compatible with the C
/// `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Kernel-reported readiness, filled by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events`.
    #[must_use]
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel reported any of `flags` (or a terminal
    /// condition, which poll reports regardless of the request).
    #[must_use]
    pub fn ready(&self, flags: i16) -> bool {
        self.revents & (flags | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[cfg(unix)]
mod imp {
    use super::PollFd;
    use std::io;

    // `nfds_t` is `unsigned long` on the platforms this builds for
    // (glibc/musl); the fd counts here are far below either width.
    #[allow(unsafe_code)]
    unsafe extern "C" {
        fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: core::ffi::c_int) -> i32;
    }

    /// Blocks until an fd is ready or `timeout_ms` elapses (`-1` =
    /// forever). Returns the number of ready entries; `EINTR` is folded
    /// into `Ok(0)` — the caller's loop re-polls.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd entries; the kernel reads `fd`/`events`
        // and writes `revents` within the given length.
        #[allow(unsafe_code)]
        let rc = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as core::ffi::c_ulong,
                timeout_ms,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

#[cfg(not(unix))]
mod imp {
    use super::{PollFd, POLLIN, POLLOUT};
    use std::io;

    /// Degenerate fallback for non-unix hosts: report everything ready
    /// after a short sleep. Nonblocking reads/writes then sort out who
    /// actually had data — correct, just busier. The crate's tests and
    /// CI only exercise the unix path.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let ms = if timeout_ms < 0 { 5 } else { timeout_ms.min(5) };
        std::thread::sleep(std::time::Duration::from_millis(ms as u64));
        for fd in fds.iter_mut() {
            fd.revents = fd.events & (POLLIN | POLLOUT);
        }
        Ok(fds.len())
    }
}

pub use imp::poll_fds;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::unix::io::AsRawFd;

    #[cfg(unix)]
    #[test]
    fn poll_sees_readable_data() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut tx = TcpStream::connect(addr).expect("connect");
        let (rx, _) = listener.accept().expect("accept");

        // Nothing to read yet: poll times out with zero ready fds.
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).expect("poll"), 0);
        assert!(!fds[0].ready(POLLIN));

        tx.write_all(b"x").expect("write");
        tx.flush().expect("flush");
        let n = poll_fds(&mut fds, 2000).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN));
    }

    #[cfg(unix)]
    #[test]
    fn poll_reports_hup_or_readable_on_peer_close() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let tx = TcpStream::connect(addr).expect("connect");
        let (rx, _) = listener.accept().expect("accept");
        drop(tx);
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 2000).expect("poll");
        assert_eq!(n, 1);
        // EOF surfaces as POLLIN (read returns 0) and/or POLLHUP.
        assert!(fds[0].ready(POLLIN));
    }
}

//! The `bp-serve` wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every message is one *frame*: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 JSON. Frames larger than the
//! negotiated cap are rejected without being read ([`FrameError::Oversized`]),
//! so a hostile or confused peer cannot make the server buffer gigabytes.
//!
//! Requests carry a client-chosen `id` that the server echoes in the
//! response, so a client may pipeline several requests on one connection
//! and match answers as they arrive (responses to queued work can
//! complete out of order relative to inline answers such as cache hits
//! and `stats`).
//!
//! ```text
//! → {"type":"eval","id":1,"experiment":"fig4","seed":247470488,"target":40000}
//! ← {"type":"result","id":1,"cached":false,"seconds":0.41,"output":"..."}
//!
//! → {"type":"stats","id":2}
//! ← {"type":"stats","id":2, ...counters...}
//!
//! → {"type":"nonsense","id":3}
//! ← {"type":"error","id":3,"code":"unknown_request","message":"..."}
//! ```

use std::fmt;
use std::io::{Read, Write};

use crate::json::{Json, JsonError};
use crate::stats::StatsSnapshot;

/// Default maximum frame payload size (1 MiB) — comfortably above any
/// experiment output, far below anything that could hurt the server.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Error reading or writing a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket/stream failure.
    Io(std::io::Error),
    /// The peer announced a payload larger than the cap.
    Oversized {
        /// Announced payload length.
        len: usize,
        /// The cap in force.
        max: usize,
    },
    /// The payload was not valid UTF-8.
    NotUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o failed: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::NotUtf8 => write!(f, "frame payload is not utf-8"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + payload).
///
/// # Errors
///
/// [`FrameError::Oversized`] if `payload` exceeds `max`, or an I/O error
/// from the writer.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8], max: usize) -> Result<(), FrameError> {
    if payload.len() > max {
        return Err(FrameError::Oversized {
            len: payload.len(),
            max,
        });
    }
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::Oversized {
        len: payload.len(),
        max,
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. Returns `Ok(None)` on clean EOF at a frame boundary
/// (the peer closed the connection between messages).
///
/// # Errors
///
/// [`FrameError::Oversized`] when the announced length exceeds `max`
/// (nothing past the prefix is consumed), or an I/O error — including
/// `UnexpectedEof` when the stream ends mid-frame.
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        let n = r.read(&mut prefix[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(FrameError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "stream ended inside a frame length prefix",
            )));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Error decoding a request or response out of a frame payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload was not valid JSON.
    Json(JsonError),
    /// The `type` field named a request/response kind this build does not
    /// know.
    UnknownType(String),
    /// A required field was missing or had the wrong type.
    BadField(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Json(e) => write!(f, "{e}"),
            ProtocolError::UnknownType(t) => write!(f, "unknown message type {t:?}"),
            ProtocolError::BadField(name) => write!(f, "missing or ill-typed field {name:?}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<JsonError> for ProtocolError {
    fn from(e: JsonError) -> Self {
        ProtocolError::Json(e)
    }
}

/// Which predictor a [`Request::TraceEval`] should run over the supplied
/// trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorSpec {
    /// `Gshare::new(bits)`.
    Gshare {
        /// History/index bits.
        bits: u32,
    },
    /// `GshareInterferenceFree::new(bits)`.
    IfGshare {
        /// History/index bits.
        bits: u32,
    },
    /// `Pas::default()`.
    Pas,
    /// `PasInterferenceFree::new(history_bits)`.
    IfPas {
        /// Per-address history bits.
        history_bits: u32,
    },
}

impl PredictorSpec {
    fn to_json(self) -> Json {
        match self {
            PredictorSpec::Gshare { bits } => Json::Obj(vec![
                ("kind".to_owned(), Json::Str("gshare".to_owned())),
                ("bits".to_owned(), Json::Int(bits.into())),
            ]),
            PredictorSpec::IfGshare { bits } => Json::Obj(vec![
                ("kind".to_owned(), Json::Str("if_gshare".to_owned())),
                ("bits".to_owned(), Json::Int(bits.into())),
            ]),
            PredictorSpec::Pas => Json::Obj(vec![("kind".to_owned(), Json::Str("pas".to_owned()))]),
            PredictorSpec::IfPas { history_bits } => Json::Obj(vec![
                ("kind".to_owned(), Json::Str("if_pas".to_owned())),
                ("history_bits".to_owned(), Json::Int(history_bits.into())),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or(ProtocolError::BadField("predictor.kind"))?;
        let bits_of = |field: &'static str| -> Result<u32, ProtocolError> {
            v.get(field)
                .and_then(Json::as_u64)
                .and_then(|b| u32::try_from(b).ok())
                .ok_or(ProtocolError::BadField("predictor bits"))
        };
        match kind {
            "gshare" => Ok(PredictorSpec::Gshare {
                bits: bits_of("bits")?,
            }),
            "if_gshare" => Ok(PredictorSpec::IfGshare {
                bits: bits_of("bits")?,
            }),
            "pas" => Ok(PredictorSpec::Pas),
            "if_pas" => Ok(PredictorSpec::IfPas {
                history_bits: bits_of("history_bits")?,
            }),
            other => Err(ProtocolError::UnknownType(format!("predictor {other}"))),
        }
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one experiment (same ids as `repro`) over the synthetic
    /// workload `(seed, target)` and return the rendered output.
    Eval {
        /// Client correlation id, echoed in the response.
        id: u64,
        /// Experiment id (`fig4`, `table2`, …).
        experiment: String,
        /// Workload RNG seed.
        seed: u64,
        /// Target dynamic conditional branches per benchmark.
        target: u64,
        /// Optional deadline; requests that cannot start (or finish
        /// delivery) within this many milliseconds of arrival receive a
        /// `deadline_exceeded` error instead of a result.
        deadline_ms: Option<u64>,
    },
    /// Run one predictor over a client-supplied `.bpt` trace file
    /// (resolved under the server's `--trace-dir` sandbox).
    TraceEval {
        /// Client correlation id, echoed in the response.
        id: u64,
        /// Path of the `.bpt` file, relative to the server's trace dir.
        path: String,
        /// The predictor to run.
        predictor: PredictorSpec,
        /// Optional deadline, as for `Eval`.
        deadline_ms: Option<u64>,
    },
    /// Fetch the server's counters.
    Stats {
        /// Client correlation id, echoed in the response.
        id: u64,
    },
    /// Liveness probe. With `delay_ms` set, the pong is produced by a
    /// worker after sleeping — a load-testing aid that occupies one
    /// worker slot and exercises the queue/backpressure path exactly
    /// like an eval of that duration would.
    Ping {
        /// Client correlation id, echoed in the response.
        id: u64,
        /// Optional worker-side delay in milliseconds.
        delay_ms: Option<u64>,
        /// Optional deadline, honored like `Eval`'s when the ping is
        /// routed through the worker queue.
        deadline_ms: Option<u64>,
    },
    /// Begin a graceful drain: the server acknowledges, stops accepting
    /// work, finishes everything queued and in flight, and exits.
    Shutdown {
        /// Client correlation id, echoed in the response.
        id: u64,
    },
}

impl Request {
    /// The correlation id.
    pub fn id(&self) -> u64 {
        match *self {
            Request::Eval { id, .. }
            | Request::TraceEval { id, .. }
            | Request::Stats { id }
            | Request::Ping { id, .. }
            | Request::Shutdown { id } => id,
        }
    }

    /// Encodes the request as a JSON frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let json = match self {
            Request::Eval {
                id,
                experiment,
                seed,
                target,
                deadline_ms,
            } => {
                let mut pairs = vec![
                    ("type".to_owned(), Json::Str("eval".to_owned())),
                    ("id".to_owned(), Json::Int(*id)),
                    ("experiment".to_owned(), Json::Str(experiment.clone())),
                    ("seed".to_owned(), Json::Int(*seed)),
                    ("target".to_owned(), Json::Int(*target)),
                ];
                if let Some(ms) = deadline_ms {
                    pairs.push(("deadline_ms".to_owned(), Json::Int(*ms)));
                }
                Json::Obj(pairs)
            }
            Request::TraceEval {
                id,
                path,
                predictor,
                deadline_ms,
            } => {
                let mut pairs = vec![
                    ("type".to_owned(), Json::Str("trace_eval".to_owned())),
                    ("id".to_owned(), Json::Int(*id)),
                    ("path".to_owned(), Json::Str(path.clone())),
                    ("predictor".to_owned(), predictor.to_json()),
                ];
                if let Some(ms) = deadline_ms {
                    pairs.push(("deadline_ms".to_owned(), Json::Int(*ms)));
                }
                Json::Obj(pairs)
            }
            Request::Stats { id } => Json::Obj(vec![
                ("type".to_owned(), Json::Str("stats".to_owned())),
                ("id".to_owned(), Json::Int(*id)),
            ]),
            Request::Ping {
                id,
                delay_ms,
                deadline_ms,
            } => {
                let mut pairs = vec![
                    ("type".to_owned(), Json::Str("ping".to_owned())),
                    ("id".to_owned(), Json::Int(*id)),
                ];
                if let Some(ms) = delay_ms {
                    pairs.push(("delay_ms".to_owned(), Json::Int(*ms)));
                }
                if let Some(ms) = deadline_ms {
                    pairs.push(("deadline_ms".to_owned(), Json::Int(*ms)));
                }
                Json::Obj(pairs)
            }
            Request::Shutdown { id } => Json::Obj(vec![
                ("type".to_owned(), Json::Str("shutdown".to_owned())),
                ("id".to_owned(), Json::Int(*id)),
            ]),
        };
        json.to_string().into_bytes()
    }

    /// Decodes a request from a frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownType`] for a well-formed message whose
    /// `type` is not recognized (the server answers these with an
    /// `unknown_request` error rather than dropping the connection), and
    /// [`ProtocolError::Json`] / [`ProtocolError::BadField`] for
    /// malformed payloads.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let text = std::str::from_utf8(payload).map_err(|_| ProtocolError::BadField("utf-8"))?;
        let v = Json::parse(text)?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or(ProtocolError::BadField("type"))?;
        let id = v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or(ProtocolError::BadField("id"))?;
        let deadline_ms = match v.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(ms) => Some(ms.as_u64().ok_or(ProtocolError::BadField("deadline_ms"))?),
        };
        match ty {
            "eval" => Ok(Request::Eval {
                id,
                experiment: v
                    .get("experiment")
                    .and_then(Json::as_str)
                    .ok_or(ProtocolError::BadField("experiment"))?
                    .to_owned(),
                seed: v
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or(ProtocolError::BadField("seed"))?,
                target: v
                    .get("target")
                    .and_then(Json::as_u64)
                    .ok_or(ProtocolError::BadField("target"))?,
                deadline_ms,
            }),
            "trace_eval" => Ok(Request::TraceEval {
                id,
                path: v
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or(ProtocolError::BadField("path"))?
                    .to_owned(),
                predictor: PredictorSpec::from_json(
                    v.get("predictor")
                        .ok_or(ProtocolError::BadField("predictor"))?,
                )?,
                deadline_ms,
            }),
            "stats" => Ok(Request::Stats { id }),
            "ping" => Ok(Request::Ping {
                id,
                delay_ms: match v.get("delay_ms") {
                    None | Some(Json::Null) => None,
                    Some(ms) => Some(ms.as_u64().ok_or(ProtocolError::BadField("delay_ms"))?),
                },
                deadline_ms,
            }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(ProtocolError::UnknownType(other.to_owned())),
        }
    }
}

/// Typed error codes a server can answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The bounded request queue is full; retry later or back off.
    Overloaded,
    /// The request's deadline passed before it could be served.
    DeadlineExceeded,
    /// The message `type` is not known to this server.
    UnknownRequest,
    /// The request was malformed (bad JSON, missing fields, unknown
    /// experiment id, …).
    BadRequest,
    /// A client-supplied trace failed to load or validate.
    BadTrace,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// An unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// The wire string for the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::UnknownRequest => "unknown_request",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::BadTrace => "bad_trace",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire string back to the code.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "overloaded" => ErrorCode::Overloaded,
            "deadline_exceeded" => ErrorCode::DeadlineExceeded,
            "unknown_request" => ErrorCode::UnknownRequest,
            "bad_request" => ErrorCode::BadRequest,
            "bad_trace" => ErrorCode::BadTrace,
            "shutting_down" => ErrorCode::ShuttingDown,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// An experiment result: the exact text `repro` prints for the same
    /// experiment and workload.
    Result {
        /// Echo of the request id.
        id: u64,
        /// Whether this was served from the rendered-output cache.
        cached: bool,
        /// Server-side latency of this request, in seconds.
        seconds: f64,
        /// The rendered experiment output.
        output: String,
    },
    /// A predictor-over-trace result.
    TraceResult {
        /// Echo of the request id.
        id: u64,
        /// Total predictions made.
        predictions: u64,
        /// Correct predictions.
        correct: u64,
        /// Server-side latency of this request, in seconds.
        seconds: f64,
    },
    /// The server's counters.
    Stats {
        /// Echo of the request id.
        id: u64,
        /// Counter snapshot.
        snapshot: Box<StatsSnapshot>,
    },
    /// Answer to a ping.
    Pong {
        /// Echo of the request id.
        id: u64,
    },
    /// Acknowledgement of a shutdown request; the server drains and
    /// exits after sending this.
    ShuttingDown {
        /// Echo of the request id.
        id: u64,
    },
    /// A typed error.
    Error {
        /// Echo of the request id (0 when the request was too malformed
        /// to carry one).
        id: u64,
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The echoed correlation id.
    pub fn id(&self) -> u64 {
        match *self {
            Response::Result { id, .. }
            | Response::TraceResult { id, .. }
            | Response::Stats { id, .. }
            | Response::Pong { id }
            | Response::ShuttingDown { id }
            | Response::Error { id, .. } => id,
        }
    }

    /// Encodes the response as a JSON frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let json = match self {
            Response::Result {
                id,
                cached,
                seconds,
                output,
            } => Json::Obj(vec![
                ("type".to_owned(), Json::Str("result".to_owned())),
                ("id".to_owned(), Json::Int(*id)),
                ("cached".to_owned(), Json::Bool(*cached)),
                ("seconds".to_owned(), Json::Float(*seconds)),
                ("output".to_owned(), Json::Str(output.clone())),
            ]),
            Response::TraceResult {
                id,
                predictions,
                correct,
                seconds,
            } => Json::Obj(vec![
                ("type".to_owned(), Json::Str("trace_result".to_owned())),
                ("id".to_owned(), Json::Int(*id)),
                ("predictions".to_owned(), Json::Int(*predictions)),
                ("correct".to_owned(), Json::Int(*correct)),
                ("seconds".to_owned(), Json::Float(*seconds)),
            ]),
            Response::Stats { id, snapshot } => {
                let mut pairs = vec![
                    ("type".to_owned(), Json::Str("stats".to_owned())),
                    ("id".to_owned(), Json::Int(*id)),
                ];
                pairs.extend(snapshot.to_json_pairs());
                Json::Obj(pairs)
            }
            Response::Pong { id } => Json::Obj(vec![
                ("type".to_owned(), Json::Str("pong".to_owned())),
                ("id".to_owned(), Json::Int(*id)),
            ]),
            Response::ShuttingDown { id } => Json::Obj(vec![
                ("type".to_owned(), Json::Str("shutting_down".to_owned())),
                ("id".to_owned(), Json::Int(*id)),
            ]),
            Response::Error { id, code, message } => Json::Obj(vec![
                ("type".to_owned(), Json::Str("error".to_owned())),
                ("id".to_owned(), Json::Int(*id)),
                ("code".to_owned(), Json::Str(code.as_str().to_owned())),
                ("message".to_owned(), Json::Str(message.clone())),
            ]),
        };
        json.to_string().into_bytes()
    }

    /// Decodes a response from a frame payload.
    ///
    /// # Errors
    ///
    /// As [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let text = std::str::from_utf8(payload).map_err(|_| ProtocolError::BadField("utf-8"))?;
        let v = Json::parse(text)?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or(ProtocolError::BadField("type"))?;
        let id = v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or(ProtocolError::BadField("id"))?;
        match ty {
            "result" => Ok(Response::Result {
                id,
                cached: v
                    .get("cached")
                    .and_then(Json::as_bool)
                    .ok_or(ProtocolError::BadField("cached"))?,
                seconds: v
                    .get("seconds")
                    .and_then(Json::as_f64)
                    .ok_or(ProtocolError::BadField("seconds"))?,
                output: v
                    .get("output")
                    .and_then(Json::as_str)
                    .ok_or(ProtocolError::BadField("output"))?
                    .to_owned(),
            }),
            "trace_result" => Ok(Response::TraceResult {
                id,
                predictions: v
                    .get("predictions")
                    .and_then(Json::as_u64)
                    .ok_or(ProtocolError::BadField("predictions"))?,
                correct: v
                    .get("correct")
                    .and_then(Json::as_u64)
                    .ok_or(ProtocolError::BadField("correct"))?,
                seconds: v
                    .get("seconds")
                    .and_then(Json::as_f64)
                    .ok_or(ProtocolError::BadField("seconds"))?,
            }),
            "stats" => Ok(Response::Stats {
                id,
                snapshot: Box::new(StatsSnapshot::from_json(&v)?),
            }),
            "pong" => Ok(Response::Pong { id }),
            "shutting_down" => Ok(Response::ShuttingDown { id }),
            "error" => {
                let code_str = v
                    .get("code")
                    .and_then(Json::as_str)
                    .ok_or(ProtocolError::BadField("code"))?;
                Ok(Response::Error {
                    id,
                    code: ErrorCode::parse(code_str).ok_or(ProtocolError::BadField("code"))?,
                    message: v
                        .get("message")
                        .and_then(Json::as_str)
                        .ok_or(ProtocolError::BadField("message"))?
                        .to_owned(),
                })
            }
            other => Err(ProtocolError::UnknownType(other.to_owned())),
        }
    }
}

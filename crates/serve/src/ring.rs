//! Shard routing: a consistent-hash ring over daemon addresses, and the
//! bounded retry/backoff policy the sharded client applies per shard.
//!
//! Keys are placed on a 64-bit ring; each shard address contributes
//! [`VNODES`] virtual points so load spreads evenly even with two or
//! three shards. A key routes to the first point clockwise from its
//! hash; failover walks further clockwise to the next *distinct* shard,
//! so every client derives the same primary and the same failover order
//! from the address list alone — no coordinator. Adding a shard moves
//! only the keys that land on its points (~1/N of the space), which is
//! the property that makes horizontal scale cheap.
//!
//! Hashing reuses the shared FNV-1a chain from [`bp_trace::sidecar`] —
//! one hash implementation across trace sidecars, the disk cache, and
//! the ring.

use bp_trace::sidecar::{fnv1a, FNV_OFFSET};

use std::time::Duration;

/// Virtual points per shard address.
pub const VNODES: usize = 64;

/// Avalanche finalizer (the 64-bit murmur3 fmix). FNV-1a over short
/// structured inputs (an address plus a vnode counter, or an eval key)
/// leaves the *high* bits poorly mixed, and ring placement orders
/// points by exactly those bits — without this step one shard can
/// capture half the key space. The finalizer makes every input bit
/// affect every output bit.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// A consistent-hash ring over shard addresses.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Ring points, sorted by hash: (point hash, shard index).
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// Builds the ring. Order of `addrs` defines shard indices; the
    /// ring itself is insensitive to that order (points depend only on
    /// the address strings).
    #[must_use]
    pub fn new(addrs: &[String]) -> Self {
        let mut points = Vec::with_capacity(addrs.len() * VNODES);
        for (idx, addr) in addrs.iter().enumerate() {
            let base = fnv1a(FNV_OFFSET, addr.as_bytes());
            for vnode in 0..VNODES {
                points.push((mix(fnv1a(base, &(vnode as u64).to_le_bytes())), idx));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            shards: addrs.len(),
        }
    }

    /// The ring position of an evaluation key.
    #[must_use]
    pub fn key_hash(experiment: &str, seed: u64, target: u64) -> u64 {
        let h = fnv1a(FNV_OFFSET, experiment.as_bytes());
        let h = fnv1a(h, &seed.to_le_bytes());
        mix(fnv1a(h, &target.to_le_bytes()))
    }

    /// Shard indices in routing order for `hash`: the owner first, then
    /// each distinct shard encountered walking the ring — the failover
    /// sequence. Every shard appears exactly once.
    #[must_use]
    pub fn route(&self, hash: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.shards);
        if self.points.is_empty() {
            return order;
        }
        let start = self.points.partition_point(|&(point, _)| point < hash) % self.points.len();
        let mut seen = vec![false; self.shards];
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !seen[shard] {
                seen[shard] = true;
                order.push(shard);
                if order.len() == self.shards {
                    break;
                }
            }
        }
        order
    }

    /// Number of shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
    }

    /// Whether the ring has no shards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards == 0
    }
}

/// Bounded exponential backoff with deterministic jitter, applied per
/// shard before giving up on it and failing over.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts per shard (1 = no retry).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per attempt after.
    pub base: Duration,
    /// Ceiling on any single backoff.
    pub cap: Duration,
    /// Jitter seed. The jitter stream is a pure function of this seed,
    /// so tests (and reproductions of production incidents) see the
    /// exact same sleep schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x5EED_CAFE,
        }
    }
}

impl RetryPolicy {
    /// No retries, no sleeping — for tests and health probes.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 0,
        }
    }

    /// The jitter RNG, seeded for this policy.
    #[must_use]
    pub fn jitter(&self) -> Jitter {
        // xorshift64 must not start at 0; fold in a non-zero constant.
        Jitter {
            state: self.seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Backoff before retry number `attempt` (1-based: the sleep before
    /// the second try is `attempt = 1`). Full jitter: uniform in
    /// `[delay/2, delay]`, so synchronized clients desynchronize.
    #[must_use]
    pub fn backoff(&self, attempt: u32, jitter: &mut Jitter) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let delay = self
            .base
            .saturating_mul(1u32 << exp)
            .min(self.cap)
            .as_nanos() as u64;
        let jittered = delay / 2 + jitter.next_u64() % (delay / 2 + 1);
        Duration::from_nanos(jittered)
    }
}

/// Deterministic xorshift64 jitter stream.
#[derive(Debug, Clone)]
pub struct Jitter {
    state: u64,
}

impl Jitter {
    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 4100 + i)).collect()
    }

    #[test]
    fn routing_is_deterministic_and_complete() {
        let ring = Ring::new(&addrs(3));
        for key in 0..200u64 {
            let hash = Ring::key_hash("fig4", key, 40_000);
            let a = ring.route(hash);
            let b = ring.route(hash);
            assert_eq!(a, b, "routing must be deterministic");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "failover order covers every shard");
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        let ring = Ring::new(&addrs(4));
        let mut counts = [0usize; 4];
        for seed in 0..4000u64 {
            let hash = Ring::key_hash("fig5", seed, 40_000);
            counts[ring.route(hash)[0]] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                (500..=1800).contains(&count),
                "shard {shard} owns {count} of 4000 keys — distribution collapsed"
            );
        }
    }

    #[test]
    fn adding_a_shard_moves_only_a_fraction_of_keys() {
        let three = Ring::new(&addrs(3));
        let four = Ring::new(&addrs(4));
        let moved = (0..2000u64)
            .filter(|&seed| {
                let hash = Ring::key_hash("fig4", seed, 40_000);
                let before = three.route(hash)[0];
                let after = four.route(hash)[0];
                before != after && after != 3
            })
            .count();
        // Consistent hashing: keys not claimed by the new shard stay put
        // (a handful may shift between survivors where vnode ranges
        // interleave; a modulo scheme would move ~2/3 of them).
        assert!(
            moved < 200,
            "{moved} of 2000 keys moved between surviving shards"
        );
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let policy = RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 42,
        };
        let schedule: Vec<Duration> = {
            let mut j = policy.jitter();
            (1..=6).map(|a| policy.backoff(a, &mut j)).collect()
        };
        let again: Vec<Duration> = {
            let mut j = policy.jitter();
            (1..=6).map(|a| policy.backoff(a, &mut j)).collect()
        };
        assert_eq!(schedule, again, "same seed, same schedule");
        for (i, d) in schedule.iter().enumerate() {
            let nominal = Duration::from_millis(10)
                .saturating_mul(1 << i)
                .min(Duration::from_millis(500));
            assert!(*d >= nominal / 2, "attempt {i}: {d:?} below half-nominal");
            assert!(*d <= nominal, "attempt {i}: {d:?} above nominal");
        }
        // Different seeds give different jitter.
        let other = RetryPolicy { seed: 43, ..policy };
        let mut j = other.jitter();
        let other_first = other.backoff(1, &mut j);
        assert_ne!(schedule[0], other_first);
    }

    #[test]
    fn zero_base_backoff_never_sleeps() {
        let policy = RetryPolicy::none();
        let mut j = policy.jitter();
        assert_eq!(policy.backoff(1, &mut j), Duration::ZERO);
        assert_eq!(policy.backoff(9, &mut j), Duration::ZERO);
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = Ring::new(&[]);
        assert!(ring.is_empty());
        assert!(ring.route(12345).is_empty());
    }
}

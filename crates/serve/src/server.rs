//! The serving core: evented connection handling over a bounded worker
//! pool, a two-tier persistent result cache, coalescing of identical
//! in-flight evaluations, per-request deadlines, and graceful drain.
//!
//! ## Threading model
//!
//! * One **reactor** thread ([`crate::reactor`]) owns the listener and
//!   every client socket, multiplexed with `poll(2)`. It parses frames
//!   incrementally from per-connection buffers and runs [`dispatch`]
//!   for each complete request — 10k idle connections cost 10k fds and
//!   their buffers, not 10k thread stacks.
//! * **Dispatch** (on the reactor thread) answers cheap requests inline
//!   (result-cache hits, `stats`, plain `ping`); everything that
//!   computes goes through the bounded queue. When the queue is full
//!   the request is rejected *immediately* with a typed `overloaded`
//!   error — the queue never grows beyond its capacity, so memory is
//!   bounded and latency under overload stays flat instead of
//!   collapsing.
//! * A fixed pool of **workers** pops jobs and computes. Identical eval
//!   requests coalesce: the first becomes the job, later arrivals
//!   attach as waiters and share the one computation (and,
//!   transitively, the engine's memoized artifacts). Workers deliver
//!   responses through the reactor's outbox; they never touch sockets.
//!
//! ## Result persistence
//!
//! Rendered outputs live in a [`ResultCache`]: an in-memory LRU over a
//! byte budget, written through to one fingerprinted file per entry
//! when `cache_dir` is set. On boot the cache warm-starts from disk, so
//! a restarted daemon answers its prior working set at warm latency
//! without recomputing anything.
//!
//! ## Shutdown
//!
//! A `shutdown` request (or [`ServerHandle::begin_drain`]) is
//! acknowledged immediately; the server then stops accepting work —
//! later evals get `shutting_down` errors — finishes everything queued
//! and in flight, joins its workers, flushes buffered responses, and
//! returns from [`ServerHandle::join`]. Nothing queued is dropped.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::path::{Component, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bp_experiments::{run_experiment, Engine, ExperimentConfig, TraceSet, EXPERIMENT_IDS};
use bp_predictors::{
    simulate, Gshare, GshareInterferenceFree, Pas, PasInterferenceFree, Predictor,
};
use bp_trace::io as trace_io;
use bp_workloads::WorkloadConfig;

use crate::disk_cache::{CacheConfig, EvalKey, ResultCache};
use crate::protocol::{
    ErrorCode, PredictorSpec, ProtocolError, Request, Response, DEFAULT_MAX_FRAME,
};
use crate::reactor::{ConnEvent, ConnRef, Reactor, ReactorHandle};
use crate::stats::ServerStats;

/// Upper bound on `target` a client may request per benchmark; keeps a
/// single hostile request from allocating tens of gigabytes of trace.
pub const MAX_TARGET: u64 = 20_000_000;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:4098` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads executing queued jobs.
    pub workers: usize,
    /// Bounded queue capacity; a request arriving when the queue holds
    /// this many jobs is rejected with `overloaded`.
    pub queue_capacity: usize,
    /// Fan-out budget of each persistent [`Engine`] (worker threads the
    /// engine may use *inside* one evaluation).
    pub engine_jobs: usize,
    /// Maximum accepted frame payload, bytes.
    pub max_frame: usize,
    /// Root directory for client-supplied `.bpt` paths; `None` disables
    /// the `trace_eval` endpoint.
    pub trace_dir: Option<PathBuf>,
    /// Directory for persisted result-cache entries; `None` keeps the
    /// cache memory-only (it dies with the process).
    pub cache_dir: Option<PathBuf>,
    /// Byte budget for rendered outputs held in memory.
    pub cache_budget: usize,
    /// Suppress the startup/shutdown notices on stderr.
    pub quiet: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 64,
            engine_jobs: 1,
            max_frame: DEFAULT_MAX_FRAME,
            trace_dir: None,
            cache_dir: None,
            cache_budget: 64 << 20,
            quiet: false,
        }
    }
}

/// A response destination: one request on one connection.
struct Waiter {
    id: u64,
    conn: ConnRef,
    arrived: Instant,
    deadline: Option<Instant>,
}

impl Waiter {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now > d)
    }
}

enum Job {
    Eval { key: EvalKey },
    TraceEval { req: TraceJob, waiter: Waiter },
    DelayedPing { waiter: Waiter, delay: Duration },
}

struct TraceJob {
    path: String,
    predictor: PredictorSpec,
}

enum PushError {
    Full,
    Closed,
}

/// The bounded job queue. `try_push` never blocks — admission control
/// happens at the door, not by queueing callers.
struct JobQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn try_push(&self, job: Job) -> Result<(), (Job, PushError)> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err((job, PushError::Closed));
        }
        if state.jobs.len() >= self.capacity {
            return Err((job, PushError::Full));
        }
        state.jobs.push_back(job);
        drop(state);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// empty (the drain guarantee: closing never discards queued work).
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.cond.wait(state).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.cond.notify_all();
    }
}

struct Shared {
    cfg: ServerConfig,
    local_addr: SocketAddr,
    stats: ServerStats,
    queue: JobQueue,
    draining: AtomicBool,
    reactor: ReactorHandle,
    /// One persistent engine per distinct workload, kept hot across
    /// requests — the first query for a workload builds traces and
    /// artifacts, every later one rides the engine's `EvalCache`.
    engines: Mutex<HashMap<(u64, u64), Arc<Engine>>>,
    /// Rendered experiment outputs, two-tiered: in-memory LRU plus the
    /// persistent entries under `cache_dir`. A repeat of an identical
    /// query is answered inline on the reactor thread.
    cache: ResultCache,
    /// Waiters of evaluations currently queued or computing, by key.
    inflight: Mutex<HashMap<EvalKey, Vec<Waiter>>>,
}

impl Shared {
    fn engine_for(&self, seed: u64, target: u64) -> Arc<Engine> {
        let mut engines = self.engines.lock().expect("engine pool lock");
        Arc::clone(engines.entry((seed, target)).or_insert_with(|| {
            let workload = WorkloadConfig::default()
                .with_seed(seed)
                .with_target(target as usize);
            Arc::new(Engine::new(TraceSet::new(workload), self.cfg.engine_jobs))
        }))
    }

    fn engine_totals(&self) -> (u64, u64, u64) {
        let engines = self.engines.lock().expect("engine pool lock");
        let (mut hits, mut misses) = (0, 0);
        for engine in engines.values() {
            let s = engine.cache_stats();
            hits += s.hits;
            misses += s.misses;
        }
        (engines.len() as u64, hits, misses)
    }

    /// Prints (or discards, when quiet) the cache's accumulated
    /// one-line notices about corrupt entries and failed writes.
    fn flush_cache_notices(&self) {
        for line in self.cache.take_notices() {
            if !self.cfg.quiet {
                eprintln!("bp-serve: {line}");
            }
        }
    }

    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        if !self.cfg.quiet {
            eprintln!("bp-serve: draining — no new work accepted");
        }
        self.queue.close();
        self.reactor.stop_accepting();
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// A running server. Dropping the handle does not stop the server; send
/// a `shutdown` request or call [`ServerHandle::begin_drain`], then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    main: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (useful with `:0` bind requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Starts a graceful drain, exactly as a `shutdown` request would.
    pub fn begin_drain(&self) {
        self.shared.begin_drain();
    }

    /// Waits until the server has drained and every worker has exited.
    pub fn join(self) {
        self.main.join().expect("server main thread");
    }
}

/// Binds the listener and spawns the server (reactor + workers).
///
/// # Errors
///
/// Returns the bind error if the address is unavailable, or the reactor
/// setup error under fd exhaustion.
pub fn spawn(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let local_addr = listener.local_addr()?;
    let reactor = Reactor::new(listener, cfg.max_frame)?;
    let cache = ResultCache::open(CacheConfig {
        dir: cfg.cache_dir.clone(),
        memory_budget: cfg.cache_budget,
    });
    let shared = Arc::new(Shared {
        queue: JobQueue::new(cfg.queue_capacity),
        local_addr,
        stats: ServerStats::default(),
        draining: AtomicBool::new(false),
        reactor: reactor.handle(),
        engines: Mutex::new(HashMap::new()),
        cache,
        inflight: Mutex::new(HashMap::new()),
        cfg,
    });
    shared.flush_cache_notices();
    if !shared.cfg.quiet {
        let warm = shared.cache.gauges().warm_start_entries;
        if warm > 0 {
            eprintln!("bp-serve: warm-started {warm} cache entries");
        }
        eprintln!("bp-serve: listening on {local_addr}");
    }
    let main = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || run(&shared, reactor))
    };
    Ok(ServerHandle { shared, main })
}

fn run(shared: &Arc<Shared>, reactor: Reactor) {
    let workers: Vec<_> = (0..shared.cfg.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    // The supervisor waits the workers out (they exit once the queue is
    // closed and empty), then tells the reactor to flush and stop. The
    // reactor keeps delivering worker responses the whole time.
    let supervisor = {
        let reactor = shared.reactor.clone();
        std::thread::spawn(move || {
            for w in workers {
                w.join().expect("worker thread");
            }
            reactor.finish();
        })
    };
    let dispatch_shared = Arc::clone(shared);
    reactor.run(move |event| match event {
        ConnEvent::Frame { conn, payload } => on_frame(&dispatch_shared, &conn, &payload),
        ConnEvent::Oversized { conn, len, max } => {
            dispatch_shared
                .stats
                .bad_frames
                .fetch_add(1, Ordering::Relaxed);
            // The stream position past the prefix is unrecoverable, so
            // reject and drop the connection once the error is flushed.
            conn.send_then_close(&Response::Error {
                id: 0,
                code: ErrorCode::BadRequest,
                message: format!("frame of {len} bytes exceeds the {max}-byte cap"),
            });
        }
    });
    supervisor.join().expect("drain supervisor thread");
    if !shared.cfg.quiet {
        eprintln!("bp-serve: drained, exiting");
    }
}

/// Best-effort extraction of the `id` of an undecodable request so the
/// error response still correlates.
fn salvage_id(payload: &[u8]) -> u64 {
    std::str::from_utf8(payload)
        .ok()
        .and_then(|text| crate::json::Json::parse(text).ok())
        .and_then(|v| v.get("id").and_then(crate::json::Json::as_u64))
        .unwrap_or(0)
}

fn on_frame(shared: &Arc<Shared>, conn: &ConnRef, payload: &[u8]) {
    match Request::decode(payload) {
        Ok(req) => dispatch(shared, conn, req),
        Err(ProtocolError::UnknownType(ty)) => {
            shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
            conn.send(&Response::Error {
                id: salvage_id(payload),
                code: ErrorCode::UnknownRequest,
                message: format!("unknown request type {ty:?}"),
            });
        }
        Err(e) => {
            shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
            conn.send(&Response::Error {
                id: salvage_id(payload),
                code: ErrorCode::BadRequest,
                message: e.to_string(),
            });
        }
    }
}

fn deadline_of(arrived: Instant, deadline_ms: Option<u64>) -> Option<Instant> {
    deadline_ms.map(|ms| arrived + Duration::from_millis(ms))
}

fn dispatch(shared: &Arc<Shared>, conn: &ConnRef, req: Request) {
    let arrived = Instant::now();
    match req {
        Request::Stats { id } => {
            let s = &shared.stats;
            s.stats.requests.fetch_add(1, Ordering::Relaxed);
            // Count this request as answered *before* snapshotting, so
            // the snapshot it returns is self-consistent.
            s.stats.ok.fetch_add(1, Ordering::Relaxed);
            let (engines, hits, misses) = shared.engine_totals();
            let snapshot = Box::new(s.snapshot(
                engines,
                hits,
                misses,
                shared.cache.gauges(),
                shared.reactor.gauges(),
            ));
            conn.send(&Response::Stats { id, snapshot });
        }
        Request::Ping {
            id,
            delay_ms: None | Some(0),
            ..
        } => {
            shared.stats.ping.requests.fetch_add(1, Ordering::Relaxed);
            shared.stats.ping.ok.fetch_add(1, Ordering::Relaxed);
            conn.send(&Response::Pong { id });
        }
        Request::Ping {
            id,
            delay_ms: Some(ms),
            deadline_ms,
        } => {
            shared.stats.ping.requests.fetch_add(1, Ordering::Relaxed);
            let waiter = Waiter {
                id,
                conn: conn.clone(),
                arrived,
                deadline: deadline_of(arrived, deadline_ms),
            };
            if shared.draining() {
                reject(shared, &shared.stats.ping, &waiter, ErrorCode::ShuttingDown);
                return;
            }
            let job = Job::DelayedPing {
                waiter,
                delay: Duration::from_millis(ms),
            };
            if let Err((job, why)) = shared.queue.try_push(job) {
                let Job::DelayedPing { waiter, .. } = job else {
                    unreachable!("push returns the same job");
                };
                reject_push(shared, &shared.stats.ping, &waiter, why);
            }
        }
        Request::Shutdown { id } => {
            shared
                .stats
                .shutdown
                .requests
                .fetch_add(1, Ordering::Relaxed);
            shared.stats.shutdown.ok.fetch_add(1, Ordering::Relaxed);
            conn.send(&Response::ShuttingDown { id });
            shared.begin_drain();
        }
        Request::Eval {
            id,
            experiment,
            seed,
            target,
            deadline_ms,
        } => {
            shared.stats.eval.requests.fetch_add(1, Ordering::Relaxed);
            let waiter = Waiter {
                id,
                conn: conn.clone(),
                arrived,
                deadline: deadline_of(arrived, deadline_ms),
            };
            if shared.draining() {
                reject(shared, &shared.stats.eval, &waiter, ErrorCode::ShuttingDown);
                return;
            }
            if !EXPERIMENT_IDS.contains(&experiment.as_str()) {
                shared.stats.eval.errors.fetch_add(1, Ordering::Relaxed);
                waiter.conn.send(&Response::Error {
                    id,
                    code: ErrorCode::BadRequest,
                    message: format!(
                        "unknown experiment {experiment:?} (valid: {})",
                        EXPERIMENT_IDS.join(" ")
                    ),
                });
                return;
            }
            if target == 0 || target > MAX_TARGET {
                shared.stats.eval.errors.fetch_add(1, Ordering::Relaxed);
                waiter.conn.send(&Response::Error {
                    id,
                    code: ErrorCode::BadRequest,
                    message: format!("target must be in 1..={MAX_TARGET}"),
                });
                return;
            }
            let key: EvalKey = (experiment, seed, target);
            if respond_from_cache(shared, &key, &waiter) {
                return;
            }
            // Coalesce with an identical in-flight evaluation, or become
            // the one that computes. The inflight lock is held across the
            // queue push so a failed push can retract the entry atomically;
            // workers never take the queue lock while holding inflight, so
            // the ordering is deadlock-free.
            let mut inflight = shared.inflight.lock().expect("inflight lock");
            if let Some(waiters) = inflight.get_mut(&key) {
                waiters.push(waiter);
                shared.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                return;
            }
            inflight.insert(key.clone(), vec![waiter]);
            if let Err((_, why)) = shared.queue.try_push(Job::Eval { key: key.clone() }) {
                let waiters = inflight.remove(&key).unwrap_or_default();
                drop(inflight);
                for waiter in &waiters {
                    reject_push(shared, &shared.stats.eval, waiter, why_copy(&why));
                }
            }
        }
        Request::TraceEval {
            id,
            path,
            predictor,
            deadline_ms,
        } => {
            let s = &shared.stats;
            s.trace_eval.requests.fetch_add(1, Ordering::Relaxed);
            let waiter = Waiter {
                id,
                conn: conn.clone(),
                arrived,
                deadline: deadline_of(arrived, deadline_ms),
            };
            if shared.draining() {
                reject(shared, &s.trace_eval, &waiter, ErrorCode::ShuttingDown);
                return;
            }
            if shared.cfg.trace_dir.is_none() {
                s.trace_eval.errors.fetch_add(1, Ordering::Relaxed);
                waiter.conn.send(&Response::Error {
                    id,
                    code: ErrorCode::BadRequest,
                    message: "trace evaluation is disabled (server has no --trace-dir)".to_owned(),
                });
                return;
            }
            if !is_safe_relative(&path) {
                s.trace_eval.errors.fetch_add(1, Ordering::Relaxed);
                waiter.conn.send(&Response::Error {
                    id,
                    code: ErrorCode::BadRequest,
                    message: "trace path must be relative, without '..' components".to_owned(),
                });
                return;
            }
            let job = Job::TraceEval {
                req: TraceJob { path, predictor },
                waiter,
            };
            if let Err((job, why)) = shared.queue.try_push(job) {
                let Job::TraceEval { waiter, .. } = job else {
                    unreachable!("push returns the same job");
                };
                reject_push(shared, &s.trace_eval, &waiter, why);
            }
        }
    }
}

fn why_copy(why: &PushError) -> PushError {
    match why {
        PushError::Full => PushError::Full,
        PushError::Closed => PushError::Closed,
    }
}

fn reject_push(
    shared: &Shared,
    endpoint: &crate::stats::EndpointCounters,
    waiter: &Waiter,
    why: PushError,
) {
    let code = match why {
        PushError::Full => {
            shared.stats.overloaded.fetch_add(1, Ordering::Relaxed);
            ErrorCode::Overloaded
        }
        PushError::Closed => ErrorCode::ShuttingDown,
    };
    reject(shared, endpoint, waiter, code);
}

fn reject(
    _shared: &Shared,
    endpoint: &crate::stats::EndpointCounters,
    waiter: &Waiter,
    code: ErrorCode,
) {
    endpoint.errors.fetch_add(1, Ordering::Relaxed);
    let message = match code {
        ErrorCode::Overloaded => "request queue is full, try again later".to_owned(),
        ErrorCode::ShuttingDown => "server is draining".to_owned(),
        other => other.as_str().to_owned(),
    };
    waiter.conn.send(&Response::Error {
        id: waiter.id,
        code,
        message,
    });
}

/// Answers `waiter` from the rendered-output cache (either tier) if
/// possible.
fn respond_from_cache(shared: &Shared, key: &EvalKey, waiter: &Waiter) -> bool {
    let Some((output, _tier)) = shared.cache.get(key) else {
        shared.flush_cache_notices();
        return false;
    };
    respond_result(shared, waiter, &output, true);
    true
}

/// Sends a result (or a deadline error, if the waiter expired while the
/// answer was produced) and does the latency/outcome accounting.
fn respond_result(shared: &Shared, waiter: &Waiter, output: &str, cached: bool) {
    let now = Instant::now();
    let elapsed = now.duration_since(waiter.arrived);
    // Record before sending: the moment the response leaves, the client
    // may issue a stats request that the reactor answers concurrently
    // with this (worker) thread, and a snapshot must never show fewer
    // latency samples than completed requests.
    shared
        .stats
        .eval_latency
        .record_us(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    if waiter.expired(now) {
        shared.stats.deadline_missed.fetch_add(1, Ordering::Relaxed);
        shared.stats.eval.errors.fetch_add(1, Ordering::Relaxed);
        waiter.conn.send(&Response::Error {
            id: waiter.id,
            code: ErrorCode::DeadlineExceeded,
            message: format!("deadline passed after {:.3}s", elapsed.as_secs_f64()),
        });
    } else {
        shared.stats.eval.ok.fetch_add(1, Ordering::Relaxed);
        waiter.conn.send(&Response::Result {
            id: waiter.id,
            cached,
            seconds: elapsed.as_secs_f64(),
            output: output.to_owned(),
        });
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        match job {
            Job::Eval { key } => run_eval(shared, key),
            Job::TraceEval { req, waiter } => run_trace_eval(shared, &req, &waiter),
            Job::DelayedPing { waiter, delay } => {
                std::thread::sleep(delay);
                let now = Instant::now();
                if waiter.expired(now) {
                    shared.stats.deadline_missed.fetch_add(1, Ordering::Relaxed);
                    shared.stats.ping.errors.fetch_add(1, Ordering::Relaxed);
                    waiter.conn.send(&Response::Error {
                        id: waiter.id,
                        code: ErrorCode::DeadlineExceeded,
                        message: "deadline passed while sleeping".to_owned(),
                    });
                } else {
                    shared.stats.ping.ok.fetch_add(1, Ordering::Relaxed);
                    waiter.conn.send(&Response::Pong { id: waiter.id });
                }
            }
        }
    }
}

fn run_eval(shared: &Arc<Shared>, key: EvalKey) {
    // A racing request may have completed this key between job admission
    // and now; serve everyone from the cache if so.
    {
        let mut cached = None;
        {
            let mut inflight = shared.inflight.lock().expect("inflight lock");
            if inflight.contains_key(&key) {
                if let Some((output, _tier)) = shared.cache.get(&key) {
                    let waiters = inflight.remove(&key).unwrap_or_default();
                    cached = Some((output, waiters));
                }
            } else {
                return;
            }
        }
        if let Some((output, waiters)) = cached {
            for waiter in &waiters {
                respond_result(shared, waiter, &output, true);
            }
            return;
        }
    }

    // Shed waiters that already missed their deadline; if nobody is left,
    // skip the computation entirely.
    {
        let now = Instant::now();
        let mut inflight = shared.inflight.lock().expect("inflight lock");
        let Some(waiters) = inflight.get_mut(&key) else {
            return;
        };
        let expired: Vec<Waiter> = {
            let mut keep = Vec::new();
            let mut gone = Vec::new();
            for w in waiters.drain(..) {
                if w.expired(now) {
                    gone.push(w);
                } else {
                    keep.push(w);
                }
            }
            *waiters = keep;
            gone
        };
        let abandoned = waiters.is_empty();
        if abandoned {
            inflight.remove(&key);
        }
        drop(inflight);
        for w in &expired {
            shared.stats.deadline_missed.fetch_add(1, Ordering::Relaxed);
            shared.stats.eval.errors.fetch_add(1, Ordering::Relaxed);
            w.conn.send(&Response::Error {
                id: w.id,
                code: ErrorCode::DeadlineExceeded,
                message: "deadline passed before the evaluation started".to_owned(),
            });
        }
        if abandoned {
            return;
        }
    }

    let (experiment, seed, target) = &key;
    let engine = shared.engine_for(*seed, *target);
    let cfg = ExperimentConfig {
        workload: WorkloadConfig::default()
            .with_seed(*seed)
            .with_target(*target as usize),
        ..ExperimentConfig::default()
    };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_experiment(experiment, &cfg, &engine).expect("experiment id validated at admission")
    }));

    match outcome {
        Ok(output) => {
            let output = Arc::new(output);
            shared.cache.put(&key, &output);
            shared.flush_cache_notices();
            let waiters = shared
                .inflight
                .lock()
                .expect("inflight lock")
                .remove(&key)
                .unwrap_or_default();
            for waiter in &waiters {
                respond_result(shared, waiter, &output, false);
            }
        }
        Err(_) => {
            let waiters = shared
                .inflight
                .lock()
                .expect("inflight lock")
                .remove(&key)
                .unwrap_or_default();
            for waiter in &waiters {
                shared.stats.eval.errors.fetch_add(1, Ordering::Relaxed);
                waiter.conn.send(&Response::Error {
                    id: waiter.id,
                    code: ErrorCode::Internal,
                    message: "evaluation panicked; see server log".to_owned(),
                });
            }
        }
    }
}

fn build_predictor(spec: PredictorSpec) -> Box<dyn Predictor> {
    match spec {
        PredictorSpec::Gshare { bits } => Box::new(Gshare::new(bits)),
        PredictorSpec::IfGshare { bits } => Box::new(GshareInterferenceFree::new(bits)),
        PredictorSpec::Pas => Box::<Pas>::default(),
        PredictorSpec::IfPas { history_bits } => Box::new(PasInterferenceFree::new(history_bits)),
    }
}

fn run_trace_eval(shared: &Arc<Shared>, req: &TraceJob, waiter: &Waiter) {
    let s = &shared.stats;
    let now = Instant::now();
    if waiter.expired(now) {
        s.deadline_missed.fetch_add(1, Ordering::Relaxed);
        s.trace_eval.errors.fetch_add(1, Ordering::Relaxed);
        waiter.conn.send(&Response::Error {
            id: waiter.id,
            code: ErrorCode::DeadlineExceeded,
            message: "deadline passed before the trace evaluation started".to_owned(),
        });
        return;
    }
    let root = shared
        .cfg
        .trace_dir
        .as_ref()
        .expect("trace_dir checked at admission");
    let full = root.join(&req.path);
    let loaded = std::fs::File::open(&full)
        .map_err(trace_io::TraceIoError::from)
        .and_then(|f| trace_io::read_trace(std::io::BufReader::new(f)));
    let trace = match loaded {
        Ok(trace) => trace,
        Err(e) => {
            // The exact failure modes the corruption tests pin: truncated
            // streams, bad magic, and mid-record cuts all surface here as
            // typed errors, never a worker panic.
            s.trace_eval.errors.fetch_add(1, Ordering::Relaxed);
            waiter.conn.send(&Response::Error {
                id: waiter.id,
                code: ErrorCode::BadTrace,
                message: format!("{}: {e}", req.path),
            });
            return;
        }
    };
    let mut predictor = build_predictor(req.predictor);
    let stats = simulate(&mut *predictor, &trace);
    let elapsed = waiter.arrived.elapsed();
    s.trace_eval.ok.fetch_add(1, Ordering::Relaxed);
    s.trace_latency
        .record_us(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    waiter.conn.send(&Response::TraceResult {
        id: waiter.id,
        predictions: stats.predictions,
        correct: stats.correct,
        seconds: elapsed.as_secs_f64(),
    });
}

/// A client trace path must stay inside the sandbox: relative, no `..`,
/// no absolute/prefix components.
fn is_safe_relative(path: &str) -> bool {
    let p = std::path::Path::new(path);
    !path.is_empty()
        && p.components()
            .all(|c| matches!(c, Component::Normal(_) | Component::CurDir))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_sandbox_rejects_escapes() {
        assert!(is_safe_relative("a.bpt"));
        assert!(is_safe_relative("sub/dir/a.bpt"));
        assert!(is_safe_relative("./a.bpt"));
        assert!(!is_safe_relative("/etc/passwd"));
        assert!(!is_safe_relative("../secret.bpt"));
        assert!(!is_safe_relative("a/../../b.bpt"));
        assert!(!is_safe_relative(""));
    }

    #[test]
    fn queue_sheds_above_capacity_and_drains_on_close() {
        let q = JobQueue::new(2);
        let job = || Job::Eval {
            key: ("fig4".to_owned(), 1, 1),
        };
        assert!(q.try_push(job()).is_ok());
        assert!(q.try_push(job()).is_ok());
        let Err((_, PushError::Full)) = q.try_push(job()) else {
            panic!("third push must shed");
        };
        q.close();
        let Err((_, PushError::Closed)) = q.try_push(job()) else {
            panic!("push after close must fail");
        };
        // Both queued jobs still drain, then pop reports closed.
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }
}

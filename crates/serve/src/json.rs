//! Minimal JSON value model, parser, and writer for the wire protocol.
//!
//! The workspace's `serde` is an offline no-op shim (see `crates/serde`),
//! so the serving protocol carries its own JSON support: a small value
//! enum, a recursive-descent parser with byte-offset error positions, and
//! a deterministic writer (object keys keep insertion order, so encoding
//! the same value always yields the same bytes — the CI smoke job and the
//! protocol property tests rely on that).
//!
//! Integers and floats are distinct variants: request ids and workload
//! seeds are `u64` and must survive a round trip exactly, which `f64`
//! cannot guarantee above 2^53.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, written without a decimal
    /// point (ids, seeds, counters).
    Int(u64),
    /// Any other number (negative, fractional, or exponent-formed).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and used when writing.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`], carrying the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, accepting `Int` and integral non-negative
    /// `Float`s.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(v) => Some(v),
            Json::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as `f64` (from either number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError {
                at: p.pos,
                what: "trailing garbage after document",
            });
        }
        Ok(value)
    }

    /// Writes the value as compact JSON.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{}` on f64 is shortest-roundtrip; integral floats
                    // gain a ".0" so they re-parse as Float.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        out.push_str(&format!("{v:.1}"));
                    } else {
                        out.push_str(&v.to_string());
                    }
                } else {
                    // NaN/inf are not JSON; degrade to null rather than
                    // emit an unparsable document.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting depth cap; hostile inputs must not blow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { at: self.pos, what }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, what: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", "expected null").map(|()| Json::Null),
            Some(b't') => self
                .literal("true", "expected true")
                .map(|()| Json::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected false")
                .map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.literal("\\u", "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // just consumed (input is &str, so it is valid UTF-8).
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            v = (v << 4) | digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let mut simple_int = true;
        if self.peek() == Some(b'-') {
            simple_int = false;
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            simple_int = false;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            simple_int = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if simple_int {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            at: start,
            what: "unparsable number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_string()).expect("reparse")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(u64::MAX),
            Json::Float(-1.5),
            Json::Float(3.0),
            Json::Str("hë\"llo\n\\ \u{1}".to_owned()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let v = Json::Obj(vec![
            ("a".to_owned(), Json::Arr(vec![Json::Int(1), Json::Null])),
            ("b".to_owned(), Json::Obj(vec![])),
            ("τ".to_owned(), Json::Str("δ".to_owned())),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn u64_ids_survive_exactly() {
        let big = u64::MAX - 1;
        let v = roundtrip(&Json::Int(big));
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap(),
            Json::Str("é😀".to_owned())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "\"abc", "{} x", "01x", "-", "1e", "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn deep_nesting_rejected_not_crashed() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&deep).is_err());
    }
}

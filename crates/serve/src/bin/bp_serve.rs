//! `bp-serve` — the evaluation daemon.
//!
//! ```text
//! bp-serve [--addr HOST:PORT] [--workers N] [--queue N] [--jobs N]
//!          [--trace-dir DIR] [--max-frame BYTES]
//!          [--cache-dir DIR] [--cache-budget-mb N] [--quiet]
//! ```
//!
//! With `--cache-dir` the rendered-output cache persists across
//! restarts: the daemon warm-starts from the directory's `.bpo` entries
//! at boot, so a restarted shard serves its prior working set without
//! recomputation.
//!
//! Binds, prints `listening <addr>` on stdout (so scripts binding `:0`
//! can discover the port), and serves until a client sends `shutdown`,
//! then drains the queue and exits 0. There is no SIGTERM hook — the
//! workspace vendors no libc — so supervisors should stop the daemon
//! with `bp-client --addr … shutdown`, which is the graceful path.

use std::io::Write;
use std::process::ExitCode;

use bp_serve::{spawn, ServerConfig};

fn usage() {
    eprintln!(
        "usage: bp-serve [--addr HOST:PORT] [--workers N] [--queue N] [--jobs N] \
         [--trace-dir DIR] [--max-frame BYTES] [--cache-dir DIR] [--cache-budget-mb N] [--quiet]"
    );
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:4098".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| match args.next() {
            Some(v) => Ok(v),
            None => {
                eprintln!("error: {what} needs a value");
                Err(())
            }
        };
        let parsed = match arg.as_str() {
            "--addr" => take("--addr").map(|v| cfg.addr = v),
            "--workers" => take("--workers").and_then(|v| match v.parse() {
                Ok(n) if n >= 1 => {
                    cfg.workers = n;
                    Ok(())
                }
                _ => Err(()),
            }),
            "--queue" => take("--queue").and_then(|v| match v.parse() {
                Ok(n) if n >= 1 => {
                    cfg.queue_capacity = n;
                    Ok(())
                }
                _ => Err(()),
            }),
            "--jobs" => take("--jobs").and_then(|v| match v.parse() {
                Ok(n) if n >= 1 => {
                    cfg.engine_jobs = n;
                    Ok(())
                }
                _ => Err(()),
            }),
            "--max-frame" => take("--max-frame").and_then(|v| match v.parse() {
                Ok(n) if n >= 1024 => {
                    cfg.max_frame = n;
                    Ok(())
                }
                _ => Err(()),
            }),
            "--trace-dir" => take("--trace-dir").map(|v| cfg.trace_dir = Some(v.into())),
            "--cache-dir" => take("--cache-dir").map(|v| cfg.cache_dir = Some(v.into())),
            "--cache-budget-mb" => {
                take("--cache-budget-mb").and_then(|v| match v.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        cfg.cache_budget = n << 20;
                        Ok(())
                    }
                    _ => Err(()),
                })
            }
            "--quiet" => {
                cfg.quiet = true;
                Ok(())
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown flag {other}");
                Err(())
            }
        };
        if parsed.is_err() {
            usage();
            return ExitCode::FAILURE;
        }
    }

    let handle = match spawn(cfg) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: could not bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening {}", handle.local_addr());
    let _ = std::io::stdout().flush();
    handle.join();
    ExitCode::SUCCESS
}

//! `bp-client` — CLI for one or many `bp-serve` daemons.
//!
//! ```text
//! bp-client [--addr HOST:PORT]... eval EXPERIMENT [--seed N] [--target N] [--deadline-ms N]
//! bp-client [--addr HOST:PORT] trace PATH --predictor KIND [--bits N] [--history-bits N]
//! bp-client [--addr HOST:PORT]... stats
//! bp-client [--addr HOST:PORT] ping [--delay-ms N]
//! bp-client [--addr HOST:PORT]... shutdown
//! bp-client [--addr HOST:PORT]... bench --conns N --requests M [--experiment ID]
//!           [--seed N] [--spread K] [--target N] [--rps R | --rate R] [--deadline-ms N]
//!           [--chaos-kill SHARD --chaos-after-ms T] [--json]
//! bp-client [--addr HOST:PORT] idle --conns N [--hold-ms T]
//! ```
//!
//! `bench --rps R` throttles the closed loop (each connection sleeps
//! from its last send, so a stalled server quietly slows the offered
//! load). `bench --rate R` is the open-loop mode: all sends are
//! scheduled up front at R req/s across the fleet and never re-anchored,
//! and the report adds queueing-delay percentiles — how late each send
//! actually left relative to its schedule — next to the usual service
//! latency. Use `--rate` for latency-under-load measurements; `--rps`
//! only bounds throughput.
//!
//! `--addr` may repeat: `eval`, `bench`, and `shutdown` then treat the
//! addresses as a shard fleet, routing each key over the consistent-hash
//! ring with bounded retry (`--retries`, `--retry-base-ms`,
//! `--retry-seed`) and failover. `eval` prints the served output with a
//! trailing newline, exactly as `repro --bare EXPERIMENT` prints it —
//! the two are diffable through every layer (reactor, cache, ring).
//!
//! `idle` opens N connections and holds them open without sending a
//! byte — the harness behind the idle-connection memory numbers in
//! `BENCH_repro.json`.

use std::process::ExitCode;
use std::time::Duration;

use bp_serve::{
    run_bench, BenchOptions, ChaosOptions, Client, PredictorSpec, Response, RetryPolicy,
    ShardedClient, StatsSnapshot,
};
use bp_workloads::WorkloadConfig;

fn usage() {
    eprintln!(
        "usage: bp-client [--addr HOST:PORT]... <eval|trace|stats|ping|shutdown|bench|idle> [options]\n\
         \x20 eval EXPERIMENT [--seed N] [--target N] [--deadline-ms N]\n\
         \x20 trace PATH --predictor gshare|if_gshare|pas|if_pas [--bits N] [--history-bits N]\n\
         \x20 stats | ping [--delay-ms N] | shutdown\n\
         \x20 bench --conns N --requests M [--experiment ID] [--seed N] [--spread K] [--target N] \
         [--rps R | --rate R] [--deadline-ms N] [--chaos-kill SHARD --chaos-after-ms T] [--json]\n\
         \x20 idle --conns N [--hold-ms T]\n\
         \x20 retry (eval/bench): [--retries N] [--retry-base-ms T] [--retry-seed N]"
    );
}

struct Flags {
    addrs: Vec<String>,
    command: String,
    positional: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

fn parse_args() -> Result<Flags, ()> {
    let mut addrs = Vec::new();
    let mut command = String::new();
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        if arg == "--addr" {
            addrs.push(args.next().ok_or(())?);
        } else if arg == "--help" || arg == "-h" {
            return Err(());
        } else if let Some(flag) = arg.strip_prefix("--") {
            // Flags that take values vs booleans.
            let value = match flag {
                "json" => None,
                _ => Some(args.next().ok_or(())?),
            };
            options.push((flag.to_owned(), value));
        } else if command.is_empty() {
            command = arg;
        } else {
            positional.push(arg);
        }
    }
    if command.is_empty() {
        return Err(());
    }
    if addrs.is_empty() {
        addrs.push("127.0.0.1:4098".to_owned());
    }
    Ok(Flags {
        addrs,
        command,
        positional,
        options,
    })
}

fn opt<'a>(flags: &'a Flags, name: &str) -> Option<&'a str> {
    flags
        .options
        .iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| v.as_deref())
}

fn opt_u64(flags: &Flags, name: &str) -> Result<Option<u64>, ()> {
    match opt(flags, name) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| {
            eprintln!("error: --{name} needs an unsigned integer");
        }),
    }
}

fn has_flag(flags: &Flags, name: &str) -> bool {
    flags.options.iter().any(|(k, _)| k == name)
}

fn retry_policy(flags: &Flags) -> Result<RetryPolicy, ()> {
    let mut policy = RetryPolicy::default();
    if let Some(n) = opt_u64(flags, "retries")? {
        policy.attempts = (n as u32).max(1);
    }
    if let Some(ms) = opt_u64(flags, "retry-base-ms")? {
        policy.base = Duration::from_millis(ms);
    }
    if let Some(seed) = opt_u64(flags, "retry-seed")? {
        policy.seed = seed;
    }
    Ok(policy)
}

fn print_stats(s: &StatsSnapshot) {
    println!("endpoint      requests        ok    errors");
    for (name, e) in [
        ("eval", s.eval),
        ("trace_eval", s.trace_eval),
        ("stats", s.stats),
        ("ping", s.ping),
        ("shutdown", s.shutdown),
    ] {
        println!("{name:<12} {:>9} {:>9} {:>9}", e.requests, e.ok, e.errors);
    }
    println!(
        "backpressure: overloaded {}  deadline_missed {}  bad_frames {}",
        s.overloaded, s.deadline_missed, s.bad_frames
    );
    println!(
        "caching: memory_hits {}  disk_hits {}  entries {}  bytes {}  evictions {}  \
         warm_start {}  coalesced {}",
        s.result_cache_hits,
        s.disk_cache_hits,
        s.cache_entries,
        s.cache_bytes,
        s.cache_evictions,
        s.warm_start_entries,
        s.coalesced
    );
    println!(
        "engines: {}  engine cache {} hits / {} misses",
        s.engines, s.engine_cache_hits, s.engine_cache_misses
    );
    println!(
        "connections: open {}  accepted {}",
        s.open_connections, s.conns_accepted
    );
    println!(
        "eval latency: count {}  p50 {:.3}ms  p99 {:.3}ms  p999 {:.3}ms  max {:.3}ms",
        s.eval_latency.count,
        s.eval_latency.p50_us as f64 / 1e3,
        s.eval_latency.p99_us as f64 / 1e3,
        s.eval_latency.p999_us as f64 / 1e3,
        s.eval_latency.max_us as f64 / 1e3
    );
    if s.trace_latency.count > 0 {
        println!(
            "trace latency: count {}  p50 {:.3}ms  p99 {:.3}ms  p999 {:.3}ms  max {:.3}ms",
            s.trace_latency.count,
            s.trace_latency.p50_us as f64 / 1e3,
            s.trace_latency.p99_us as f64 / 1e3,
            s.trace_latency.p999_us as f64 / 1e3,
            s.trace_latency.max_us as f64 / 1e3
        );
    }
}

fn report_unexpected(resp: &Response) -> ExitCode {
    match resp {
        Response::Error { code, message, .. } => {
            eprintln!("error ({}): {message}", code.as_str());
        }
        other => eprintln!("error: unexpected response {other:?}"),
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let Ok(flags) = parse_args() else {
        usage();
        return ExitCode::FAILURE;
    };
    let defaults = WorkloadConfig::default();

    let run = || -> Result<ExitCode, Box<dyn std::error::Error>> {
        match flags.command.as_str() {
            "eval" => {
                let [experiment] = &flags.positional[..] else {
                    usage();
                    return Ok(ExitCode::FAILURE);
                };
                let seed = opt_u64(&flags, "seed").map_err(|()| "bad --seed")?;
                let target = opt_u64(&flags, "target").map_err(|()| "bad --target")?;
                let deadline = opt_u64(&flags, "deadline-ms").map_err(|()| "bad --deadline-ms")?;
                let retry = retry_policy(&flags).map_err(|()| "bad retry flags")?;
                let mut client = ShardedClient::new(flags.addrs.clone(), retry);
                let resp = client.eval(
                    experiment,
                    seed.unwrap_or(defaults.seed),
                    target.unwrap_or(defaults.target_branches as u64),
                    deadline,
                )?;
                match resp {
                    Response::Result {
                        output,
                        cached,
                        seconds,
                        ..
                    } => {
                        println!("{output}");
                        eprintln!(
                            "[served in {seconds:.3}s{}]",
                            if cached { ", cached" } else { "" }
                        );
                        Ok(ExitCode::SUCCESS)
                    }
                    other => Ok(report_unexpected(&other)),
                }
            }
            "trace" => {
                let [path] = &flags.positional[..] else {
                    usage();
                    return Ok(ExitCode::FAILURE);
                };
                let bits = opt_u64(&flags, "bits")
                    .map_err(|()| "bad --bits")?
                    .unwrap_or(16) as u32;
                let history_bits = opt_u64(&flags, "history-bits")
                    .map_err(|()| "bad --history-bits")?
                    .unwrap_or(6) as u32;
                let predictor = match opt(&flags, "predictor").unwrap_or("gshare") {
                    "gshare" => PredictorSpec::Gshare { bits },
                    "if_gshare" => PredictorSpec::IfGshare { bits },
                    "pas" => PredictorSpec::Pas,
                    "if_pas" => PredictorSpec::IfPas { history_bits },
                    other => {
                        eprintln!("error: unknown predictor {other}");
                        return Ok(ExitCode::FAILURE);
                    }
                };
                let deadline = opt_u64(&flags, "deadline-ms").map_err(|()| "bad --deadline-ms")?;
                let mut client = Client::connect(&flags.addrs[0])?;
                match client.trace_eval(path, predictor, deadline)? {
                    Response::TraceResult {
                        predictions,
                        correct,
                        seconds,
                        ..
                    } => {
                        let pct = if predictions == 0 {
                            0.0
                        } else {
                            correct as f64 / predictions as f64 * 100.0
                        };
                        println!("{correct}/{predictions} correct ({pct:.2}%) in {seconds:.3}s");
                        Ok(ExitCode::SUCCESS)
                    }
                    other => Ok(report_unexpected(&other)),
                }
            }
            "stats" => {
                let many = flags.addrs.len() > 1;
                let mut failures = 0;
                for addr in &flags.addrs {
                    if many {
                        println!("== shard {addr} ==");
                    }
                    match Client::connect(addr).and_then(|mut c| c.stats()) {
                        Ok(Response::Stats { snapshot, .. }) => print_stats(&snapshot),
                        Ok(other) => {
                            report_unexpected(&other);
                            failures += 1;
                        }
                        Err(e) => {
                            eprintln!("error: {addr}: {e}");
                            failures += 1;
                        }
                    }
                }
                Ok(if failures == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                })
            }
            "ping" => {
                let delay = opt_u64(&flags, "delay-ms").map_err(|()| "bad --delay-ms")?;
                let mut client = Client::connect(&flags.addrs[0])?;
                match client.ping(delay)? {
                    Response::Pong { .. } => {
                        println!("pong");
                        Ok(ExitCode::SUCCESS)
                    }
                    other => Ok(report_unexpected(&other)),
                }
            }
            "shutdown" => {
                let mut failures = 0;
                for addr in &flags.addrs {
                    match Client::connect(addr).and_then(|mut c| c.shutdown()) {
                        Ok(Response::ShuttingDown { .. }) => {
                            println!("{addr} draining");
                        }
                        Ok(other) => {
                            report_unexpected(&other);
                            failures += 1;
                        }
                        Err(e) => {
                            eprintln!("error: {addr}: {e}");
                            failures += 1;
                        }
                    }
                }
                Ok(if failures == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                })
            }
            "bench" => {
                let conns = opt_u64(&flags, "conns")
                    .map_err(|()| "bad --conns")?
                    .unwrap_or(4) as usize;
                let requests = opt_u64(&flags, "requests")
                    .map_err(|()| "bad --requests")?
                    .unwrap_or(32) as usize;
                let seed = opt_u64(&flags, "seed").map_err(|()| "bad --seed")?;
                let spread = opt_u64(&flags, "spread").map_err(|()| "bad --spread")?;
                let target = opt_u64(&flags, "target").map_err(|()| "bad --target")?;
                let deadline = opt_u64(&flags, "deadline-ms").map_err(|()| "bad --deadline-ms")?;
                let rps = match opt(&flags, "rps") {
                    None => None,
                    Some(v) => Some(v.parse::<f64>().map_err(|_| "bad --rps")?),
                };
                let rate = match opt(&flags, "rate") {
                    None => None,
                    Some(v) => Some(v.parse::<f64>().map_err(|_| "bad --rate")?),
                };
                if rps.is_some() && rate.is_some() {
                    return Err(
                        "--rps (closed-loop throttle) and --rate (open-loop schedule) \
                         are mutually exclusive"
                            .into(),
                    );
                }
                let retry = retry_policy(&flags).map_err(|()| "bad retry flags")?;
                let chaos_kill = opt_u64(&flags, "chaos-kill").map_err(|()| "bad --chaos-kill")?;
                let chaos_after =
                    opt_u64(&flags, "chaos-after-ms").map_err(|()| "bad --chaos-after-ms")?;
                let chaos = match (chaos_kill, chaos_after) {
                    (Some(shard), after) => {
                        if shard as usize >= flags.addrs.len() {
                            return Err("--chaos-kill is out of range for the address list".into());
                        }
                        Some(ChaosOptions {
                            kill_shard: shard as usize,
                            after: Duration::from_millis(after.unwrap_or(500)),
                        })
                    }
                    (None, Some(_)) => {
                        return Err("--chaos-after-ms needs --chaos-kill".into());
                    }
                    (None, None) => None,
                };
                let opts = BenchOptions {
                    addrs: flags.addrs.clone(),
                    conns: conns.max(1),
                    requests_per_conn: requests.max(1),
                    experiment: opt(&flags, "experiment").unwrap_or("fig4").to_owned(),
                    seed: seed.unwrap_or(defaults.seed),
                    seed_spread: spread.unwrap_or(1).max(1),
                    target: target.unwrap_or(defaults.target_branches as u64),
                    deadline_ms: deadline,
                    rps,
                    rate,
                    retry,
                    chaos,
                };
                let report = run_bench(&opts)?;
                if has_flag(&flags, "json") {
                    println!("{}", report.render_json());
                } else {
                    println!("{}", report.render_text());
                }
                Ok(ExitCode::SUCCESS)
            }
            "idle" => {
                let conns = opt_u64(&flags, "conns")
                    .map_err(|()| "bad --conns")?
                    .unwrap_or(100) as usize;
                let hold = opt_u64(&flags, "hold-ms")
                    .map_err(|()| "bad --hold-ms")?
                    .unwrap_or(60_000);
                let mut held = Vec::with_capacity(conns);
                for i in 0..conns {
                    let addr = &flags.addrs[i % flags.addrs.len()];
                    match std::net::TcpStream::connect(addr.as_str()) {
                        Ok(stream) => held.push(stream),
                        Err(e) => {
                            eprintln!("error: connection {i} to {addr} failed: {e}");
                            break;
                        }
                    }
                }
                // Printed once all sockets are up so harnesses can key
                // their memory measurement off this line.
                let complete = held.len() == conns;
                println!("idle holding {} connections", held.len());
                use std::io::Write;
                let _ = std::io::stdout().flush();
                std::thread::sleep(Duration::from_millis(hold));
                drop(held);
                Ok(if complete {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                })
            }
            _ => {
                usage();
                Ok(ExitCode::FAILURE)
            }
        }
    };
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! `bp-client` — CLI for the `bp-serve` daemon.
//!
//! ```text
//! bp-client [--addr HOST:PORT] eval EXPERIMENT [--seed N] [--target N] [--deadline-ms N]
//! bp-client [--addr HOST:PORT] trace PATH --predictor KIND [--bits N] [--history-bits N]
//! bp-client [--addr HOST:PORT] stats
//! bp-client [--addr HOST:PORT] ping [--delay-ms N]
//! bp-client [--addr HOST:PORT] shutdown
//! bp-client [--addr HOST:PORT] bench --conns N --requests M [--experiment ID]
//!           [--seed N] [--target N] [--rps R] [--deadline-ms N] [--json]
//! ```
//!
//! `eval` prints the served output with a trailing newline, exactly as
//! `repro --bare EXPERIMENT` prints it — the two are diffable.

use std::process::ExitCode;

use bp_serve::{run_bench, BenchOptions, Client, PredictorSpec, Response, StatsSnapshot};
use bp_workloads::WorkloadConfig;

fn usage() {
    eprintln!(
        "usage: bp-client [--addr HOST:PORT] <eval|trace|stats|ping|shutdown|bench> [options]\n\
         \x20 eval EXPERIMENT [--seed N] [--target N] [--deadline-ms N]\n\
         \x20 trace PATH --predictor gshare|if_gshare|pas|if_pas [--bits N] [--history-bits N]\n\
         \x20 stats | ping [--delay-ms N] | shutdown\n\
         \x20 bench --conns N --requests M [--experiment ID] [--seed N] [--target N] \
         [--rps R] [--deadline-ms N] [--json]"
    );
}

struct Flags {
    addr: String,
    command: String,
    positional: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

fn parse_args() -> Result<Flags, ()> {
    let mut addr = "127.0.0.1:4098".to_owned();
    let mut command = String::new();
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        if arg == "--addr" {
            addr = args.next().ok_or(())?;
        } else if arg == "--help" || arg == "-h" {
            return Err(());
        } else if let Some(flag) = arg.strip_prefix("--") {
            // Flags that take values vs booleans.
            let value = match flag {
                "json" => None,
                _ => Some(args.next().ok_or(())?),
            };
            options.push((flag.to_owned(), value));
        } else if command.is_empty() {
            command = arg;
        } else {
            positional.push(arg);
        }
    }
    if command.is_empty() {
        return Err(());
    }
    Ok(Flags {
        addr,
        command,
        positional,
        options,
    })
}

fn opt<'a>(flags: &'a Flags, name: &str) -> Option<&'a str> {
    flags
        .options
        .iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| v.as_deref())
}

fn opt_u64(flags: &Flags, name: &str) -> Result<Option<u64>, ()> {
    match opt(flags, name) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| {
            eprintln!("error: --{name} needs an unsigned integer");
        }),
    }
}

fn has_flag(flags: &Flags, name: &str) -> bool {
    flags.options.iter().any(|(k, _)| k == name)
}

fn print_stats(s: &StatsSnapshot) {
    println!("endpoint      requests        ok    errors");
    for (name, e) in [
        ("eval", s.eval),
        ("trace_eval", s.trace_eval),
        ("stats", s.stats),
        ("ping", s.ping),
        ("shutdown", s.shutdown),
    ] {
        println!("{name:<12} {:>9} {:>9} {:>9}", e.requests, e.ok, e.errors);
    }
    println!(
        "backpressure: overloaded {}  deadline_missed {}  bad_frames {}",
        s.overloaded, s.deadline_missed, s.bad_frames
    );
    println!(
        "caching: result_cache_hits {}  coalesced {}  engines {}  engine cache {} hits / {} misses",
        s.result_cache_hits, s.coalesced, s.engines, s.engine_cache_hits, s.engine_cache_misses
    );
    println!(
        "eval latency: count {}  p50 {:.3}ms  p99 {:.3}ms  max {:.3}ms",
        s.eval_latency.count,
        s.eval_latency.p50_us as f64 / 1e3,
        s.eval_latency.p99_us as f64 / 1e3,
        s.eval_latency.max_us as f64 / 1e3
    );
    if s.trace_latency.count > 0 {
        println!(
            "trace latency: count {}  p50 {:.3}ms  p99 {:.3}ms  max {:.3}ms",
            s.trace_latency.count,
            s.trace_latency.p50_us as f64 / 1e3,
            s.trace_latency.p99_us as f64 / 1e3,
            s.trace_latency.max_us as f64 / 1e3
        );
    }
}

fn report_unexpected(resp: &Response) -> ExitCode {
    match resp {
        Response::Error { code, message, .. } => {
            eprintln!("error ({}): {message}", code.as_str());
        }
        other => eprintln!("error: unexpected response {other:?}"),
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let Ok(flags) = parse_args() else {
        usage();
        return ExitCode::FAILURE;
    };
    let defaults = WorkloadConfig::default();

    let run = || -> Result<ExitCode, Box<dyn std::error::Error>> {
        match flags.command.as_str() {
            "eval" => {
                let [experiment] = &flags.positional[..] else {
                    usage();
                    return Ok(ExitCode::FAILURE);
                };
                let seed = opt_u64(&flags, "seed").map_err(|()| "bad --seed")?;
                let target = opt_u64(&flags, "target").map_err(|()| "bad --target")?;
                let deadline = opt_u64(&flags, "deadline-ms").map_err(|()| "bad --deadline-ms")?;
                let mut client = Client::connect(&flags.addr)?;
                let resp = client.eval(
                    experiment,
                    seed.unwrap_or(defaults.seed),
                    target.unwrap_or(defaults.target_branches as u64),
                    deadline,
                )?;
                match resp {
                    Response::Result {
                        output,
                        cached,
                        seconds,
                        ..
                    } => {
                        println!("{output}");
                        eprintln!(
                            "[served in {seconds:.3}s{}]",
                            if cached { ", cached" } else { "" }
                        );
                        Ok(ExitCode::SUCCESS)
                    }
                    other => Ok(report_unexpected(&other)),
                }
            }
            "trace" => {
                let [path] = &flags.positional[..] else {
                    usage();
                    return Ok(ExitCode::FAILURE);
                };
                let bits = opt_u64(&flags, "bits")
                    .map_err(|()| "bad --bits")?
                    .unwrap_or(16) as u32;
                let history_bits = opt_u64(&flags, "history-bits")
                    .map_err(|()| "bad --history-bits")?
                    .unwrap_or(6) as u32;
                let predictor = match opt(&flags, "predictor").unwrap_or("gshare") {
                    "gshare" => PredictorSpec::Gshare { bits },
                    "if_gshare" => PredictorSpec::IfGshare { bits },
                    "pas" => PredictorSpec::Pas,
                    "if_pas" => PredictorSpec::IfPas { history_bits },
                    other => {
                        eprintln!("error: unknown predictor {other}");
                        return Ok(ExitCode::FAILURE);
                    }
                };
                let deadline = opt_u64(&flags, "deadline-ms").map_err(|()| "bad --deadline-ms")?;
                let mut client = Client::connect(&flags.addr)?;
                match client.trace_eval(path, predictor, deadline)? {
                    Response::TraceResult {
                        predictions,
                        correct,
                        seconds,
                        ..
                    } => {
                        let pct = if predictions == 0 {
                            0.0
                        } else {
                            correct as f64 / predictions as f64 * 100.0
                        };
                        println!("{correct}/{predictions} correct ({pct:.2}%) in {seconds:.3}s");
                        Ok(ExitCode::SUCCESS)
                    }
                    other => Ok(report_unexpected(&other)),
                }
            }
            "stats" => {
                let mut client = Client::connect(&flags.addr)?;
                match client.stats()? {
                    Response::Stats { snapshot, .. } => {
                        print_stats(&snapshot);
                        Ok(ExitCode::SUCCESS)
                    }
                    other => Ok(report_unexpected(&other)),
                }
            }
            "ping" => {
                let delay = opt_u64(&flags, "delay-ms").map_err(|()| "bad --delay-ms")?;
                let mut client = Client::connect(&flags.addr)?;
                match client.ping(delay)? {
                    Response::Pong { .. } => {
                        println!("pong");
                        Ok(ExitCode::SUCCESS)
                    }
                    other => Ok(report_unexpected(&other)),
                }
            }
            "shutdown" => {
                let mut client = Client::connect(&flags.addr)?;
                match client.shutdown()? {
                    Response::ShuttingDown { .. } => {
                        println!("server draining");
                        Ok(ExitCode::SUCCESS)
                    }
                    other => Ok(report_unexpected(&other)),
                }
            }
            "bench" => {
                let conns = opt_u64(&flags, "conns")
                    .map_err(|()| "bad --conns")?
                    .unwrap_or(4) as usize;
                let requests = opt_u64(&flags, "requests")
                    .map_err(|()| "bad --requests")?
                    .unwrap_or(32) as usize;
                let seed = opt_u64(&flags, "seed").map_err(|()| "bad --seed")?;
                let target = opt_u64(&flags, "target").map_err(|()| "bad --target")?;
                let deadline = opt_u64(&flags, "deadline-ms").map_err(|()| "bad --deadline-ms")?;
                let rps = match opt(&flags, "rps") {
                    None => None,
                    Some(v) => Some(v.parse::<f64>().map_err(|_| "bad --rps")?),
                };
                let opts = BenchOptions {
                    addr: flags.addr.clone(),
                    conns: conns.max(1),
                    requests_per_conn: requests.max(1),
                    experiment: opt(&flags, "experiment").unwrap_or("fig4").to_owned(),
                    seed: seed.unwrap_or(defaults.seed),
                    target: target.unwrap_or(defaults.target_branches as u64),
                    deadline_ms: deadline,
                    rps,
                };
                let report = run_bench(&opts)?;
                if has_flag(&flags, "json") {
                    println!("{}", report.render_json());
                } else {
                    println!("{}", report.render_text());
                }
                Ok(ExitCode::SUCCESS)
            }
            _ => {
                usage();
                Ok(ExitCode::FAILURE)
            }
        }
    };
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

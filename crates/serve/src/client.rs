//! Blocking client for the `bp-serve` protocol, plus the closed-loop
//! load generator behind `bp-client bench`.

use std::fmt;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, PredictorSpec, ProtocolError, Request,
    Response, DEFAULT_MAX_FRAME,
};

/// Client-side failure talking to a server.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or framing failed.
    Frame(FrameError),
    /// The server's bytes did not decode as a response.
    Protocol(ProtocolError),
    /// The server closed the connection before answering.
    ClosedEarly,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::ClosedEarly => write!(f, "server closed the connection early"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// One connection to a server. Requests issued through a `Client` are
/// sequential (one outstanding at a time); ids are assigned internally
/// and responses matched on them.
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
    max_frame: usize,
    next_id: u64,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:4098`).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let writer = TcpStream::connect(addr)?;
        let _ = writer.set_nodelay(true);
        let reader = writer.try_clone()?;
        Ok(Client {
            reader,
            writer,
            max_frame: DEFAULT_MAX_FRAME,
            next_id: 1,
        })
    }

    /// Sends one request and waits for the response with a matching id.
    ///
    /// # Errors
    ///
    /// Framing, protocol, or early-close failures.
    pub fn call(&mut self, make: impl FnOnce(u64) -> Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = make(id);
        write_frame(&mut self.writer, &req.encode(), self.max_frame)?;
        loop {
            let Some(payload) = read_frame(&mut self.reader, self.max_frame)? else {
                return Err(ClientError::ClosedEarly);
            };
            let resp = Response::decode(&payload)?;
            // A response to a stale id (e.g. after a timeout the caller
            // ignored) is dropped; id 0 answers undecodable requests.
            if resp.id() == id || resp.id() == 0 {
                return Ok(resp);
            }
        }
    }

    /// Evaluates one experiment over the synthetic workload.
    ///
    /// # Errors
    ///
    /// Transport failures; server-side errors arrive as
    /// [`Response::Error`].
    pub fn eval(
        &mut self,
        experiment: &str,
        seed: u64,
        target: u64,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let experiment = experiment.to_owned();
        self.call(move |id| Request::Eval {
            id,
            experiment,
            seed,
            target,
            deadline_ms,
        })
    }

    /// Runs a predictor over a server-side `.bpt` trace.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn trace_eval(
        &mut self,
        path: &str,
        predictor: PredictorSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let path = path.to_owned();
        self.call(move |id| Request::TraceEval {
            id,
            path,
            predictor,
            deadline_ms,
        })
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.call(|id| Request::Stats { id })
    }

    /// Pings the server (optionally via the worker queue with a delay).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn ping(&mut self, delay_ms: Option<u64>) -> Result<Response, ClientError> {
        self.call(move |id| Request::Ping {
            id,
            delay_ms,
            deadline_ms: None,
        })
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.call(|id| Request::Shutdown { id })
    }
}

/// Load-generator options (`bp-client bench`).
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Server address.
    pub addr: String,
    /// Concurrent connections, each a closed loop.
    pub conns: usize,
    /// Requests issued per connection.
    pub requests_per_conn: usize,
    /// Experiment to evaluate.
    pub experiment: String,
    /// Workload seed.
    pub seed: u64,
    /// Workload target branches.
    pub target: u64,
    /// Optional per-request deadline.
    pub deadline_ms: Option<u64>,
    /// Optional total request rate; each connection paces itself at
    /// `rps / conns`. `None` = as fast as the closed loop allows.
    pub rps: Option<f64>,
}

/// Load-generator outcome.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Requests issued.
    pub sent: u64,
    /// Successful results.
    pub ok: u64,
    /// Of `ok`, how many were served from the rendered-output cache.
    pub cached: u64,
    /// `overloaded` rejections.
    pub overloaded: u64,
    /// `deadline_exceeded` errors.
    pub deadline_missed: u64,
    /// Any other error responses or transport failures.
    pub other_errors: u64,
    /// Wall time of the whole run, seconds.
    pub wall_seconds: f64,
    /// `sent / wall_seconds`.
    pub achieved_rps: f64,
    /// Median request latency, milliseconds (completed requests).
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Maximum latency, milliseconds.
    pub max_ms: f64,
}

impl BenchReport {
    fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
        if sorted_ms.is_empty() {
            return 0.0;
        }
        let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
        sorted_ms[rank - 1]
    }

    /// Renders the report as the `bp-client bench` text output.
    pub fn render_text(&self) -> String {
        format!(
            "requests: {} ({} ok, {} cached, {} overloaded, {} deadline, {} other errors)\n\
             wall: {:.3}s  throughput: {:.1} req/s\n\
             latency ms: p50 {:.3}  p99 {:.3}  max {:.3}",
            self.sent,
            self.ok,
            self.cached,
            self.overloaded,
            self.deadline_missed,
            self.other_errors,
            self.wall_seconds,
            self.achieved_rps,
            self.p50_ms,
            self.p99_ms,
            self.max_ms
        )
    }

    /// Renders the report as a JSON object (the shape recorded in
    /// `BENCH_repro.json`).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"sent\": {}, \"ok\": {}, \"cached\": {}, \"overloaded\": {}, \
             \"deadline\": {}, \"other_errors\": {}, \"wall_seconds\": {:.3}, \
             \"achieved_rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}}}",
            self.sent,
            self.ok,
            self.cached,
            self.overloaded,
            self.deadline_missed,
            self.other_errors,
            self.wall_seconds,
            self.achieved_rps,
            self.p50_ms,
            self.p99_ms,
            self.max_ms
        )
    }
}

/// Runs the load generator: `conns` closed-loop connections, each
/// issuing `requests_per_conn` identical eval requests (the repeat of an
/// identical query is exactly the warm-cache serving path).
///
/// # Errors
///
/// Only setup failures (first connection refused); per-request failures
/// are counted in the report instead.
pub fn run_bench(opts: &BenchOptions) -> Result<BenchReport, ClientError> {
    // Fail fast if the server is unreachable rather than spawning
    // threads that all error out.
    drop(Client::connect(&opts.addr)?);
    let pace = opts
        .rps
        .filter(|r| *r > 0.0)
        .map(|rps| Duration::from_secs_f64(opts.conns as f64 / rps));
    let started = Instant::now();
    let per_conn: Vec<(Vec<f64>, BenchReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.conns)
            .map(|_| {
                scope.spawn(|| {
                    let mut latencies_ms: Vec<f64> = Vec::new();
                    let mut report = BenchReport::default();
                    let Ok(mut client) = Client::connect(&opts.addr) else {
                        report.other_errors += opts.requests_per_conn as u64;
                        report.sent += opts.requests_per_conn as u64;
                        return (latencies_ms, report);
                    };
                    let mut next_fire = Instant::now();
                    for _ in 0..opts.requests_per_conn {
                        if let Some(interval) = pace {
                            let now = Instant::now();
                            if next_fire > now {
                                std::thread::sleep(next_fire - now);
                            }
                            next_fire += interval;
                        }
                        let t0 = Instant::now();
                        report.sent += 1;
                        match client.eval(
                            &opts.experiment,
                            opts.seed,
                            opts.target,
                            opts.deadline_ms,
                        ) {
                            Ok(Response::Result { cached, .. }) => {
                                report.ok += 1;
                                if cached {
                                    report.cached += 1;
                                }
                                latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                            }
                            Ok(Response::Error { code, .. }) => {
                                latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                                match code {
                                    ErrorCode::Overloaded => report.overloaded += 1,
                                    ErrorCode::DeadlineExceeded => report.deadline_missed += 1,
                                    _ => report.other_errors += 1,
                                }
                            }
                            Ok(_) => report.other_errors += 1,
                            Err(_) => {
                                report.other_errors += 1;
                                // The connection may be unusable; reconnect.
                                match Client::connect(&opts.addr) {
                                    Ok(c) => client = c,
                                    Err(_) => break,
                                }
                            }
                        }
                    }
                    (latencies_ms, report)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench connection thread"))
            .collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();
    let mut merged = BenchReport {
        wall_seconds,
        ..BenchReport::default()
    };
    let mut latencies: Vec<f64> = Vec::new();
    for (lat, r) in per_conn {
        latencies.extend(lat);
        merged.sent += r.sent;
        merged.ok += r.ok;
        merged.cached += r.cached;
        merged.overloaded += r.overloaded;
        merged.deadline_missed += r.deadline_missed;
        merged.other_errors += r.other_errors;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    merged.achieved_rps = if wall_seconds > 0.0 {
        merged.sent as f64 / wall_seconds
    } else {
        0.0
    };
    merged.p50_ms = BenchReport::quantile(&latencies, 0.50);
    merged.p99_ms = BenchReport::quantile(&latencies, 0.99);
    merged.max_ms = latencies.last().copied().unwrap_or(0.0);
    Ok(merged)
}

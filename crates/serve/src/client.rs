//! Clients for the `bp-serve` protocol: the blocking single-connection
//! [`Client`], the ring-routing [`ShardedClient`] with bounded
//! retry/backoff and failover, and the load generator behind
//! `bp-client bench` (including its kill-a-shard chaos mode).
//!
//! The generator has two pacing modes. The default closed loop issues
//! the next request as soon as the previous one completes (optionally
//! throttled by `rps`, which sleeps *from the last send* — a slow
//! response silently stretches the schedule, the classic coordinated
//! omission). The open loop (`rate`) instead fixes every request's send
//! time up front from the run start and never re-anchors: when the
//! server stalls, the slippage accumulates and is reported as queueing
//! delay alongside the service-latency percentiles, which is what a
//! latency-under-load claim actually needs.

use std::fmt;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, PredictorSpec, ProtocolError, Request,
    Response, DEFAULT_MAX_FRAME,
};
use crate::ring::{Jitter, RetryPolicy, Ring};

/// Client-side failure talking to a server.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or framing failed.
    Frame(FrameError),
    /// The server's bytes did not decode as a response.
    Protocol(ProtocolError),
    /// The server closed the connection before answering.
    ClosedEarly,
    /// Failover exhausted the ring: every candidate shard was down,
    /// draining, or unreachable through the whole retry budget.
    ShardUnreachable {
        /// Shards tried (the full failover sequence for the key).
        shards: usize,
        /// Total connection/request attempts spent across them.
        attempts: u32,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::ClosedEarly => write!(f, "server closed the connection early"),
            ClientError::ShardUnreachable { shards, attempts } => write!(
                f,
                "shard unreachable: all {shards} ring candidates failed ({attempts} attempts)"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// One connection to a server. Requests issued through a `Client` are
/// sequential (one outstanding at a time); ids are assigned internally
/// and responses matched on them.
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
    max_frame: usize,
    next_id: u64,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:4098`).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let writer = TcpStream::connect(addr)?;
        let _ = writer.set_nodelay(true);
        let reader = writer.try_clone()?;
        Ok(Client {
            reader,
            writer,
            max_frame: DEFAULT_MAX_FRAME,
            next_id: 1,
        })
    }

    /// Sends one request and waits for the response with a matching id.
    ///
    /// # Errors
    ///
    /// Framing, protocol, or early-close failures.
    pub fn call(&mut self, make: impl FnOnce(u64) -> Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = make(id);
        write_frame(&mut self.writer, &req.encode(), self.max_frame)?;
        loop {
            let Some(payload) = read_frame(&mut self.reader, self.max_frame)? else {
                return Err(ClientError::ClosedEarly);
            };
            let resp = Response::decode(&payload)?;
            // A response to a stale id (e.g. after a timeout the caller
            // ignored) is dropped; id 0 answers undecodable requests.
            if resp.id() == id || resp.id() == 0 {
                return Ok(resp);
            }
        }
    }

    /// Evaluates one experiment over the synthetic workload.
    ///
    /// # Errors
    ///
    /// Transport failures; server-side errors arrive as
    /// [`Response::Error`].
    pub fn eval(
        &mut self,
        experiment: &str,
        seed: u64,
        target: u64,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let experiment = experiment.to_owned();
        self.call(move |id| Request::Eval {
            id,
            experiment,
            seed,
            target,
            deadline_ms,
        })
    }

    /// Runs a predictor over a server-side `.bpt` trace.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn trace_eval(
        &mut self,
        path: &str,
        predictor: PredictorSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let path = path.to_owned();
        self.call(move |id| Request::TraceEval {
            id,
            path,
            predictor,
            deadline_ms,
        })
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.call(|id| Request::Stats { id })
    }

    /// Pings the server (optionally via the worker queue with a delay).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn ping(&mut self, delay_ms: Option<u64>) -> Result<Response, ClientError> {
        self.call(move |id| Request::Ping {
            id,
            delay_ms,
            deadline_ms: None,
        })
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.call(|id| Request::Shutdown { id })
    }
}

/// How long a shard that failed its whole retry budget sits out before
/// being probed again.
const SHARD_COOLDOWN: Duration = Duration::from_secs(1);

/// A client over N shards: every eval key routes deterministically over
/// the consistent-hash [`Ring`], with bounded retry + backoff per shard
/// and failover to the next ring candidate when a shard is down or
/// draining. All clients with the same address list agree on routing,
/// so each shard's caches see a stable partition of the key space.
pub struct ShardedClient {
    addrs: Vec<String>,
    ring: Ring,
    conns: Vec<Option<Client>>,
    down_until: Vec<Option<Instant>>,
    retry: RetryPolicy,
    jitter: Jitter,
}

impl ShardedClient {
    /// Builds the client; connections are opened lazily per shard.
    #[must_use]
    pub fn new(addrs: Vec<String>, retry: RetryPolicy) -> Self {
        let ring = Ring::new(&addrs);
        let n = addrs.len();
        let jitter = retry.jitter();
        ShardedClient {
            addrs,
            ring,
            conns: (0..n).map(|_| None).collect(),
            down_until: vec![None; n],
            retry,
            jitter,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.addrs.len()
    }

    /// The shard this key routes to first (before failover).
    #[must_use]
    pub fn owner_of(&self, experiment: &str, seed: u64, target: u64) -> Option<usize> {
        self.ring
            .route(Ring::key_hash(experiment, seed, target))
            .first()
            .copied()
    }

    /// Evaluates one experiment, routing by key and failing over across
    /// the ring.
    ///
    /// # Errors
    ///
    /// [`ClientError::ShardUnreachable`] once every candidate shard has
    /// exhausted its retry budget (or is cooling down from a recent
    /// failure). Server-side errors other than `shutting_down` arrive
    /// as `Ok(Response::Error)` from the owning shard.
    pub fn eval(
        &mut self,
        experiment: &str,
        seed: u64,
        target: u64,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let order = self.ring.route(Ring::key_hash(experiment, seed, target));
        let shards = order.len();
        let mut attempts = 0u32;
        for shard in order {
            let now = Instant::now();
            if self.down_until[shard].is_some_and(|until| now < until) {
                continue; // Cooling down; try the next ring candidate.
            }
            match self.try_shard(shard, experiment, seed, target, deadline_ms, &mut attempts) {
                Ok(Response::Error {
                    code: ErrorCode::ShuttingDown,
                    ..
                }) => {
                    // The shard is draining: treat like a down shard and
                    // let the next ring candidate serve the key.
                    self.mark_down(shard);
                }
                Ok(resp) => {
                    self.down_until[shard] = None;
                    return Ok(resp);
                }
                Err(_) => self.mark_down(shard),
            }
        }
        Err(ClientError::ShardUnreachable { shards, attempts })
    }

    /// One shard's full retry budget: connect (reusing a live
    /// connection), send, read; exponential backoff with deterministic
    /// jitter between attempts.
    fn try_shard(
        &mut self,
        shard: usize,
        experiment: &str,
        seed: u64,
        target: u64,
        deadline_ms: Option<u64>,
        attempts: &mut u32,
    ) -> Result<Response, ClientError> {
        let mut last_err = ClientError::ClosedEarly;
        for attempt in 0..self.retry.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.retry.backoff(attempt, &mut self.jitter));
            }
            *attempts += 1;
            if self.conns[shard].is_none() {
                match Client::connect(&self.addrs[shard]) {
                    Ok(c) => self.conns[shard] = Some(c),
                    Err(e) => {
                        last_err = e;
                        continue;
                    }
                }
            }
            let client = self.conns[shard].as_mut().expect("connection just ensured");
            match client.eval(experiment, seed, target, deadline_ms) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    // The connection is suspect after any transport
                    // error; reconnect on the next attempt.
                    self.conns[shard] = None;
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    fn mark_down(&mut self, shard: usize) {
        self.conns[shard] = None;
        self.down_until[shard] = Some(Instant::now() + SHARD_COOLDOWN);
    }

    /// Health-checks one shard with a plain ping (no retry, no
    /// cooldown side effects beyond clearing a stale one on success).
    pub fn check(&mut self, shard: usize) -> bool {
        let ok = Client::connect(&self.addrs[shard])
            .and_then(|mut c| c.ping(None))
            .is_ok_and(|r| matches!(r, Response::Pong { .. }));
        if ok {
            self.down_until[shard] = None;
        }
        ok
    }

    /// Fetches stats from every reachable shard.
    #[must_use]
    pub fn stats_all(&mut self) -> Vec<(String, Result<Response, ClientError>)> {
        let addrs = self.addrs.clone();
        addrs
            .into_iter()
            .map(|addr| {
                let r = Client::connect(&addr).and_then(|mut c| c.stats());
                (addr, r)
            })
            .collect()
    }

    /// Asks every reachable shard to drain.
    pub fn shutdown_all(&mut self) {
        for addr in self.addrs.clone() {
            let _ = Client::connect(&addr).and_then(|mut c| c.shutdown());
        }
    }
}

/// Chaos-mode settings for the load generator: kill one shard mid-run
/// and let routing fail over.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Index (into `addrs`) of the shard to kill.
    pub kill_shard: usize,
    /// How long into the run to send it `shutdown`.
    pub after: Duration,
}

/// Load-generator options (`bp-client bench`).
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Shard addresses (one = the classic single-daemon bench).
    pub addrs: Vec<String>,
    /// Concurrent connections, each a closed loop.
    pub conns: usize,
    /// Requests issued per connection.
    pub requests_per_conn: usize,
    /// Experiment to evaluate.
    pub experiment: String,
    /// Base workload seed.
    pub seed: u64,
    /// Distinct seeds to spread requests over (`seed..seed+spread`),
    /// exercising routing across shards; 1 = the classic identical-key
    /// loop.
    pub seed_spread: u64,
    /// Workload target branches.
    pub target: u64,
    /// Optional per-request deadline.
    pub deadline_ms: Option<u64>,
    /// Optional total request rate; each connection paces itself at
    /// `rps / conns`. `None` = as fast as the closed loop allows.
    pub rps: Option<f64>,
    /// Optional open-loop rate: request `j` of connection `k` is due at
    /// `start + (j * conns + k) / rate` regardless of how the server is
    /// doing, and the send-deadline slippage is reported as queueing
    /// delay. Takes precedence over `rps` when both are set.
    pub rate: Option<f64>,
    /// Per-shard retry/backoff policy.
    pub retry: RetryPolicy,
    /// Optional kill-one-shard chaos mode.
    pub chaos: Option<ChaosOptions>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            addrs: Vec::new(),
            conns: 1,
            requests_per_conn: 1,
            experiment: "fig4".to_owned(),
            seed: 0,
            seed_spread: 1,
            target: 40_000,
            deadline_ms: None,
            rps: None,
            rate: None,
            retry: RetryPolicy::default(),
            chaos: None,
        }
    }
}

/// Load-generator outcome.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Requests issued.
    pub sent: u64,
    /// Successful results.
    pub ok: u64,
    /// Of `ok`, how many were served from the rendered-output cache.
    pub cached: u64,
    /// `overloaded` rejections.
    pub overloaded: u64,
    /// `deadline_exceeded` errors.
    pub deadline_missed: u64,
    /// Requests that exhausted failover across the whole ring.
    pub unreachable: u64,
    /// Any other error responses or transport failures.
    pub other_errors: u64,
    /// Wall time of the whole run, seconds.
    pub wall_seconds: f64,
    /// `sent / wall_seconds`.
    pub achieved_rps: f64,
    /// Median request latency, milliseconds (completed requests).
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, milliseconds — the soak-test tail.
    pub p999_ms: f64,
    /// Maximum latency, milliseconds.
    pub max_ms: f64,
    /// Whether the run was open-loop (`rate` set); gates the queueing
    /// fields below, which are meaningless under closed-loop pacing.
    pub open_loop: bool,
    /// Median queueing delay, milliseconds: how far behind its fixed
    /// schedule the median request was actually sent (0 = on time).
    pub queue_p50_ms: f64,
    /// 99th-percentile queueing delay, milliseconds.
    pub queue_p99_ms: f64,
    /// 99.9th-percentile queueing delay, milliseconds.
    pub queue_p999_ms: f64,
    /// Maximum queueing delay, milliseconds.
    pub queue_max_ms: f64,
}

impl BenchReport {
    fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
        if sorted_ms.is_empty() {
            return 0.0;
        }
        let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
        sorted_ms[rank - 1]
    }

    /// Renders the report as the `bp-client bench` text output. Open-loop
    /// runs get an extra queueing-delay line.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "requests: {} ({} ok, {} cached, {} overloaded, {} deadline, \
             {} unreachable, {} other errors)\n\
             wall: {:.3}s  throughput: {:.1} req/s\n\
             latency ms: p50 {:.3}  p99 {:.3}  p999 {:.3}  max {:.3}",
            self.sent,
            self.ok,
            self.cached,
            self.overloaded,
            self.deadline_missed,
            self.unreachable,
            self.other_errors,
            self.wall_seconds,
            self.achieved_rps,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
            self.max_ms
        );
        if self.open_loop {
            out.push_str(&format!(
                "\nqueueing delay ms (slip past the send schedule): p50 {:.3}  \
                 p99 {:.3}  p999 {:.3}  max {:.3}",
                self.queue_p50_ms, self.queue_p99_ms, self.queue_p999_ms, self.queue_max_ms
            ));
        }
        out
    }

    /// Renders the report as a JSON object (the shape recorded in
    /// `BENCH_repro.json`). Closed-loop runs keep the historical field
    /// set; open-loop runs append the queueing-delay percentiles.
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"sent\": {}, \"ok\": {}, \"cached\": {}, \"overloaded\": {}, \
             \"deadline\": {}, \"unreachable\": {}, \"other_errors\": {}, \
             \"wall_seconds\": {:.3}, \"achieved_rps\": {:.1}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \"max_ms\": {:.3}",
            self.sent,
            self.ok,
            self.cached,
            self.overloaded,
            self.deadline_missed,
            self.unreachable,
            self.other_errors,
            self.wall_seconds,
            self.achieved_rps,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
            self.max_ms
        );
        if self.open_loop {
            out.push_str(&format!(
                ", \"queue_p50_ms\": {:.3}, \"queue_p99_ms\": {:.3}, \
                 \"queue_p999_ms\": {:.3}, \"queue_max_ms\": {:.3}",
                self.queue_p50_ms, self.queue_p99_ms, self.queue_p999_ms, self.queue_max_ms
            ));
        }
        out.push('}');
        out
    }
}

/// Runs the load generator: `conns` connections, each issuing
/// `requests_per_conn` eval requests routed over the shard ring (seeds
/// cycle over `seed..seed+seed_spread`). With one address and one seed
/// this is exactly the warm-cache serving path; with chaos enabled, one
/// shard is killed mid-run and the report shows how failover absorbed
/// it. With `rate` set the run is open-loop: every request's send time
/// is fixed before the run starts, late sends are recorded as queueing
/// delay, and the schedule is never stretched to match the server.
///
/// # Errors
///
/// Only setup failures (no address, or every shard refusing the first
/// connection); per-request failures are counted in the report instead.
pub fn run_bench(opts: &BenchOptions) -> Result<BenchReport, ClientError> {
    if opts.addrs.is_empty() {
        return Err(ClientError::ShardUnreachable {
            shards: 0,
            attempts: 0,
        });
    }
    // Fail fast if the whole fleet is unreachable rather than spawning
    // threads that all error out.
    if !opts.addrs.iter().any(|a| Client::connect(a).is_ok()) {
        return Err(ClientError::ShardUnreachable {
            shards: opts.addrs.len(),
            attempts: opts.addrs.len() as u32,
        });
    }
    let rate = opts.rate.filter(|r| *r > 0.0);
    let pace = if rate.is_some() {
        None
    } else {
        opts.rps
            .filter(|r| *r > 0.0)
            .map(|rps| Duration::from_secs_f64(opts.conns as f64 / rps))
    };
    let started = Instant::now();
    let per_conn: Vec<(Vec<f64>, Vec<f64>, BenchReport)> = std::thread::scope(|scope| {
        let chaos = opts.chaos.clone().map(|chaos| {
            let addr = opts
                .addrs
                .get(chaos.kill_shard)
                .cloned()
                .unwrap_or_else(|| opts.addrs[0].clone());
            scope.spawn(move || {
                std::thread::sleep(chaos.after);
                let _ = Client::connect(&addr).and_then(|mut c| c.shutdown());
            })
        });
        let handles: Vec<_> = (0..opts.conns)
            .map(|conn_idx| {
                scope.spawn(move || {
                    let mut latencies_ms: Vec<f64> = Vec::new();
                    let mut queue_ms: Vec<f64> = Vec::new();
                    let mut report = BenchReport::default();
                    // Distinct jitter seed per connection so backoff
                    // sleeps desynchronize (still deterministic).
                    let retry = RetryPolicy {
                        seed: opts.retry.seed.wrapping_add(conn_idx as u64),
                        ..opts.retry.clone()
                    };
                    let mut client = ShardedClient::new(opts.addrs.clone(), retry);
                    let mut next_fire = Instant::now();
                    for r in 0..opts.requests_per_conn {
                        if let Some(rate) = rate {
                            // Open loop: the whole fleet's sends are
                            // interleaved round-robin on one global
                            // schedule anchored at the run start. A
                            // slow response never pushes later
                            // deadlines back; it shows up as slip.
                            let due = started
                                + Duration::from_secs_f64(
                                    (r * opts.conns + conn_idx) as f64 / rate,
                                );
                            let now = Instant::now();
                            if due > now {
                                std::thread::sleep(due - now);
                                queue_ms.push(0.0);
                            } else {
                                queue_ms.push((now - due).as_secs_f64() * 1e3);
                            }
                        } else if let Some(interval) = pace {
                            let now = Instant::now();
                            if next_fire > now {
                                std::thread::sleep(next_fire - now);
                            }
                            next_fire += interval;
                        }
                        let seed = opts.seed + (r as u64 % opts.seed_spread.max(1));
                        let t0 = Instant::now();
                        report.sent += 1;
                        match client.eval(&opts.experiment, seed, opts.target, opts.deadline_ms) {
                            Ok(Response::Result { cached, .. }) => {
                                report.ok += 1;
                                if cached {
                                    report.cached += 1;
                                }
                                latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                            }
                            Ok(Response::Error { code, .. }) => {
                                latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                                match code {
                                    ErrorCode::Overloaded => report.overloaded += 1,
                                    ErrorCode::DeadlineExceeded => report.deadline_missed += 1,
                                    _ => report.other_errors += 1,
                                }
                            }
                            Ok(_) => report.other_errors += 1,
                            Err(ClientError::ShardUnreachable { .. }) => {
                                report.unreachable += 1;
                            }
                            Err(_) => report.other_errors += 1,
                        }
                    }
                    (latencies_ms, queue_ms, report)
                })
            })
            .collect();
        let merged = handles
            .into_iter()
            .map(|h| h.join().expect("bench connection thread"))
            .collect();
        if let Some(chaos) = chaos {
            chaos.join().expect("chaos thread");
        }
        merged
    });
    let wall_seconds = started.elapsed().as_secs_f64();
    let mut merged = BenchReport {
        wall_seconds,
        ..BenchReport::default()
    };
    let mut latencies: Vec<f64> = Vec::new();
    let mut queue_delays: Vec<f64> = Vec::new();
    for (lat, queue, r) in per_conn {
        latencies.extend(lat);
        queue_delays.extend(queue);
        merged.sent += r.sent;
        merged.ok += r.ok;
        merged.cached += r.cached;
        merged.overloaded += r.overloaded;
        merged.deadline_missed += r.deadline_missed;
        merged.unreachable += r.unreachable;
        merged.other_errors += r.other_errors;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    merged.achieved_rps = if wall_seconds > 0.0 {
        merged.sent as f64 / wall_seconds
    } else {
        0.0
    };
    merged.p50_ms = BenchReport::quantile(&latencies, 0.50);
    merged.p99_ms = BenchReport::quantile(&latencies, 0.99);
    merged.p999_ms = BenchReport::quantile(&latencies, 0.999);
    merged.max_ms = latencies.last().copied().unwrap_or(0.0);
    if rate.is_some() {
        queue_delays.sort_by(|a, b| a.partial_cmp(b).expect("finite delays"));
        merged.open_loop = true;
        merged.queue_p50_ms = BenchReport::quantile(&queue_delays, 0.50);
        merged.queue_p99_ms = BenchReport::quantile(&queue_delays, 0.99);
        merged.queue_p999_ms = BenchReport::quantile(&queue_delays, 0.999);
        merged.queue_max_ms = queue_delays.last().copied().unwrap_or(0.0);
    }
    Ok(merged)
}

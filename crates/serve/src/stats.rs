//! Server-side counters: per-endpoint request totals, backpressure and
//! cache accounting, and a lock-free log-bucketed latency histogram good
//! enough for p50/p99 at ~19% bucket resolution.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;
use crate::protocol::ProtocolError;

/// Sub-buckets per octave: latencies land in buckets ~1.19x apart.
const SUBBUCKETS: usize = 4;
/// 16 exact buckets below 16µs + quad-subdivided octaves up to u64::MAX.
const BUCKETS: usize = 16 + (64 - 4) * SUBBUCKETS;

/// Lock-free histogram of microsecond latencies.
///
/// Values below 16µs are counted exactly; above that, buckets subdivide
/// each power-of-two octave into [`SUBBUCKETS`] slices, so any reported
/// quantile is within ~19% of the true value — plenty for the
/// p50/p99/p999 the `stats` endpoint reports (and the recorded maximum
/// is exact).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket_of(us: u64) -> usize {
        if us < 16 {
            return us as usize;
        }
        let log2 = 63 - us.leading_zeros() as usize; // >= 4
        let sub = ((us >> (log2 - 2)) & 0b11) as usize;
        16 + (log2 - 4) * SUBBUCKETS + sub
    }

    /// Representative (lower-bound) value of a bucket, in µs.
    fn bucket_floor(idx: usize) -> u64 {
        if idx < 16 {
            return idx as u64;
        }
        let rel = idx - 16;
        let log2 = rel / SUBBUCKETS + 4;
        let sub = (rel % SUBBUCKETS) as u64;
        (1u64 << log2) + (sub << (log2 - 2))
    }

    /// Records one latency.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`q` in `0..=1`) in µs; 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor(idx);
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Largest recorded value in µs.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Requests/ok/error totals for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointCounters {
    /// Requests received (including rejected ones).
    pub requests: AtomicU64,
    /// Requests answered successfully.
    pub ok: AtomicU64,
    /// Requests answered with a typed error.
    pub errors: AtomicU64,
}

impl EndpointCounters {
    fn snapshot(&self) -> EndpointSnapshot {
        EndpointSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// All live server counters. One instance per server, shared by every
/// connection handler and worker.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// `eval` endpoint totals.
    pub eval: EndpointCounters,
    /// `trace_eval` endpoint totals.
    pub trace_eval: EndpointCounters,
    /// `stats` endpoint totals.
    pub stats: EndpointCounters,
    /// `ping` endpoint totals.
    pub ping: EndpointCounters,
    /// `shutdown` endpoint totals.
    pub shutdown: EndpointCounters,
    /// Requests rejected because the bounded queue was full.
    pub overloaded: AtomicU64,
    /// Requests that missed their deadline.
    pub deadline_missed: AtomicU64,
    /// Eval requests coalesced onto an identical in-flight computation.
    pub coalesced: AtomicU64,
    /// Frames that failed to decode (bad JSON, unknown type, oversized).
    pub bad_frames: AtomicU64,
    /// End-to-end latency of `eval` requests (arrival → response).
    pub eval_latency: LatencyHistogram,
    /// End-to-end latency of `trace_eval` requests.
    pub trace_latency: LatencyHistogram,
}

/// Point-in-time copy of one endpoint's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointSnapshot {
    /// Requests received.
    pub requests: u64,
    /// Requests answered successfully.
    pub ok: u64,
    /// Requests answered with a typed error.
    pub errors: u64,
}

/// Point-in-time copy of one latency histogram's summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Median latency in µs.
    pub p50_us: u64,
    /// 99th-percentile latency in µs.
    pub p99_us: u64,
    /// 99.9th-percentile latency in µs — the tail that matters under
    /// soak, where p99 still hides one request in a thousand.
    pub p999_us: u64,
    /// Largest latency in µs.
    pub max_us: u64,
}

impl LatencySnapshot {
    fn of(h: &LatencyHistogram) -> Self {
        LatencySnapshot {
            count: h.count(),
            p50_us: h.quantile_us(0.50),
            p99_us: h.quantile_us(0.99),
            p999_us: h.quantile_us(0.999),
            max_us: h.max_us(),
        }
    }
}

/// Point-in-time numbers from the rendered-output cache (both tiers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheGauges {
    /// Eval requests answered from the in-memory LRU tier.
    pub memory_hits: u64,
    /// Eval requests answered by reloading a persisted disk entry.
    pub disk_hits: u64,
    /// Entries currently held in the in-memory LRU.
    pub entries: u64,
    /// Bytes of rendered output held in the in-memory LRU.
    pub bytes: u64,
    /// Entries evicted from memory to stay under the byte budget.
    pub evictions: u64,
    /// Entries loaded from disk into memory at boot (warm start).
    pub warm_start_entries: u64,
}

/// Point-in-time numbers from the connection reactor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnGauges {
    /// Connections currently open.
    pub open_connections: u64,
    /// Connections accepted since boot.
    pub conns_accepted: u64,
}

/// The `stats` response payload: every counter the server exposes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// `eval` endpoint totals.
    pub eval: EndpointSnapshot,
    /// `trace_eval` endpoint totals.
    pub trace_eval: EndpointSnapshot,
    /// `stats` endpoint totals.
    pub stats: EndpointSnapshot,
    /// `ping` endpoint totals.
    pub ping: EndpointSnapshot,
    /// `shutdown` endpoint totals.
    pub shutdown: EndpointSnapshot,
    /// Requests rejected with `overloaded`.
    pub overloaded: u64,
    /// Requests that missed their deadline.
    pub deadline_missed: u64,
    /// Eval requests coalesced onto an in-flight computation.
    pub coalesced: u64,
    /// Eval requests served from the in-memory rendered-output cache.
    pub result_cache_hits: u64,
    /// Eval requests served by reloading a persisted disk cache entry.
    pub disk_cache_hits: u64,
    /// In-memory cache entries held right now.
    pub cache_entries: u64,
    /// Bytes of rendered output held in memory right now.
    pub cache_bytes: u64,
    /// In-memory entries evicted to stay under the byte budget.
    pub cache_evictions: u64,
    /// Disk entries loaded into memory at boot (warm start).
    pub warm_start_entries: u64,
    /// Connections currently open on the reactor.
    pub open_connections: u64,
    /// Connections accepted since boot.
    pub conns_accepted: u64,
    /// Undecodable frames received.
    pub bad_frames: u64,
    /// Persistent engines currently alive (one per distinct workload).
    pub engines: u64,
    /// Artifact-cache hits summed over all engines.
    pub engine_cache_hits: u64,
    /// Artifact-cache misses summed over all engines.
    pub engine_cache_misses: u64,
    /// `eval` latency summary.
    pub eval_latency: LatencySnapshot,
    /// `trace_eval` latency summary.
    pub trace_latency: LatencySnapshot,
}

impl ServerStats {
    /// Snapshots every counter (engine, cache, and connection numbers
    /// are supplied by the server, which owns those subsystems).
    pub fn snapshot(
        &self,
        engines: u64,
        engine_cache_hits: u64,
        engine_cache_misses: u64,
        cache: CacheGauges,
        conns: ConnGauges,
    ) -> StatsSnapshot {
        StatsSnapshot {
            eval: self.eval.snapshot(),
            trace_eval: self.trace_eval.snapshot(),
            stats: self.stats.snapshot(),
            ping: self.ping.snapshot(),
            shutdown: self.shutdown.snapshot(),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            result_cache_hits: cache.memory_hits,
            disk_cache_hits: cache.disk_hits,
            cache_entries: cache.entries,
            cache_bytes: cache.bytes,
            cache_evictions: cache.evictions,
            warm_start_entries: cache.warm_start_entries,
            open_connections: conns.open_connections,
            conns_accepted: conns.conns_accepted,
            bad_frames: self.bad_frames.load(Ordering::Relaxed),
            engines,
            engine_cache_hits,
            engine_cache_misses,
            eval_latency: LatencySnapshot::of(&self.eval_latency),
            trace_latency: LatencySnapshot::of(&self.trace_latency),
        }
    }
}

fn endpoint_json(e: &EndpointSnapshot) -> Json {
    Json::Obj(vec![
        ("requests".to_owned(), Json::Int(e.requests)),
        ("ok".to_owned(), Json::Int(e.ok)),
        ("errors".to_owned(), Json::Int(e.errors)),
    ])
}

fn endpoint_from_json(v: &Json, name: &'static str) -> Result<EndpointSnapshot, ProtocolError> {
    let obj = v.get(name).ok_or(ProtocolError::BadField("endpoint"))?;
    let field = |k: &str| {
        obj.get(k)
            .and_then(Json::as_u64)
            .ok_or(ProtocolError::BadField("endpoint counter"))
    };
    Ok(EndpointSnapshot {
        requests: field("requests")?,
        ok: field("ok")?,
        errors: field("errors")?,
    })
}

fn latency_json(l: &LatencySnapshot) -> Json {
    Json::Obj(vec![
        ("count".to_owned(), Json::Int(l.count)),
        ("p50_us".to_owned(), Json::Int(l.p50_us)),
        ("p99_us".to_owned(), Json::Int(l.p99_us)),
        ("p999_us".to_owned(), Json::Int(l.p999_us)),
        ("max_us".to_owned(), Json::Int(l.max_us)),
    ])
}

fn latency_from_json(v: &Json, name: &'static str) -> Result<LatencySnapshot, ProtocolError> {
    let obj = v.get(name).ok_or(ProtocolError::BadField("latency"))?;
    let field = |k: &str| {
        obj.get(k)
            .and_then(Json::as_u64)
            .ok_or(ProtocolError::BadField("latency counter"))
    };
    Ok(LatencySnapshot {
        count: field("count")?,
        p50_us: field("p50_us")?,
        p99_us: field("p99_us")?,
        p999_us: field("p999_us")?,
        max_us: field("max_us")?,
    })
}

impl StatsSnapshot {
    /// The snapshot as JSON object fields (merged into the `stats`
    /// response object by the protocol layer).
    pub fn to_json_pairs(&self) -> Vec<(String, Json)> {
        vec![
            ("eval".to_owned(), endpoint_json(&self.eval)),
            ("trace_eval".to_owned(), endpoint_json(&self.trace_eval)),
            ("stats".to_owned(), endpoint_json(&self.stats)),
            ("ping".to_owned(), endpoint_json(&self.ping)),
            ("shutdown".to_owned(), endpoint_json(&self.shutdown)),
            ("overloaded".to_owned(), Json::Int(self.overloaded)),
            (
                "deadline_missed".to_owned(),
                Json::Int(self.deadline_missed),
            ),
            ("coalesced".to_owned(), Json::Int(self.coalesced)),
            (
                "result_cache_hits".to_owned(),
                Json::Int(self.result_cache_hits),
            ),
            (
                "disk_cache_hits".to_owned(),
                Json::Int(self.disk_cache_hits),
            ),
            ("cache_entries".to_owned(), Json::Int(self.cache_entries)),
            ("cache_bytes".to_owned(), Json::Int(self.cache_bytes)),
            (
                "cache_evictions".to_owned(),
                Json::Int(self.cache_evictions),
            ),
            (
                "warm_start_entries".to_owned(),
                Json::Int(self.warm_start_entries),
            ),
            (
                "open_connections".to_owned(),
                Json::Int(self.open_connections),
            ),
            ("conns_accepted".to_owned(), Json::Int(self.conns_accepted)),
            ("bad_frames".to_owned(), Json::Int(self.bad_frames)),
            ("engines".to_owned(), Json::Int(self.engines)),
            (
                "engine_cache_hits".to_owned(),
                Json::Int(self.engine_cache_hits),
            ),
            (
                "engine_cache_misses".to_owned(),
                Json::Int(self.engine_cache_misses),
            ),
            ("eval_latency".to_owned(), latency_json(&self.eval_latency)),
            (
                "trace_latency".to_owned(),
                latency_json(&self.trace_latency),
            ),
        ]
    }

    /// Parses a snapshot back out of a `stats` response object.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadField`] when a counter is missing or
    /// ill-typed.
    pub fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        let field = |k: &'static str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or(ProtocolError::BadField(k))
        };
        Ok(StatsSnapshot {
            eval: endpoint_from_json(v, "eval")?,
            trace_eval: endpoint_from_json(v, "trace_eval")?,
            stats: endpoint_from_json(v, "stats")?,
            ping: endpoint_from_json(v, "ping")?,
            shutdown: endpoint_from_json(v, "shutdown")?,
            overloaded: field("overloaded")?,
            deadline_missed: field("deadline_missed")?,
            coalesced: field("coalesced")?,
            result_cache_hits: field("result_cache_hits")?,
            disk_cache_hits: field("disk_cache_hits")?,
            cache_entries: field("cache_entries")?,
            cache_bytes: field("cache_bytes")?,
            cache_evictions: field("cache_evictions")?,
            warm_start_entries: field("warm_start_entries")?,
            open_connections: field("open_connections")?,
            conns_accepted: field("conns_accepted")?,
            bad_frames: field("bad_frames")?,
            engines: field("engines")?,
            engine_cache_hits: field("engine_cache_hits")?,
            engine_cache_misses: field("engine_cache_misses")?,
            eval_latency: latency_from_json(v, "eval_latency")?,
            trace_latency: latency_from_json(v, "trace_latency")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_reversible() {
        let mut last = 0;
        for us in [0u64, 1, 15, 16, 17, 100, 1000, 65_536, 1 << 40, u64::MAX] {
            let b = LatencyHistogram::bucket_of(us);
            assert!(b >= last || us < 16, "bucket order at {us}");
            last = b;
            let floor = LatencyHistogram::bucket_floor(b);
            assert!(floor <= us, "floor({b}) = {floor} > {us}");
            // Floor is within one sub-bucket (~25%) of the value.
            if us >= 16 {
                assert!(us - floor <= us / 4 + 1, "floor too far below {us}");
            }
        }
    }

    #[test]
    fn quantiles_track_inserted_values() {
        let h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        let p50 = h.quantile_us(0.5);
        let p99 = h.quantile_us(0.99);
        assert!((400..=500).contains(&p50), "p50 = {p50}");
        assert!((768..=990).contains(&p99), "p99 = {p99}");
        assert_eq!(h.max_us(), 1000);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 0, "q = {q}");
        }
        assert_eq!(h.max_us(), 0);
        let snap = LatencySnapshot::of(&h);
        assert_eq!(snap, LatencySnapshot::default());
    }

    #[test]
    fn values_below_16us_are_exact() {
        for us in 0..16u64 {
            assert_eq!(LatencyHistogram::bucket_of(us), us as usize);
            assert_eq!(LatencyHistogram::bucket_floor(us as usize), us);
        }
        let h = LatencyHistogram::new();
        h.record_us(7);
        assert_eq!(h.quantile_us(0.5), 7);
        assert_eq!(h.quantile_us(1.0), 7);
    }

    #[test]
    fn bucket_floor_is_the_smallest_value_in_its_bucket() {
        let mut prev = 0usize;
        for us in 0..200_000u64 {
            let b = LatencyHistogram::bucket_of(us);
            assert!(b >= prev, "bucket order regressed at {us}");
            prev = b;
        }
        for b in 0..BUCKETS {
            let floor = LatencyHistogram::bucket_floor(b);
            assert_eq!(LatencyHistogram::bucket_of(floor), b, "floor of bucket {b}");
            if floor > 0 {
                assert!(
                    LatencyHistogram::bucket_of(floor - 1) < b,
                    "bucket {b} floor {floor} is not its boundary"
                );
            }
        }
        assert!(LatencyHistogram::bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn p50_at_an_exact_bucket_edge() {
        // 50 samples in the bucket holding 10, 50 in the one holding 20:
        // the p50 rank (ceil(0.5 * 100) = 50) is the LAST sample of the
        // first bucket, and one rank more crosses the edge.
        let h = LatencyHistogram::new();
        for _ in 0..50 {
            h.record_us(10);
        }
        for _ in 0..50 {
            h.record_us(20);
        }
        assert_eq!(h.quantile_us(0.50), 10);
        assert_eq!(h.quantile_us(0.51), 20);
        assert_eq!(h.quantile_us(1.0), 20);
    }

    #[test]
    fn p999_at_an_exact_bucket_edge() {
        // 999 small samples and 1 large: the p999 rank (999) is the last
        // small sample, so p999 stays small while max already sees the
        // outlier. One more large sample moves rank 1000 (of 1001) onto
        // the outlier bucket.
        let h = LatencyHistogram::new();
        for _ in 0..999 {
            h.record_us(1);
        }
        h.record_us(1 << 20);
        assert_eq!(h.quantile_us(0.999), 1);
        assert_eq!(h.quantile_us(0.99), 1);
        assert_eq!(h.max_us(), 1 << 20);
        h.record_us(1 << 20);
        assert_eq!(h.quantile_us(0.999), 1 << 20);
        let snap = LatencySnapshot::of(&h);
        assert_eq!(snap.p999_us, 1 << 20);
        assert_eq!(snap.max_us, 1 << 20);
        assert_eq!(snap.p99_us, 1);
    }

    #[test]
    fn p999_sits_between_p99_and_max() {
        let h = LatencyHistogram::new();
        for us in 1..=10_000u64 {
            h.record_us(us);
        }
        let snap = LatencySnapshot::of(&h);
        assert!(snap.p50_us <= snap.p99_us);
        assert!(snap.p99_us <= snap.p999_us, "{snap:?}");
        assert!(snap.p999_us <= snap.max_us, "{snap:?}");
        // p999 lands within one sub-bucket (~25%) of the true 9990.
        assert!((7_500..=9_990).contains(&snap.p999_us), "{snap:?}");
        assert_eq!(snap.max_us, 10_000);
    }

    #[test]
    fn p99_at_an_exact_bucket_edge() {
        // With 99 small samples and 1 large, the p99 rank (99) is still
        // in the small bucket; a second large sample moves rank 100 (of
        // 101) onto the first large one.
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record_us(1);
        }
        h.record_us(1 << 20);
        assert_eq!(h.quantile_us(0.99), 1);
        h.record_us(1 << 20);
        assert_eq!(h.quantile_us(0.99), 1 << 20);
        assert_eq!(h.max_us(), 1 << 20);
    }
}

//! The persistent rendered-output cache: an in-memory LRU over a byte
//! budget, write-through to one self-contained file per entry, and
//! warm-start on boot.
//!
//! Cold evaluations run at ~2 requests/second while warm cache hits run
//! four orders of magnitude faster, so a daemon restart used to be an
//! outage-shaped cliff: every cached answer was gone. This module makes
//! the rendered-output cache survive restarts — [`ResultCache::open`]
//! reloads every valid entry from disk, and a restarted daemon answers
//! its prior working set at warm latency immediately.
//!
//! ## On-disk format (`.bpo`, "branch-predictor output")
//!
//! One entry per file, all integers little-endian:
//!
//! ```text
//! magic        4  b"BPOC"
//! version      2  = 1
//! reserved     2  = 0
//! exp_len      2  experiment-id length
//! experiment   …  UTF-8 experiment id
//! seed         8  workload seed
//! target       8  workload target
//! config_fp    8  FNV-1a over (experiment, seed, target)
//! payload_len  8  rendered-output length
//! payload      …  UTF-8 rendered output
//! content_fp   8  FNV-1a over payload (distinct offset basis)
//! ```
//!
//! The fingerprints reuse the shared sidecar format's FNV-1a chain
//! ([`bp_trace::sidecar`]) — the same `config` / `content` split
//! `repro --cache` stamps on trace artifacts, here inlined into the
//! entry so each file is self-validating. Every failure mode is a typed
//! [`DiskCacheError`]; a corrupt entry is removed with a one-line
//! notice and regenerated on the next request — never a panic, and the
//! announced `payload_len` is validated against the real file size
//! before any slicing, so a lying header cannot cause overallocation.

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bp_trace::sidecar::{fnv1a, CONTENT_OFFSET, FNV_OFFSET};

use crate::stats::CacheGauges;

/// Identity of one evaluation: (experiment id, seed, target). Everything
/// the rendered output depends on, and nothing else.
pub type EvalKey = (String, u64, u64);

/// Entry-file magic.
pub const MAGIC: [u8; 4] = *b"BPOC";
/// Entry-file format version this build reads and writes.
pub const VERSION: u16 = 1;

/// Why a disk cache entry could not be used. Every variant is a
/// *regenerate* signal: the entry is removed and the next request for
/// its key recomputes and rewrites it.
#[derive(Debug)]
pub enum DiskCacheError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The file does not start with `BPOC`.
    BadMagic,
    /// The file's version is not one this build knows.
    BadVersion(u16),
    /// The file ends inside the named section.
    Truncated(&'static str),
    /// The announced payload length disagrees with the real file size.
    LyingLength {
        /// Length the header announced.
        announced: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The named fingerprint does not match a recomputation.
    FingerprintMismatch(&'static str),
    /// The experiment id or payload is not UTF-8.
    NotUtf8,
}

impl fmt::Display for DiskCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskCacheError::Io(e) => write!(f, "i/o failed: {e}"),
            DiskCacheError::BadMagic => write!(f, "bad magic (not a .bpo entry)"),
            DiskCacheError::BadVersion(v) => write!(f, "unknown entry version {v}"),
            DiskCacheError::Truncated(section) => write!(f, "truncated in {section}"),
            DiskCacheError::LyingLength { announced, actual } => {
                write!(f, "announced {announced}-byte payload but {actual} present")
            }
            DiskCacheError::FingerprintMismatch(which) => {
                write!(f, "{which} fingerprint mismatch")
            }
            DiskCacheError::NotUtf8 => write!(f, "non-utf-8 text field"),
        }
    }
}

impl std::error::Error for DiskCacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskCacheError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// The config fingerprint of a key: the sidecar FNV-1a chain over the
/// experiment id, seed, and target.
#[must_use]
pub fn config_fingerprint(key: &EvalKey) -> u64 {
    let fp = fnv1a(FNV_OFFSET, key.0.as_bytes());
    let fp = fnv1a(fp, &key.1.to_le_bytes());
    fnv1a(fp, &key.2.to_le_bytes())
}

/// Serializes one cache entry.
#[must_use]
pub fn encode_entry(key: &EvalKey, payload: &str) -> Vec<u8> {
    let exp = key.0.as_bytes();
    let exp_len = u16::try_from(exp.len()).expect("experiment ids are short");
    let mut out = Vec::with_capacity(48 + exp.len() + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&exp_len.to_le_bytes());
    out.extend_from_slice(exp);
    out.extend_from_slice(&key.1.to_le_bytes());
    out.extend_from_slice(&key.2.to_le_bytes());
    out.extend_from_slice(&config_fingerprint(key).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload.as_bytes());
    out.extend_from_slice(&fnv1a(CONTENT_OFFSET, payload.as_bytes()).to_le_bytes());
    out
}

struct EntryReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> EntryReader<'a> {
    fn take(&mut self, n: usize, section: &'static str) -> Result<&'a [u8], DiskCacheError> {
        if self.bytes.len() - self.pos < n {
            return Err(DiskCacheError::Truncated(section));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self, section: &'static str) -> Result<u16, DiskCacheError> {
        Ok(u16::from_le_bytes(
            self.take(2, section)?.try_into().expect("2 bytes"),
        ))
    }

    fn u64(&mut self, section: &'static str) -> Result<u64, DiskCacheError> {
        Ok(u64::from_le_bytes(
            self.take(8, section)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Deserializes and fully validates one cache entry.
///
/// # Errors
///
/// A typed [`DiskCacheError`] for every way the bytes can be wrong:
/// truncation at any boundary, flipped magic, unknown version, a
/// payload length that disagrees with the file size, fingerprint
/// mismatches, and non-UTF-8 text.
pub fn decode_entry(bytes: &[u8]) -> Result<(EvalKey, String), DiskCacheError> {
    let mut r = EntryReader { bytes, pos: 0 };
    if r.take(4, "magic")? != MAGIC {
        return Err(DiskCacheError::BadMagic);
    }
    let version = r.u16("version")?;
    if version != VERSION {
        return Err(DiskCacheError::BadVersion(version));
    }
    let _reserved = r.u16("reserved")?;
    let exp_len = r.u16("experiment length")? as usize;
    let exp = std::str::from_utf8(r.take(exp_len, "experiment id")?)
        .map_err(|_| DiskCacheError::NotUtf8)?
        .to_owned();
    let seed = r.u64("seed")?;
    let target = r.u64("target")?;
    let config_fp = r.u64("config fingerprint")?;
    let announced = r.u64("payload length")?;
    // The real payload is whatever sits between here and the 8-byte
    // content-fingerprint trailer. Comparing against the announced
    // length *before* slicing means a lying header can neither
    // overallocate nor shift the trailer.
    let actual = (bytes.len() - r.pos).saturating_sub(8) as u64;
    if announced != actual {
        return Err(DiskCacheError::LyingLength { announced, actual });
    }
    let payload_bytes = r.take(actual as usize, "payload")?;
    let content_fp = r.u64("content fingerprint")?;

    let key: EvalKey = (exp, seed, target);
    if config_fp != config_fingerprint(&key) {
        return Err(DiskCacheError::FingerprintMismatch("config"));
    }
    if content_fp != fnv1a(CONTENT_OFFSET, payload_bytes) {
        return Err(DiskCacheError::FingerprintMismatch("content"));
    }
    let payload = std::str::from_utf8(payload_bytes)
        .map_err(|_| DiskCacheError::NotUtf8)?
        .to_owned();
    Ok((key, payload))
}

/// Which tier answered a [`ResultCache::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// The in-memory LRU.
    Memory,
    /// Reloaded from a persisted entry (and promoted into memory).
    Disk,
}

/// Cache tunables.
#[derive(Debug, Clone, Default)]
pub struct CacheConfig {
    /// Directory holding `.bpo` entries; `None` = memory-only (the
    /// pre-persistence behavior).
    pub dir: Option<PathBuf>,
    /// Byte budget for rendered output held in memory. The newest entry
    /// is always kept, so a single oversized output still serves warm.
    pub memory_budget: usize,
}

struct MemEntry {
    output: Arc<String>,
    last_used: u64,
}

struct MemLru {
    map: HashMap<EvalKey, MemEntry>,
    bytes: usize,
    tick: u64,
}

impl MemLru {
    fn touch(&mut self, key: &EvalKey) -> Option<Arc<String>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.output)
        })
    }

    /// Inserts and evicts least-recently-used entries down to `budget`,
    /// never evicting the entry just inserted. Returns evictions.
    fn insert(&mut self, key: EvalKey, output: Arc<String>, budget: usize) -> u64 {
        self.tick += 1;
        if let Some(old) = self.map.insert(
            key.clone(),
            MemEntry {
                output: Arc::clone(&output),
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.output.len();
        }
        self.bytes += output.len();
        let mut evicted = 0;
        while self.bytes > budget && self.map.len() > 1 {
            let Some(victim) = self
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = self.map.remove(&victim) {
                self.bytes -= e.output.len();
                evicted += 1;
            }
        }
        evicted
    }
}

/// The two-tier rendered-output cache.
pub struct ResultCache {
    dir: Option<PathBuf>,
    budget: usize,
    mem: Mutex<MemLru>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    evictions: AtomicU64,
    warm_started: AtomicU64,
    notices: Mutex<Vec<String>>,
}

impl ResultCache {
    /// Opens the cache, creating `dir` if needed and warm-starting from
    /// every valid persisted entry. Corrupt entries are removed (each
    /// leaves a one-line notice; see [`ResultCache::take_notices`]).
    pub fn open(cfg: CacheConfig) -> Self {
        let cache = ResultCache {
            dir: cfg.dir,
            budget: cfg.memory_budget,
            mem: Mutex::new(MemLru {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            warm_started: AtomicU64::new(0),
            notices: Mutex::new(Vec::new()),
        };
        cache.warm_start();
        cache
    }

    fn notice(&self, line: String) {
        self.notices.lock().expect("cache notices lock").push(line);
    }

    /// Drains the accumulated one-line notices (corrupt entries removed,
    /// failed writes). The server logs these; tests assert on them.
    pub fn take_notices(&self) -> Vec<String> {
        std::mem::take(&mut *self.notices.lock().expect("cache notices lock"))
    }

    fn warm_start(&self) {
        let Some(dir) = self.dir.clone() else {
            return;
        };
        if let Err(e) = std::fs::create_dir_all(&dir) {
            self.notice(format!("cache dir {}: {e}", dir.display()));
            return;
        }
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return;
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "bpo"))
            .collect();
        paths.sort();
        for path in paths {
            match std::fs::read(&path)
                .map_err(DiskCacheError::Io)
                .and_then(|b| decode_entry(&b))
            {
                Ok((key, payload)) => {
                    let evicted = self.mem.lock().expect("cache memory lock").insert(
                        key,
                        Arc::new(payload),
                        self.budget,
                    );
                    self.evictions.fetch_add(evicted, Ordering::Relaxed);
                    self.warm_started.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    let _ = std::fs::remove_file(&path);
                    self.notice(format!(
                        "removed corrupt cache entry {}: {e}",
                        path.display()
                    ));
                }
            }
        }
    }

    fn path_of(&self, key: &EvalKey) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let exp: String = key
            .0
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        Some(dir.join(format!("{exp}-{:016x}-{:016x}.bpo", key.1, key.2)))
    }

    /// Looks the key up: memory first, then disk (a disk hit is
    /// promoted into memory). A corrupt disk entry is removed with a
    /// notice and reported as a miss — the caller recomputes.
    pub fn get(&self, key: &EvalKey) -> Option<(Arc<String>, CacheTier)> {
        if let Some(hit) = self.mem.lock().expect("cache memory lock").touch(key) {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Some((hit, CacheTier::Memory));
        }
        let path = self.path_of(key)?;
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                self.notice(format!("cache read {}: {e}", path.display()));
                return None;
            }
        };
        match decode_entry(&bytes) {
            Ok((stored_key, payload)) if stored_key == *key => {
                let output = Arc::new(payload);
                let evicted = self.mem.lock().expect("cache memory lock").insert(
                    key.clone(),
                    Arc::clone(&output),
                    self.budget,
                );
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                Some((output, CacheTier::Disk))
            }
            Ok(_) => {
                // A filename collision stored a different key here;
                // treat as corruption and let the caller regenerate.
                let _ = std::fs::remove_file(&path);
                self.notice(format!(
                    "removed cache entry {} holding a different key",
                    path.display()
                ));
                None
            }
            Err(e) => {
                let _ = std::fs::remove_file(&path);
                self.notice(format!(
                    "removed corrupt cache entry {}: {e}",
                    path.display()
                ));
                None
            }
        }
    }

    /// Stores a freshly rendered output: into memory (evicting LRU
    /// entries past the budget) and through to disk via a tmp-file
    /// rename, so a crash mid-write never leaves a half entry under the
    /// final name.
    pub fn put(&self, key: &EvalKey, output: &Arc<String>) {
        let evicted = self.mem.lock().expect("cache memory lock").insert(
            key.clone(),
            Arc::clone(output),
            self.budget,
        );
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        let Some(path) = self.path_of(key) else {
            return;
        };
        let bytes = encode_entry(key, output);
        let tmp = path.with_extension("bpo.tmp");
        let wrote = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = wrote {
            let _ = std::fs::remove_file(&tmp);
            self.notice(format!("cache write {}: {e}", path.display()));
        }
    }

    /// Point-in-time cache counters for the `stats` endpoint.
    pub fn gauges(&self) -> CacheGauges {
        let (entries, bytes) = {
            let mem = self.mem.lock().expect("cache memory lock");
            (mem.map.len() as u64, mem.bytes as u64)
        };
        CacheGauges {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            entries,
            bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
            warm_start_entries: self.warm_started.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(exp: &str, seed: u64, target: u64) -> EvalKey {
        (exp.to_owned(), seed, target)
    }

    #[test]
    fn encode_decode_round_trip() {
        let k = key("fig4", 0x1234_5678_9abc_def0, 40_000);
        let payload = "line one\nline two\n";
        let bytes = encode_entry(&k, payload);
        let (dk, dp) = decode_entry(&bytes).expect("decodes");
        assert_eq!(dk, k);
        assert_eq!(dp, payload);
    }

    #[test]
    fn memory_only_cache_works_without_a_dir() {
        let cache = ResultCache::open(CacheConfig {
            dir: None,
            memory_budget: 1 << 20,
        });
        let k = key("fig4", 1, 100);
        assert!(cache.get(&k).is_none());
        cache.put(&k, &Arc::new("out".to_owned()));
        let (out, tier) = cache.get(&k).expect("hit");
        assert_eq!(*out, "out");
        assert_eq!(tier, CacheTier::Memory);
        assert_eq!(cache.gauges().entries, 1);
        assert!(cache.take_notices().is_empty());
    }
}

//! The connection reactor: one thread, all sockets, `poll(2)` readiness.
//!
//! The previous server spent one OS thread (≈2 MiB of address space and
//! a kernel stack) per connection, blocked in `read`. This module
//! replaces that with a single event loop that owns the listener and
//! every client socket, parses length-prefixed frames incrementally out
//! of per-connection buffers, and hands each complete request to a
//! callback — 10k idle connections cost 10k file descriptors and their
//! buffers, not 10k stacks.
//!
//! ## Structure
//!
//! * The loop polls the listener (accept), a *waker* socket, and every
//!   connection for readability, plus writability where output is
//!   buffered.
//! * Complete frames invoke the server's dispatch callback *on the
//!   reactor thread*; dispatch answers cheap requests inline (cache
//!   hits, `stats`, `ping`) by queueing bytes on the connection, and
//!   forwards compute to the bounded worker queue.
//! * Worker threads deliver results through the shared **outbox**
//!   ([`ConnRef::send`]): they enqueue the encoded response and nudge
//!   the waker, and the reactor copies it onto the connection's write
//!   buffer on its next iteration. All socket I/O therefore stays on
//!   one thread; no per-frame locks are held across a syscall.
//! * The waker is a loopback TCP socket pair (std has no pipe): one
//!   byte written to it makes `poll` return, and the reactor drains it.
//!
//! Backpressure on the write side is bounded: a peer that stops reading
//! while responses accumulate past [`WRITE_BUF_CAP`] is disconnected
//! rather than buffered without limit.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::{write_frame, Response};
use crate::stats::ConnGauges;
use crate::sys::{poll_fds, PollFd, POLLIN, POLLOUT};

/// Disconnect a connection whose unflushed output exceeds this many
/// bytes: the peer has stopped reading and unbounded buffering is the
/// only alternative.
pub const WRITE_BUF_CAP: usize = 8 << 20;

/// Bytes read from one connection per loop iteration, so a firehosing
/// peer cannot starve the rest of the fleet.
const READ_CHUNK_CAP: usize = 256 << 10;

/// How long a finishing reactor keeps trying to flush buffered
/// responses before giving up on slow peers.
const FINISH_GRACE: Duration = Duration::from_secs(3);

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(s: &T) -> i32 {
    s.as_raw_fd()
}

/// Non-unix hosts run the degenerate poll in [`crate::sys`], which
/// reports every entry ready regardless of fd — the value is unused.
#[cfg(not(unix))]
fn raw_fd<T>(_s: &T) -> i32 {
    0
}

/// Something worth delivering to the server's dispatch callback.
pub enum ConnEvent {
    /// One complete frame payload arrived.
    Frame {
        /// The connection it arrived on.
        conn: ConnRef,
        /// The frame payload (length prefix stripped).
        payload: Vec<u8>,
    },
    /// The peer announced a frame larger than the cap. The connection
    /// is poisoned (no further frames will be parsed); the callback
    /// should answer with an error and close.
    Oversized {
        /// The offending connection.
        conn: ConnRef,
        /// The announced payload length.
        len: usize,
        /// The cap in force.
        max: usize,
    },
}

enum Out {
    Data(Vec<u8>),
    CloseAfterFlush,
}

struct ReactorShared {
    outbox: Mutex<Vec<(u64, Out)>>,
    waker_tx: Mutex<TcpStream>,
    stop_accepting: AtomicBool,
    finished: AtomicBool,
    open: AtomicU64,
    accepted: AtomicU64,
}

impl ReactorShared {
    fn wake(&self) {
        // A single byte; WouldBlock means a wake is already pending,
        // which is just as good.
        if let Ok(mut tx) = self.waker_tx.lock() {
            let _ = tx.write(&[1]);
        }
    }
}

/// A handle to one connection, held by waiters while their evaluation
/// is queued or computing. Cloneable and cheap; sending from any thread
/// is safe (the bytes travel via the outbox, the reactor does the I/O).
#[derive(Clone)]
pub struct ConnRef {
    shared: Arc<ReactorShared>,
    id: u64,
}

impl ConnRef {
    /// Queues one response for delivery. A response to a connection
    /// that has since closed is silently dropped — the computation's
    /// result is already in the caches for whoever asks next.
    pub fn send(&self, resp: &Response) {
        self.push(Out::Data(resp.encode()));
    }

    /// Queues one response, then closes the connection once it has been
    /// flushed (the oversized-frame path: the stream position past the
    /// prefix is unrecoverable).
    pub fn send_then_close(&self, resp: &Response) {
        let mut outbox = self.shared.outbox.lock().expect("reactor outbox lock");
        outbox.push((self.id, Out::Data(resp.encode())));
        outbox.push((self.id, Out::CloseAfterFlush));
        drop(outbox);
        self.shared.wake();
    }

    fn push(&self, out: Out) {
        self.shared
            .outbox
            .lock()
            .expect("reactor outbox lock")
            .push((self.id, out));
        self.shared.wake();
    }
}

/// Control handle shared with the server: stop accepting, finish, and
/// read the connection gauges.
#[derive(Clone)]
pub struct ReactorHandle {
    shared: Arc<ReactorShared>,
}

impl ReactorHandle {
    /// Stops accepting new connections (existing ones keep serving).
    pub fn stop_accepting(&self) {
        self.shared.stop_accepting.store(true, Ordering::SeqCst);
        self.shared.wake();
    }

    /// Asks the reactor to flush buffered responses and exit. Call only
    /// after the workers have drained — frames arriving after this are
    /// not parsed.
    pub fn finish(&self) {
        self.shared.finished.store(true, Ordering::SeqCst);
        self.shared.wake();
    }

    /// Point-in-time connection counters.
    pub fn gauges(&self) -> ConnGauges {
        ConnGauges {
            open_connections: self.shared.open.load(Ordering::Relaxed),
            conns_accepted: self.shared.accepted.load(Ordering::Relaxed),
        }
    }
}

struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Frame parsing stopped (oversized announcement or read EOF/error).
    poisoned: bool,
    close_after_flush: bool,
    dead: bool,
}

impl Conn {
    fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Writes as much buffered output as the socket accepts.
    fn flush(&mut self) {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.write_buf.clear();
        self.write_pos = 0;
        if self.close_after_flush {
            self.dead = true;
        }
    }
}

/// The event loop. Owns the listener and every connection socket.
pub struct Reactor {
    listener: TcpListener,
    waker_rx: TcpStream,
    shared: Arc<ReactorShared>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    max_frame: usize,
}

impl Reactor {
    /// Wraps a bound listener. `max_frame` caps accepted frame payloads
    /// exactly as the blocking `read_frame` did.
    ///
    /// # Errors
    ///
    /// Setting up the loopback waker pair can fail under fd exhaustion.
    pub fn new(listener: TcpListener, max_frame: usize) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        // std has no pipe; a loopback socket pair is the portable waker.
        let pair_listener = TcpListener::bind("127.0.0.1:0")?;
        let waker_tx = TcpStream::connect(pair_listener.local_addr()?)?;
        let (waker_rx, _) = pair_listener.accept()?;
        waker_tx.set_nonblocking(true)?;
        waker_rx.set_nonblocking(true)?;
        let _ = waker_tx.set_nodelay(true);
        Ok(Reactor {
            listener,
            waker_rx,
            shared: Arc::new(ReactorShared {
                outbox: Mutex::new(Vec::new()),
                waker_tx: Mutex::new(waker_tx),
                stop_accepting: AtomicBool::new(false),
                finished: AtomicBool::new(false),
                open: AtomicU64::new(0),
                accepted: AtomicU64::new(0),
            }),
            conns: HashMap::new(),
            next_id: 1,
            max_frame,
        })
    }

    /// The control handle (cloneable, shared with the server).
    pub fn handle(&self) -> ReactorHandle {
        ReactorHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the loop until [`ReactorHandle::finish`] and the final
    /// flush. `on_event` is invoked on the reactor thread for every
    /// complete frame; it must not block.
    pub fn run(mut self, mut on_event: impl FnMut(ConnEvent)) {
        let mut finish_deadline: Option<Instant> = None;
        loop {
            let finishing = self.shared.finished.load(Ordering::SeqCst);
            if finishing && finish_deadline.is_none() {
                finish_deadline = Some(Instant::now() + FINISH_GRACE);
            }

            let accepting = !finishing && !self.shared.stop_accepting.load(Ordering::SeqCst);
            let mut fds = Vec::with_capacity(2 + self.conns.len());
            fds.push(PollFd::new(raw_fd(&self.waker_rx), POLLIN));
            let listener_slot = if accepting {
                fds.push(PollFd::new(raw_fd(&self.listener), POLLIN));
                Some(fds.len() - 1)
            } else {
                None
            };
            let mut order: Vec<u64> = Vec::with_capacity(self.conns.len());
            for (&id, conn) in &self.conns {
                let mut events = 0;
                if !conn.poisoned && !finishing {
                    events |= POLLIN;
                }
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(raw_fd(&conn.stream), events));
                order.push(id);
            }

            let timeout_ms = if finishing { 50 } else { 500 };
            if poll_fds(&mut fds, timeout_ms).is_err() {
                // Transient poll failure: back off a beat and retry
                // rather than dropping the fleet.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }

            if fds[0].ready(POLLIN) {
                let mut sink = [0u8; 64];
                while matches!(self.waker_rx.read(&mut sink), Ok(n) if n > 0) {}
            }

            if let Some(slot) = listener_slot {
                if fds[slot].ready(POLLIN) {
                    self.accept_ready();
                }
            }

            let conn_fds_base = if listener_slot.is_some() { 2 } else { 1 };
            for (i, &id) in order.iter().enumerate() {
                let fd = fds[conn_fds_base + i];
                let Some(conn) = self.conns.get_mut(&id) else {
                    continue;
                };
                if fd.ready(POLLIN) && !conn.poisoned && !finishing {
                    Self::read_ready(conn, id, &self.shared, self.max_frame, &mut on_event);
                }
                if let Some(conn) = self.conns.get_mut(&id) {
                    if fd.ready(POLLOUT) && conn.wants_write() {
                        conn.flush();
                    }
                }
            }

            self.drain_outbox();

            // Try to push freshly queued bytes immediately instead of
            // waiting one poll round for POLLOUT.
            for conn in self.conns.values_mut() {
                if !conn.dead && conn.wants_write() {
                    conn.flush();
                }
            }

            self.reap_dead();

            if finishing {
                let outbox_empty = self
                    .shared
                    .outbox
                    .lock()
                    .expect("reactor outbox lock")
                    .is_empty();
                let all_flushed = self.conns.values().all(|c| !c.wants_write());
                let expired = finish_deadline.is_some_and(|d| Instant::now() >= d);
                if (outbox_empty && all_flushed) || expired {
                    break;
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.next_id;
                    self.next_id += 1;
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            read_buf: Vec::new(),
                            write_buf: Vec::new(),
                            write_pos: 0,
                            poisoned: false,
                            close_after_flush: false,
                            dead: false,
                        },
                    );
                    self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .open
                        .store(self.conns.len() as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn read_ready(
        conn: &mut Conn,
        id: u64,
        shared: &Arc<ReactorShared>,
        max_frame: usize,
        on_event: &mut impl FnMut(ConnEvent),
    ) {
        let mut chunk = [0u8; 16 << 10];
        let mut read_total = 0;
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer closed its write side; whatever is buffered
                    // still flushes, then the connection goes away.
                    conn.poisoned = true;
                    conn.close_after_flush = true;
                    if !conn.wants_write() {
                        conn.dead = true;
                    }
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    read_total += n;
                    if read_total >= READ_CHUNK_CAP {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }

        // Parse every complete frame out of the buffer.
        let mut pos = 0;
        while !conn.poisoned {
            let remaining = conn.read_buf.len() - pos;
            if remaining < 4 {
                break;
            }
            let len = u32::from_be_bytes(
                conn.read_buf[pos..pos + 4]
                    .try_into()
                    .expect("4-byte slice"),
            ) as usize;
            if len > max_frame {
                conn.poisoned = true;
                on_event(ConnEvent::Oversized {
                    conn: ConnRef {
                        shared: Arc::clone(shared),
                        id,
                    },
                    len,
                    max: max_frame,
                });
                break;
            }
            if remaining < 4 + len {
                break;
            }
            let payload = conn.read_buf[pos + 4..pos + 4 + len].to_vec();
            pos += 4 + len;
            on_event(ConnEvent::Frame {
                conn: ConnRef {
                    shared: Arc::clone(shared),
                    id,
                },
                payload,
            });
        }
        if pos > 0 {
            conn.read_buf.drain(..pos);
        }
    }

    fn drain_outbox(&mut self) {
        let pending = {
            let mut outbox = self.shared.outbox.lock().expect("reactor outbox lock");
            std::mem::take(&mut *outbox)
        };
        for (id, out) in pending {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue; // Connection closed before the answer arrived.
            };
            if conn.dead {
                continue;
            }
            match out {
                Out::Data(payload) => {
                    // `Vec<u8>: Write` appends, so this cannot fail;
                    // Oversized (a response above the frame cap) is
                    // dropped exactly as the blocking server dropped
                    // failed sends.
                    let _ = write_frame(&mut conn.write_buf, &payload, self.max_frame);
                    if conn.write_buf.len() - conn.write_pos > WRITE_BUF_CAP {
                        // The peer stopped reading; cut it loose.
                        conn.dead = true;
                    }
                }
                Out::CloseAfterFlush => {
                    conn.close_after_flush = true;
                    if !conn.wants_write() {
                        conn.dead = true;
                    }
                }
            }
        }
    }

    fn reap_dead(&mut self) {
        if self.conns.values().any(|c| c.dead) {
            self.conns.retain(|_, c| !c.dead);
            self.shared
                .open
                .store(self.conns.len() as u64, Ordering::Relaxed);
        }
    }
}

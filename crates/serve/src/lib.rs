//! `bp-serve`: a concurrent trace-evaluation service over the
//! experiment engine, with evented connection handling, a persistent
//! result cache, consistent-hash sharding, and a load-generating client.
//!
//! The offline `repro` binary answers the paper's questions once per
//! invocation, rebuilding every artifact each run. This crate turns the
//! same evaluation engine into shared measurement infrastructure: a
//! long-running daemon keeps per-workload [`bp_experiments::Engine`]s —
//! and their memoized `BranchStreams` / `BranchMatrix` / `EvalCache`
//! artifacts — hot in memory, and answers evaluation queries over a
//! small TCP protocol. The first query for a workload pays the build;
//! every identical query after it is a cache lookup (which survives
//! restarts via the disk tier), and every *overlapping* query (same
//! workload, different experiment) shares the engine's artifacts.
//! Multiple daemons scale horizontally: clients route each key over a
//! consistent-hash ring with automatic failover.
//!
//! Served outputs are byte-identical to `repro`'s for the same
//! configuration: both sides call [`bp_experiments::run_experiment`],
//! the single dispatch point (CI's smoke jobs diff the two through
//! every layer).
//!
//! | module | what |
//! |---|---|
//! | [`json`] | minimal JSON value/parser/writer (the vendored serde is a no-op shim) |
//! | [`protocol`] | length-prefixed JSON frames; request/response types; typed error codes |
//! | [`sys`] | the one foreign call: `poll(2)` (the only unsafe in the crate) |
//! | [`reactor`] | single-thread readiness loop owning every socket |
//! | [`server`] | bounded worker pool + bounded queue, coalescing, deadlines, drain |
//! | [`disk_cache`] | two-tier rendered-output cache: LRU memory + fingerprinted files |
//! | [`ring`] | consistent-hash shard routing and retry/backoff policy |
//! | [`stats`] | per-endpoint counters and p50/p99/p999 latency histograms |
//! | [`client`] | blocking client, sharded failover client, and the load generator |
//!
//! Binaries: `bp-serve` (the daemon) and `bp-client`
//! (`eval` / `trace` / `stats` / `ping` / `shutdown` / `bench` / `idle`).

#![deny(unsafe_code)] // `sys` carries the one audited `#[allow]` for poll(2).
#![warn(missing_docs)]

pub mod client;
pub mod disk_cache;
pub mod json;
pub mod protocol;
pub mod reactor;
pub mod ring;
pub mod server;
pub mod stats;
pub mod sys;

pub use client::{
    run_bench, BenchOptions, BenchReport, ChaosOptions, Client, ClientError, ShardedClient,
};
pub use disk_cache::{CacheTier, DiskCacheError, EvalKey, ResultCache};
pub use protocol::{
    read_frame, write_frame, ErrorCode, FrameError, PredictorSpec, ProtocolError, Request,
    Response, DEFAULT_MAX_FRAME,
};
pub use ring::{Jitter, RetryPolicy, Ring};
pub use server::{spawn, ServerConfig, ServerHandle, MAX_TARGET};
pub use stats::{ServerStats, StatsSnapshot};

//! `bp-serve`: a concurrent trace-evaluation service over the
//! experiment engine, with request batching, backpressure, and a
//! load-generating client.
//!
//! The offline `repro` binary answers the paper's questions once per
//! invocation, rebuilding every artifact each run. This crate turns the
//! same evaluation engine into shared measurement infrastructure: a
//! long-running daemon keeps per-workload [`bp_experiments::Engine`]s —
//! and their memoized `BranchStreams` / `BranchMatrix` / `EvalCache`
//! artifacts — hot in memory, and answers evaluation queries over a
//! small TCP protocol. The first query for a workload pays the build;
//! every identical query after it is a cache lookup, and every
//! *overlapping* query (same workload, different experiment) shares the
//! engine's artifacts.
//!
//! Served outputs are byte-identical to `repro`'s for the same
//! configuration: both sides call [`bp_experiments::run_experiment`],
//! the single dispatch point (CI's smoke job diffs the two).
//!
//! | module | what |
//! |---|---|
//! | [`json`] | minimal JSON value/parser/writer (the vendored serde is a no-op shim) |
//! | [`protocol`] | length-prefixed JSON frames; request/response types; typed error codes |
//! | [`server`] | bounded worker pool + bounded queue, coalescing, deadlines, drain |
//! | [`stats`] | per-endpoint counters and p50/p99 latency histograms |
//! | [`client`] | blocking client and the closed-loop load generator |
//!
//! Binaries: `bp-serve` (the daemon) and `bp-client`
//! (`eval` / `trace` / `stats` / `ping` / `shutdown` / `bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::{run_bench, BenchOptions, BenchReport, Client, ClientError};
pub use protocol::{
    read_frame, write_frame, ErrorCode, FrameError, PredictorSpec, ProtocolError, Request,
    Response, DEFAULT_MAX_FRAME,
};
pub use server::{spawn, ServerConfig, ServerHandle, MAX_TARGET};
pub use stats::{ServerStats, StatsSnapshot};

//! Property-based tests for the analysis layer: oracle invariants,
//! classification totals, best-of/combined algebra, percentile curves.

use proptest::prelude::*;

use bp_core::{
    best_of, combined_correct, per_branch_max, presence_stats, Classifier, ClassifierConfig,
    Contender, OracleConfig, OracleSelector, OutcomeMatrix, PaClass, PercentileCurve,
    SearchStrategy, SelectivePredictor, TagCandidates, IDEAL_STATIC_NAME,
};
use bp_predictors::{simulate_per_branch, Gshare, Pas, PerBranchStats, PredictionStats};
use bp_trace::{BranchProfile, Trace};

/// This crate's historical generator parameters, over the shared
/// [`bp_trace::testgen`] strategy.
fn arb_trace(max: usize) -> impl Strategy<Value = Trace> {
    bp_trace::testgen::arb_trace(12, 0x100, 1..max)
}

fn arb_stats_pair() -> impl Strategy<Value = (PerBranchStats, PerBranchStats)> {
    prop::collection::vec((0u64..16, 1u64..50, 0u64..50, 0u64..50), 0..12).prop_map(|rows| {
        let a: PerBranchStats = rows
            .iter()
            .map(|&(pc, n, ca, _)| {
                (
                    pc,
                    PredictionStats {
                        predictions: n,
                        correct: ca.min(n),
                    },
                )
            })
            .collect();
        let b: PerBranchStats = rows
            .iter()
            .map(|&(pc, n, _, cb)| {
                (
                    pc,
                    PredictionStats {
                        predictions: n,
                        correct: cb.min(n),
                    },
                )
            })
            .collect();
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn oracle_scores_monotone_and_bounded(trace in arb_trace(400)) {
        let cfg = OracleConfig { window: 8, candidate_cap: 12, ..OracleConfig::default() };
        let oracle = OracleSelector::analyze(&trace, &cfg);
        for (_, sel) in oracle.iter() {
            prop_assert!(sel.best[0].correct <= sel.executions);
            prop_assert!(sel.best[1].correct >= sel.best[0].correct);
            prop_assert!(sel.best[2].correct >= sel.best[1].correct);
            prop_assert!(sel.best[0].tags.len() <= 1);
            prop_assert!(sel.best[1].tags.len() <= 2);
            prop_assert!(sel.best[2].tags.len() <= 3);
        }
        let total: u64 = oracle.iter().map(|(_, s)| s.executions).sum();
        prop_assert_eq!(total, trace.conditional_count() as u64);
    }

    #[test]
    fn exhaustive_never_below_greedy(trace in arb_trace(250)) {
        let base = OracleConfig { window: 6, candidate_cap: 8, ..OracleConfig::default() };
        let greedy = OracleSelector::analyze(&trace, &base);
        let exhaustive = OracleSelector::analyze(&trace, &OracleConfig {
            search: SearchStrategy::Exhaustive { max_candidates: 8 },
            ..base
        });
        for (pc, g) in greedy.iter() {
            let e = exhaustive.selection(pc).expect("same branches analyzed");
            for k in 0..3 {
                prop_assert!(e.best[k].correct >= g.best[k].correct, "branch {pc:#x} k={k}");
            }
        }
    }

    #[test]
    fn runtime_selective_equals_matrix_scoring(trace in arb_trace(300), k in 1usize..=3) {
        // The strongest cross-check in the workspace: the online
        // SelectivePredictor (live path window, per-branch counter tables)
        // must reproduce the oracle's offline matrix-replay scores bit for
        // bit, for every branch.
        let cfg = OracleConfig { window: 8, candidate_cap: 10, ..OracleConfig::default() };
        let oracle = OracleSelector::analyze(&trace, &cfg);
        let mut live = SelectivePredictor::from_oracle(&oracle, k, &cfg);
        let live_stats = simulate_per_branch(&mut live, &trace);
        let matrix_stats = oracle.selective_stats(k);
        for (pc, m) in matrix_stats.iter() {
            prop_assert_eq!(live_stats.get(pc), Some(m), "branch {:#x} k={}", pc, k);
        }
    }

    #[test]
    fn presence_bounded_by_full_information(trace in arb_trace(300), k in 1usize..=3) {
        let cfg = OracleConfig { window: 8, candidate_cap: 10, ..OracleConfig::default() };
        let cands = TagCandidates::collect(&trace, cfg.window, cfg.candidate_cap);
        let matrix = OutcomeMatrix::build(&trace, &cands, cfg.window);
        let oracle = OracleSelector::analyze_matrix(&matrix, &cfg);
        let presence = presence_stats(&matrix, &oracle, k, cfg.counter);
        let full = oracle.selective_stats(k);
        prop_assert_eq!(presence.total().predictions, full.total().predictions);
        // Presence is a deterministic coarsening of the ternary pattern;
        // with adaptive counters it can win on individual branches by
        // luck, but it can never beat the oracle's own chosen-set score by
        // more than warmup noise in aggregate.
        prop_assert!(presence.total().correct <= full.total().correct
            + (full.total().predictions / 10).max(8));
    }

    #[test]
    fn classification_covers_trace(trace in arb_trace(400)) {
        let c = Classifier::classify(&trace, &ClassifierConfig::default());
        let total: u64 = c.iter().map(|(_, s)| s.executions).sum();
        prop_assert_eq!(total, trace.conditional_count() as u64);
        let dist = c.dynamic_distribution();
        let sum: f64 = dist.values().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        // Per-branch: scores are bounded by executions and the class is
        // consistent with the score comparison.
        for (_, s) in c.iter() {
            prop_assert!(s.static_correct <= s.executions);
            prop_assert!(s.loop_correct <= s.executions);
            prop_assert!(s.repeating_correct() <= s.executions);
            prop_assert!(s.pas_correct <= s.executions);
            if s.class() == PaClass::IdealStatic {
                prop_assert!(s.static_correct >= s.best_dynamic_correct());
            } else {
                prop_assert!(s.best_dynamic_correct() > s.static_correct);
            }
        }
    }

    #[test]
    fn combined_is_commutative_and_dominates((a, b) in arb_stats_pair()) {
        let ab = combined_correct(&a, &b);
        let ba = combined_correct(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert!(ab.correct >= a.total().correct);
        prop_assert!(ab.correct >= b.total().correct);
        prop_assert!(ab.correct <= a.total().correct + b.total().correct);
        prop_assert_eq!(ab.predictions, a.total().predictions);
    }

    #[test]
    fn per_branch_max_agrees_with_combined((a, b) in arb_stats_pair()) {
        let m = per_branch_max(&a, &b);
        prop_assert_eq!(m.total(), combined_correct(&a, &b));
        // Idempotent and commutative.
        prop_assert_eq!(per_branch_max(&a, &a).total(), a.total());
        prop_assert_eq!(per_branch_max(&b, &a).total(), m.total());
    }

    #[test]
    fn best_of_fractions_partition(trace in arb_trace(300)) {
        let profile = BranchProfile::of(&trace);
        let g = simulate_per_branch(&mut Gshare::new(6), &trace);
        let p = simulate_per_branch(&mut Pas::new(4, 3, 1), &trace);
        let dist = best_of(
            &[Contender::new("g", &g), Contender::new("p", &p)],
            &profile,
            0.99,
        );
        let sum = dist.fraction("g") + dist.fraction("p") + dist.fraction(IDEAL_STATIC_NAME);
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let bias = dist.static_bias_fraction();
        prop_assert!((0.0..=1.0).contains(&bias));
    }

    #[test]
    fn percentile_curve_monotone((a, b) in arb_stats_pair()) {
        let curve = PercentileCurve::accuracy_difference(&a, &b);
        let samples = curve.sample(20);
        prop_assert!(samples.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12));
        prop_assert!(curve.loss_if_only_first() >= 0.0);
        prop_assert!(curve.loss_if_only_second() >= 0.0);
        // Mirror symmetry: swapping the predictors flips the curve.
        let flipped = PercentileCurve::accuracy_difference(&b, &a);
        prop_assert!((curve.loss_if_only_first() - flipped.loss_if_only_second()).abs() < 1e-9);
    }
}

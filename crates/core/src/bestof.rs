use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use bp_predictors::{PerBranchStats, PredictionStats};
use bp_trace::BranchProfile;

/// A named per-branch stats block entered into a [`best_of`] comparison.
#[derive(Debug, Clone)]
pub struct Contender<'a> {
    /// Display name (e.g. `"gshare"`).
    pub name: &'a str,
    /// Per-branch results of that predictor over the trace.
    pub stats: &'a PerBranchStats,
}

impl<'a> Contender<'a> {
    /// Convenience constructor.
    pub fn new(name: &'a str, stats: &'a PerBranchStats) -> Self {
        Contender { name, stats }
    }
}

/// Result of a [`best_of`] comparison: what fraction of dynamic branches
/// each contender (or the ideal static baseline) predicted best.
///
/// This reproduces the figure 7/8 view: each *static* branch is assigned to
/// whichever predictor got the most of its executions right, then fractions
/// are weighted by the branch's dynamic execution count. Ideal static wins
/// ties (the paper does not classify branches "predicted at least as
/// accurately" by ideal static); among the dynamic contenders, the earlier
/// one in the input list wins ties.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BestOfDistribution {
    fractions: HashMap<String, f64>,
    static_bias_fraction: f64,
}

/// Name under which the ideal-static share is reported.
pub const IDEAL_STATIC_NAME: &str = "ideal-static";

impl BestOfDistribution {
    /// Fraction of dynamic branches for which `name` was best (use
    /// [`IDEAL_STATIC_NAME`] for the static share). Zero for unknown names.
    pub fn fraction(&self, name: &str) -> f64 {
        self.fractions.get(name).copied().unwrap_or(0.0)
    }

    /// Iterates `(name, fraction)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.fractions.iter().map(|(n, f)| (n.as_str(), *f))
    }

    /// Of the dynamic branches where ideal static was best, the fraction
    /// whose branch is biased above the threshold passed to [`best_of`] —
    /// the paper's "83% / 92% of these were more than 99% biased" numbers.
    pub fn static_bias_fraction(&self) -> f64 {
        self.static_bias_fraction
    }
}

/// Computes the figure 7/8 distribution: which contender best predicts each
/// branch, weighted by dynamic execution frequency, with the ideal static
/// predictor (from `profile`) as the tie-winning baseline.
///
/// `bias_threshold` (e.g. `0.99`) controls the
/// [`BestOfDistribution::static_bias_fraction`] statistic.
///
/// Branches appearing in `profile` but missing from a contender's stats are
/// treated as zero-correct for that contender.
/// # Example
///
/// ```
/// use bp_core::{best_of, Contender, IDEAL_STATIC_NAME};
/// use bp_predictors::{simulate_per_branch, Gshare, Pas};
/// use bp_trace::{BranchProfile, BranchRecord, Trace};
///
/// let trace: Trace = (0..500)
///     .map(|i| BranchRecord::conditional(0x40, i % 3 == 0))
///     .collect();
/// let g = simulate_per_branch(&mut Gshare::default(), &trace);
/// let p = simulate_per_branch(&mut Pas::default(), &trace);
/// let profile = BranchProfile::of(&trace);
/// let dist = best_of(
///     &[Contender::new("gshare", &g), Contender::new("pas", &p)],
///     &profile,
///     0.99,
/// );
/// let total = dist.fraction("gshare") + dist.fraction("pas")
///     + dist.fraction(IDEAL_STATIC_NAME);
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
pub fn best_of(
    contenders: &[Contender<'_>],
    profile: &BranchProfile,
    bias_threshold: f64,
) -> BestOfDistribution {
    let mut weights: HashMap<String, u64> = HashMap::new();
    let mut static_weight = 0u64;
    let mut static_biased_weight = 0u64;
    let total = profile.dynamic_count();

    for (pc, entry) in profile.iter() {
        let static_correct = entry.ideal_static_correct();
        let mut best_name: Option<&str> = None;
        let mut best_correct = static_correct;
        for contender in contenders {
            let correct = contender.stats.get(pc).map_or(0, |s| s.correct);
            // Strict '>' both against static and against earlier
            // contenders: static wins ties, then list order.
            if correct > best_correct {
                best_correct = correct;
                best_name = Some(contender.name);
            }
        }
        match best_name {
            Some(name) => {
                *weights.entry(name.to_owned()).or_insert(0) += entry.executions;
            }
            None => {
                static_weight += entry.executions;
                if entry.bias() > bias_threshold {
                    static_biased_weight += entry.executions;
                }
            }
        }
    }

    let mut fractions: HashMap<String, f64> = HashMap::new();
    if total > 0 {
        for contender in contenders {
            let w = weights.get(contender.name).copied().unwrap_or(0);
            fractions.insert(contender.name.to_owned(), w as f64 / total as f64);
        }
        fractions.insert(
            IDEAL_STATIC_NAME.to_owned(),
            static_weight as f64 / total as f64,
        );
    }
    BestOfDistribution {
        fractions,
        static_bias_fraction: if static_weight == 0 {
            0.0
        } else {
            static_biased_weight as f64 / static_weight as f64
        },
    }
}

/// The hypothetical combined predictor of Tables 2 and 3: for every branch,
/// use whichever of the two components predicted it better over the run
/// (an a-posteriori per-branch choice), and report the combined stats.
///
/// For Table 2, `a` is gshare and `b` the 1-tag selective-history stats
/// ("gshare w/ Corr"); for Table 3, `a` is PAs and `b` the loop predictor
/// restricted to loop-class branches ("PAs w/ Loop").
///
/// Branches present in only one input contribute that input's stats.
pub fn combined_correct(a: &PerBranchStats, b: &PerBranchStats) -> PredictionStats {
    let mut out = PredictionStats::default();
    for (pc, sa) in a.iter() {
        match b.get(pc) {
            Some(sb) => {
                debug_assert_eq!(
                    sa.predictions, sb.predictions,
                    "combined predictors must cover the same executions"
                );
                out.merge(PredictionStats {
                    predictions: sa.predictions,
                    correct: sa.correct.max(sb.correct),
                });
            }
            None => out.merge(*sa),
        }
    }
    for (pc, sb) in b.iter() {
        if a.get(pc).is_none() {
            out.merge(*sb);
        }
    }
    out
}

/// Per-branch max of two stats tables, kept in per-branch form: the result
/// of letting an oracle pick the better component for every branch.
///
/// Used to build figure 8's "global" contender (the better of
/// interference-free gshare and the 3-branch selective history per branch).
/// Branches present in only one input are carried through unchanged.
pub fn per_branch_max(a: &PerBranchStats, b: &PerBranchStats) -> PerBranchStats {
    let mut out = PerBranchStats::new();
    for (pc, sa) in a.iter() {
        let best = match b.get(pc) {
            Some(sb) => PredictionStats {
                predictions: sa.predictions,
                correct: sa.correct.max(sb.correct),
            },
            None => *sa,
        };
        out.insert(pc, best);
    }
    for (pc, sb) in b.iter() {
        if a.get(pc).is_none() {
            out.insert(pc, *sb);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{BranchRecord, Trace};

    fn stats_of(entries: &[(u64, u64, u64)]) -> PerBranchStats {
        entries
            .iter()
            .map(|&(pc, predictions, correct)| {
                (
                    pc,
                    PredictionStats {
                        predictions,
                        correct,
                    },
                )
            })
            .collect()
    }

    fn profile_of(entries: &[(u64, usize, usize)]) -> BranchProfile {
        let mut recs = Vec::new();
        for &(pc, taken, not_taken) in entries {
            for _ in 0..taken {
                recs.push(BranchRecord::conditional(pc, true));
            }
            for _ in 0..not_taken {
                recs.push(BranchRecord::conditional(pc, false));
            }
        }
        BranchProfile::of(&Trace::from_records(recs))
    }

    #[test]
    fn combined_takes_per_branch_max() {
        let a = stats_of(&[(1, 10, 9), (2, 10, 2)]);
        let b = stats_of(&[(1, 10, 5), (2, 10, 8)]);
        let c = combined_correct(&a, &b);
        assert_eq!(c.predictions, 20);
        assert_eq!(c.correct, 17);
    }

    #[test]
    fn combined_handles_disjoint_branches() {
        let a = stats_of(&[(1, 10, 9)]);
        let b = stats_of(&[(2, 5, 4)]);
        let c = combined_correct(&a, &b);
        assert_eq!(c.predictions, 15);
        assert_eq!(c.correct, 13);
    }

    #[test]
    fn combined_at_least_each_component() {
        let a = stats_of(&[(1, 10, 9), (2, 10, 2), (3, 4, 4)]);
        let b = stats_of(&[(1, 10, 5), (2, 10, 8), (3, 4, 0)]);
        let c = combined_correct(&a, &b);
        let ta = a.total();
        let tb = b.total();
        assert!(c.correct >= ta.correct && c.correct >= tb.correct);
    }

    #[test]
    fn per_branch_max_keeps_per_branch_form() {
        let a = stats_of(&[(1, 10, 9), (2, 10, 2)]);
        let b = stats_of(&[(1, 10, 5), (3, 4, 4)]);
        let m = per_branch_max(&a, &b);
        assert_eq!(m.get(1).unwrap().correct, 9);
        assert_eq!(m.get(2).unwrap().correct, 2);
        assert_eq!(m.get(3).unwrap().correct, 4);
        assert_eq!(m.total().predictions, 24);
    }

    #[test]
    fn best_of_assigns_by_weighted_winner() {
        // Branch 1: 100 execs, 90 taken (static correct 90).
        // Branch 2: 50 execs, 25/25 (static correct 25).
        let profile = profile_of(&[(1, 90, 10), (2, 25, 25)]);
        // gshare: mediocre on 1, great on 2.
        let gshare = stats_of(&[(1, 100, 80), (2, 50, 45)]);
        // pas: slightly better than static on... nothing.
        let pas = stats_of(&[(1, 100, 85), (2, 50, 40)]);
        let dist = best_of(
            &[
                Contender::new("gshare", &gshare),
                Contender::new("pas", &pas),
            ],
            &profile,
            0.99,
        );
        // Branch 1 (weight 100): static best. Branch 2 (weight 50): gshare.
        assert!((dist.fraction(IDEAL_STATIC_NAME) - 100.0 / 150.0).abs() < 1e-12);
        assert!((dist.fraction("gshare") - 50.0 / 150.0).abs() < 1e-12);
        assert_eq!(dist.fraction("pas"), 0.0);
        assert_eq!(dist.fraction("unknown"), 0.0);
        let total: f64 = dist.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn static_wins_ties() {
        let profile = profile_of(&[(1, 8, 2)]);
        let tied = stats_of(&[(1, 10, 8)]); // equals static correct
        let dist = best_of(&[Contender::new("x", &tied)], &profile, 0.99);
        assert_eq!(dist.fraction("x"), 0.0);
        assert_eq!(dist.fraction(IDEAL_STATIC_NAME), 1.0);
    }

    #[test]
    fn earlier_contender_wins_ties() {
        let profile = profile_of(&[(1, 5, 5)]);
        let a = stats_of(&[(1, 10, 9)]);
        let b = stats_of(&[(1, 10, 9)]);
        let dist = best_of(
            &[Contender::new("first", &a), Contender::new("second", &b)],
            &profile,
            0.99,
        );
        assert_eq!(dist.fraction("first"), 1.0);
        assert_eq!(dist.fraction("second"), 0.0);
    }

    #[test]
    fn bias_fraction_of_static_class() {
        // Branch 1: 99.5% biased (200 execs). Branch 2: 60% biased (100).
        let profile = profile_of(&[(1, 199, 1), (2, 60, 40)]);
        let weak = stats_of(&[(1, 200, 0), (2, 100, 0)]);
        let dist = best_of(&[Contender::new("weak", &weak)], &profile, 0.99);
        assert_eq!(dist.fraction(IDEAL_STATIC_NAME), 1.0);
        assert!((dist.static_bias_fraction() - 200.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_yields_empty_distribution() {
        let profile = profile_of(&[]);
        let s = stats_of(&[]);
        let dist = best_of(&[Contender::new("x", &s)], &profile, 0.99);
        assert_eq!(dist.fraction("x"), 0.0);
        assert_eq!(dist.static_bias_fraction(), 0.0);
    }
}

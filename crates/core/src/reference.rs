//! Reference byte-matrix oracle scorer and per-record classifier.
//!
//! The production kernels score word-wise over packed bit-planes: the
//! oracle in `oracle.rs`, the §4.1 per-address classification in
//! `classify.rs`. This module retains the pre-bit-parallel
//! implementations — ternary digits expanded to one byte each, class
//! predictors stepped one execution at a time through their real
//! `bp_predictors` state machines — as executable specifications: the
//! property tests assert exact agreement on random traces, and the
//! `oracle_kernel` / `classify_kernel` Criterion benches measure the
//! speedups against them.
//!
//! Always compiled so the `bp-conformance` differential runners can link
//! it directly, but hidden from docs: it is not part of the crate's
//! supported API surface. The legacy `reference-scorer` feature is a
//! no-op alias.

use std::collections::HashMap;

use bp_predictors::{
    simulate_per_branch, BlockPattern, LoopPredictor, PasInterferenceFree, SaturatingCounter,
};
use bp_trace::{BranchProfile, Pc, Trace};

use crate::classify::{BranchClassScores, Classification, ClassifierConfig};
use crate::matrix::BranchMatrix;
use crate::oracle::{
    BranchSelection, OracleConfig, SearchStrategy, TagSetScore, MAX_SELECTIVE_TAGS,
};

/// Per-record §4 classification — the pre-bit-parallel implementation,
/// simulating each class predictor over the interleaved trace. The
/// bit-parallel kernel ([`crate::Classifier::classify`]) must agree
/// score-for-score.
pub fn classify(trace: &Trace, cfg: &ClassifierConfig) -> Classification {
    assert!(
        (1..=64).contains(&cfg.max_period),
        "max fixed-pattern period must be 1..=64"
    );
    let profile = BranchProfile::of(trace);
    let loop_stats = simulate_per_branch(&mut LoopPredictor::new(), trace);
    let block_stats = simulate_per_branch(&mut BlockPattern::new(), trace);
    let pas_stats = simulate_per_branch(&mut PasInterferenceFree::new(cfg.pas_history_bits), trace);
    let fixed = sweep_fixed_patterns(trace, cfg.max_period);

    let per_branch = profile
        .iter()
        .map(|(pc, entry)| {
            let (fixed_correct, best_period) = fixed.get(&pc).map_or((0, 1), |f| f.best());
            let scores = BranchClassScores {
                executions: entry.executions,
                static_correct: entry.ideal_static_correct(),
                loop_correct: loop_stats.get(pc).map_or(0, |s| s.correct),
                fixed_correct,
                best_period,
                block_correct: block_stats.get(pc).map_or(0, |s| s.correct),
                pas_correct: pas_stats.get(pc).map_or(0, |s| s.correct),
            };
            (pc, scores)
        })
        .collect();
    Classification::from_parts(per_branch, profile.dynamic_count())
}

#[derive(Debug, Clone)]
struct FixedSweep {
    /// correct[k-1] = correct predictions of the k-ago predictor.
    correct: Vec<u64>,
}

impl FixedSweep {
    fn best(&self) -> (u64, u32) {
        let mut best = 0u64;
        let mut best_k = 1u32;
        for (i, &c) in self.correct.iter().enumerate() {
            if c > best {
                best = c;
                best_k = i as u32 + 1;
            }
        }
        (best, best_k)
    }
}

/// Evaluates all k-ago predictors (k = 1..=max) for every branch in one
/// trace pass, using a per-branch outcome ring. Insufficient history
/// predicts taken, matching [`bp_predictors::KthAgo`].
fn sweep_fixed_patterns(trace: &Trace, max_period: u32) -> HashMap<Pc, FixedSweep> {
    struct Ring {
        bits: u64,
        len: u32,
    }
    let mut rings: HashMap<Pc, (Ring, FixedSweep)> = HashMap::new();
    for rec in trace.conditionals() {
        let (ring, sweep) = rings.entry(rec.pc).or_insert_with(|| {
            (
                Ring { bits: 0, len: 0 },
                FixedSweep {
                    correct: vec![0; max_period as usize],
                },
            )
        });
        for k in 1..=max_period {
            let pred = if ring.len >= k {
                (ring.bits >> (k - 1)) & 1 == 1
            } else {
                true
            };
            if pred == rec.taken {
                sweep.correct[(k - 1) as usize] += 1;
            }
        }
        ring.bits = (ring.bits << 1) | u64::from(rec.taken);
        if ring.len < 64 {
            ring.len += 1;
        }
    }
    rings.into_iter().map(|(pc, (_, s))| (pc, s)).collect()
}

const MAX_PATTERNS: usize = 27;

/// Column-major byte expansion of one branch's outcome matrix: ternary
/// digit per (candidate, execution), plus the branch's own outcomes.
pub struct ColumnView {
    /// `tags × executions` digits; column `c` at `[c * rows .. (c+1) * rows]`.
    columns: Vec<u8>,
    taken: Vec<bool>,
}

impl ColumnView {
    /// Expands `bm`'s bit-planes into bytes.
    pub fn new(bm: &BranchMatrix) -> Self {
        let rows = bm.executions();
        let mut columns = vec![0u8; bm.tags().len() * rows];
        for c in 0..bm.tags().len() {
            for e in 0..rows {
                columns[c * rows + e] = bm.outcome(e, c).digit() as u8;
            }
        }
        ColumnView {
            columns,
            taken: (0..rows).map(|e| bm.taken(e)).collect(),
        }
    }

    #[inline]
    fn column(&self, c: usize) -> &[u8] {
        let rows = self.taken.len();
        &self.columns[c * rows..(c + 1) * rows]
    }
}

/// Digit-at-a-time scoring of one tag set: a table of `3^cols` counters,
/// pattern selected by the tags' ternary outcomes, predicted by the
/// counter's high bit, trained with the branch outcome — one execution per
/// loop iteration, in trace order.
pub fn score_tag_set(view: &ColumnView, cols: &[usize], init: SaturatingCounter) -> u64 {
    let mut counters = [init; MAX_PATTERNS];
    let mut correct = 0u64;
    let mut tally = |slot: &mut SaturatingCounter, taken: bool| {
        if slot.predict_taken() == taken {
            correct += 1;
        }
        slot.train(taken);
    };
    match *cols {
        [] => {
            let slot = &mut counters[0];
            for &taken in &view.taken {
                tally(slot, taken);
            }
        }
        [a] => {
            for (&da, &taken) in view.column(a).iter().zip(&view.taken) {
                tally(&mut counters[da as usize], taken);
            }
        }
        [a, b] => {
            let zipped = view.column(a).iter().zip(view.column(b)).zip(&view.taken);
            for ((&da, &db), &taken) in zipped {
                tally(&mut counters[da as usize * 3 + db as usize], taken);
            }
        }
        [a, b, c] => {
            let zipped = view
                .column(a)
                .iter()
                .zip(view.column(b))
                .zip(view.column(c))
                .zip(&view.taken);
            for (((&da, &db), &dc), &taken) in zipped {
                let idx = (da as usize * 3 + db as usize) * 3 + dc as usize;
                tally(&mut counters[idx], taken);
            }
        }
        _ => unreachable!("selective histories use at most {MAX_SELECTIVE_TAGS} tags"),
    }
    correct
}

/// Digit-at-a-time presence-only scoring (in-path / not-in-path patterns,
/// directions discarded).
pub fn score_presence(bm: &BranchMatrix, cols: &[usize], init: SaturatingCounter) -> u64 {
    debug_assert!(cols.len() <= MAX_SELECTIVE_TAGS);
    let mut counters = [init; 1 << MAX_SELECTIVE_TAGS];
    let mut correct = 0u64;
    for e in 0..bm.executions() {
        let mut idx = 0usize;
        for &c in cols {
            let in_path = bm.outcome(e, c) != bp_trace::TagOutcome::NotInPath;
            idx = (idx << 1) | usize::from(in_path);
        }
        let taken = bm.taken(e);
        if counters[idx].predict_taken() == taken {
            correct += 1;
        }
        counters[idx].train(taken);
    }
    correct
}

/// Full per-branch subset search over the byte-expanded matrix — the same
/// search as [`crate::OracleSelector::select_branch`], driven by the
/// reference scorer. Since the scorers agree exactly, so do the selections.
pub fn select_branch(bm: &BranchMatrix, cfg: &OracleConfig) -> BranchSelection {
    let n_cands = bm.tags().len();
    let executions = bm.executions() as u64;
    let view = ColumnView::new(bm);

    // Size 1: always exhaustive (linear).
    let mut best1_cols: Vec<usize> = Vec::new();
    let mut best1 = score_tag_set(&view, &[], cfg.counter);
    for c in 0..n_cands {
        let s = score_tag_set(&view, &[c], cfg.counter);
        if s > best1 {
            best1 = s;
            best1_cols = vec![c];
        }
    }

    let exhaustive = match cfg.search {
        SearchStrategy::Exhaustive { max_candidates } => n_cands <= max_candidates,
        SearchStrategy::Greedy => false,
    };

    let (best2_cols, best2) = if exhaustive {
        best_exhaustive(&view, n_cands, 2, cfg.counter)
    } else {
        best_greedy_step(&view, &best1_cols, best1, n_cands, cfg.counter)
    };
    let (best2_cols, best2) = keep_better((best1_cols.clone(), best1), (best2_cols, best2));

    let (best3_cols, best3) = if exhaustive {
        best_exhaustive(&view, n_cands, 3, cfg.counter)
    } else {
        best_greedy_step(&view, &best2_cols, best2, n_cands, cfg.counter)
    };
    let (best3_cols, best3) = keep_better((best2_cols.clone(), best2), (best3_cols, best3));

    let to_score = |cols: &[usize], correct: u64| TagSetScore {
        tags: cols.iter().map(|&c| bm.tags()[c]).collect(),
        correct,
    };
    BranchSelection {
        executions,
        best: [
            to_score(&best1_cols, best1),
            to_score(&best2_cols, best2),
            to_score(&best3_cols, best3),
        ],
    }
}

fn best_greedy_step(
    view: &ColumnView,
    base: &[usize],
    base_score: u64,
    n_cands: usize,
    init: SaturatingCounter,
) -> (Vec<usize>, u64) {
    let mut best_cols = base.to_vec();
    let mut best = base_score;
    let mut trial = base.to_vec();
    trial.push(0);
    for c in 0..n_cands {
        if base.contains(&c) {
            continue;
        }
        *trial.last_mut().expect("trial set is non-empty") = c;
        let s = score_tag_set(view, &trial, init);
        if s > best {
            best = s;
            best_cols = trial.clone();
        }
    }
    (best_cols, best)
}

fn best_exhaustive(
    view: &ColumnView,
    n_cands: usize,
    size: usize,
    init: SaturatingCounter,
) -> (Vec<usize>, u64) {
    let mut best_cols: Vec<usize> = Vec::new();
    let mut best = 0u64;
    let mut combo = vec![0usize; size];
    if n_cands < size {
        return (Vec::new(), 0);
    }
    for (i, slot) in combo.iter_mut().enumerate() {
        *slot = i;
    }
    loop {
        let s = score_tag_set(view, &combo, init);
        if s > best {
            best = s;
            best_cols = combo.clone();
        }
        let mut i = size;
        loop {
            if i == 0 {
                return (best_cols, best);
            }
            i -= 1;
            if combo[i] < n_cands - (size - i) {
                combo[i] += 1;
                for j in i + 1..size {
                    combo[j] = combo[j - 1] + 1;
                }
                break;
            }
        }
    }
}

fn keep_better(a: (Vec<usize>, u64), b: (Vec<usize>, u64)) -> (Vec<usize>, u64) {
    if b.1 > a.1 {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use bp_trace::{BranchRecord, Trace};

    use super::*;
    use crate::candidates::TagCandidates;
    use crate::matrix::OutcomeMatrix;
    use crate::oracle;
    use crate::{Classifier, OracleSelector};

    /// Purely random conditional outcomes across a handful of branches.
    fn arb_cond_trace(max: usize) -> impl Strategy<Value = Trace> {
        prop::collection::vec(
            (0u64..6, any::<bool>())
                .prop_map(|(pc, taken)| BranchRecord::conditional(0x40 + pc * 4, taken)),
            1..max,
        )
        .prop_map(Trace::from_records)
    }

    /// Adversarial per-branch structure: long same-direction runs (lengths
    /// crossing the 255 trip cap and the 64-bit word size) and repeated
    /// periodic patterns (periods crossing the 64 sweep ceiling), chained
    /// per branch and interleaved round-robin into one trace.
    fn arb_structured_trace() -> impl Strategy<Value = Trace> {
        let segment = (
            any::<bool>(),
            (any::<bool>(), 1usize..300),
            (prop::collection::vec(any::<bool>(), 1..70), 1usize..6),
        )
            .prop_map(|(use_run, (d, len), (pattern, reps))| {
                if use_run {
                    vec![d; len]
                } else {
                    let mut v = Vec::with_capacity(pattern.len() * reps);
                    for _ in 0..reps {
                        v.extend_from_slice(&pattern);
                    }
                    v
                }
            });
        let branch = prop::collection::vec(segment, 1..5)
            .prop_map(|segs| segs.into_iter().flatten().collect::<Vec<bool>>());
        prop::collection::vec(branch, 1..4).prop_map(|branches| {
            let mut recs = Vec::new();
            let longest = branches.iter().map(Vec::len).max().unwrap_or(0);
            for i in 0..longest {
                for (b, outcomes) in branches.iter().enumerate() {
                    if let Some(&taken) = outcomes.get(i) {
                        recs.push(BranchRecord::conditional(0x80 + b as u64 * 4, taken));
                    }
                }
            }
            Trace::from_records(recs)
        })
    }

    /// Configurations covering the sweep extremes (k = 1 only, the paper's
    /// 32, the 64 ceiling) and both IF-PAs paths (dense and hash-keyed).
    const CLASSIFY_CONFIGS: [ClassifierConfig; 4] = [
        ClassifierConfig {
            max_period: 32,
            pas_history_bits: 12,
        },
        ClassifierConfig {
            max_period: 64,
            pas_history_bits: 4,
        },
        ClassifierConfig {
            max_period: 1,
            pas_history_bits: 1,
        },
        ClassifierConfig {
            max_period: 32,
            pas_history_bits: 20,
        },
    ];

    fn assert_classifier_matches_reference(trace: &Trace, cfg: &ClassifierConfig) {
        let want = classify(trace, cfg);
        let got = Classifier::classify(trace, cfg);
        assert_eq!(got.iter().count(), want.iter().count());
        for (pc, w) in want.iter() {
            assert_eq!(got.get(pc), Some(w), "pc {pc:#x} cfg {cfg:?}");
        }
    }

    fn arb_trace(max: usize) -> impl Strategy<Value = Trace> {
        prop::collection::vec(
            (0u64..10, any::<bool>(), any::<bool>()).prop_map(|(pc, taken, backward)| {
                let rec = BranchRecord::conditional(pc * 4 + 0x100, taken);
                if backward {
                    rec.with_target(0x80)
                } else {
                    rec
                }
            }),
            1..max,
        )
        .prop_map(Trace::from_records)
    }

    fn matrix_for(trace: &Trace, window: usize, cap: usize) -> OutcomeMatrix {
        let cands = TagCandidates::collect(trace, window, cap);
        OutcomeMatrix::build(trace, &cands, window)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The word-wise bit-plane scorer and the digit-at-a-time reference
        /// agree exactly on every tag set of size 0..=3, across counter
        /// widths.
        #[test]
        fn bit_plane_scorer_matches_reference(trace in arb_trace(400), bits in 1u8..=3) {
            let init = SaturatingCounter::new(bits, 0);
            let matrix = matrix_for(&trace, 8, 10);
            for (_, bm) in matrix.iter() {
                let view = ColumnView::new(bm);
                let n = bm.tags().len();
                prop_assert_eq!(
                    oracle::score_tag_set(bm, &[], init),
                    score_tag_set(&view, &[], init)
                );
                for a in 0..n {
                    prop_assert_eq!(
                        oracle::score_tag_set(bm, &[a], init),
                        score_tag_set(&view, &[a], init)
                    );
                    for b in a + 1..n {
                        prop_assert_eq!(
                            oracle::score_tag_set(bm, &[a, b], init),
                            score_tag_set(&view, &[a, b], init)
                        );
                        for c in b + 1..n {
                            prop_assert_eq!(
                                oracle::score_tag_set(bm, &[a, b, c], init),
                                score_tag_set(&view, &[a, b, c], init)
                            );
                        }
                    }
                }
            }
        }

        /// Same agreement for the presence-only scorer (in-path patterns,
        /// directions discarded).
        #[test]
        fn presence_scorer_matches_reference(trace in arb_trace(300)) {
            let init = SaturatingCounter::two_bit();
            let matrix = matrix_for(&trace, 8, 6);
            for (_, bm) in matrix.iter() {
                let n = bm.tags().len();
                for a in 0..n {
                    prop_assert_eq!(
                        oracle::score_columns_presence(bm, &[a], init),
                        score_presence(bm, &[a], init)
                    );
                    for b in a + 1..n {
                        prop_assert_eq!(
                            oracle::score_columns_presence(bm, &[a, b], init),
                            score_presence(bm, &[a, b], init)
                        );
                        for c in b + 1..n {
                            prop_assert_eq!(
                                oracle::score_columns_presence(bm, &[a, b, c], init),
                                score_presence(bm, &[a, b, c], init)
                            );
                        }
                    }
                }
            }
        }

        /// Because the scorers agree, so do full per-branch selections —
        /// tags and scores, for both search strategies.
        #[test]
        fn search_selections_match_reference(trace in arb_trace(300)) {
            for search in [
                SearchStrategy::Greedy,
                SearchStrategy::Exhaustive { max_candidates: 12 },
            ] {
                let cfg = OracleConfig {
                    window: 6,
                    candidate_cap: 8,
                    search,
                    ..OracleConfig::default()
                };
                let matrix = matrix_for(&trace, cfg.window, cfg.candidate_cap);
                for (pc, bm) in matrix.iter() {
                    let got = OracleSelector::select_branch(bm, &cfg);
                    let want = select_branch(bm, &cfg);
                    prop_assert_eq!(got.executions, want.executions, "{:#x}", pc);
                    for k in 0..3 {
                        prop_assert_eq!(
                            &got.best[k].tags,
                            &want.best[k].tags,
                            "{:#x} k={}",
                            pc,
                            k
                        );
                        prop_assert_eq!(
                            got.best[k].correct,
                            want.best[k].correct,
                            "{:#x} k={}",
                            pc,
                            k
                        );
                    }
                }
            }
        }

        /// The bit-parallel classification kernel reproduces the
        /// per-record reference score-for-score on random traces —
        /// executions, static/loop/fixed/block/PAs corrects, and the
        /// `best_period` tie-break — across sweep and history extremes.
        #[test]
        fn classifier_matches_reference_on_random_traces(trace in arb_cond_trace(600)) {
            for cfg in &CLASSIFY_CONFIGS {
                assert_classifier_matches_reference(&trace, cfg);
            }
        }

        /// Same agreement on adversarial run/period structure: runs past
        /// the 255 trip cap, periods past the 64-k ceiling, and word-
        /// boundary-straddling segments.
        #[test]
        fn classifier_matches_reference_on_structured_traces(trace in arb_structured_trace()) {
            for cfg in &CLASSIFY_CONFIGS {
                assert_classifier_matches_reference(&trace, cfg);
            }
        }
    }

    /// Pinned sweep corner cases: a uniformly-taken branch ties every k
    /// (warmup predicts taken, replay always matches) and must keep the
    /// smallest period; a short never-taken branch is scored entirely by
    /// the insufficient-history predicts-taken rule.
    #[test]
    fn sweep_tie_break_and_warmup_rule_pinned() {
        let cfg = ClassifierConfig::default();
        let uniform: Trace = (0..100)
            .map(|_| BranchRecord::conditional(0x10, true))
            .collect();
        for c in [
            classify(&uniform, &cfg),
            Classifier::classify(&uniform, &cfg),
        ] {
            let s = c.get(0x10).unwrap();
            assert_eq!((s.fixed_correct, s.best_period), (100, 1), "scores {s:?}");
        }

        // Three not-taken executions: k = 1 mispredicts only its one
        // warmup outcome, k = 2 two, k >= 3 never leaves warmup (all
        // wrong) — so the sweep pins (2 correct, k = 1).
        let short: Trace = (0..3)
            .map(|_| BranchRecord::conditional(0x20, false))
            .collect();
        for c in [classify(&short, &cfg), Classifier::classify(&short, &cfg)] {
            let s = c.get(0x20).unwrap();
            assert_eq!((s.fixed_correct, s.best_period), (2, 1), "scores {s:?}");
        }
    }
}

//! Incremental window sweeps: build the candidate + outcome-matrix
//! artifact once at the maximum window and derive every shorter window by
//! masking, instead of re-scanning the trace per sweep point.
//!
//! The figure 5 history-length sweep evaluates the §3.4 oracle at seven
//! window lengths. Naively that is seven candidate-collection passes and
//! seven matrix builds over the same trace. But window visibility nests:
//! an instance visible at distance *d* (see [`PathWindow::distance`]) is
//! visible in exactly the windows of length ≥ *d*, with the same tag,
//! outcome and distance — occurrence indices count only more-recent
//! same-pc entries, and iteration collisions resolve to the most recent
//! instance, so neither naming depends on how far back the window extends.
//! One max-window scan therefore determines every sub-window's candidate
//! counts, ranked candidate lists, and matrix digits; the derived matrices
//! are equal *by construction* to the ones [`OutcomeMatrix::build`] would
//! produce (the unit tests assert plane-level equality).
//!
//! [`SweepMatrix::build`] makes two passes: one to bucket per-tag
//! visibility counts by distance (ranking + cap per window), one to pack
//! bit-planes for the union of every window's capped candidate list, with
//! each set in-path bit annotated — in three side bit-planes — with the
//! index of the smallest window that sees it. [`SweepMatrix::materialize`]
//! then assembles any sweep point's [`OutcomeMatrix`] with a word-wise
//! bucket-threshold mask, no trace access needed.

use bp_trace::fx::FxHashMap;
use bp_trace::io::TraceIoError;
use bp_trace::{InstanceTag, PathWindow, Pc, Trace, TraceSource};

use crate::matrix::{BranchMatrix, OutcomeMatrix};

/// Most sweep points one artifact supports: bucket indices are packed into
/// [`BUCKET_BITS`] bit-planes.
pub const MAX_SWEEP_WINDOWS: usize = 8;
const BUCKET_BITS: usize = 3;

/// Per-branch piece of the sweep artifact: packed planes for the union of
/// every window's candidate columns, plus each window's ranked column list.
#[derive(Debug, Clone)]
struct SweepBranch {
    executions: usize,
    taken: Vec<u64>,
    /// Union candidate tags; column order is fixed but arbitrary.
    tags: Vec<InstanceTag>,
    /// Per union column: in-path plane at the maximum window.
    inpath: Vec<Vec<u64>>,
    /// Per union column: direction plane (subset of `inpath`).
    dir: Vec<Vec<u64>>,
    /// Per union column: bucket-index bit-planes — for every set in-path
    /// bit, the index (in `windows`) of the smallest window containing the
    /// instance, one binary digit per plane.
    buckets: [Vec<Vec<u64>>; BUCKET_BITS],
    /// Per window: the capped visibility-ranked candidate list, as indices
    /// into `tags`.
    ranked: Vec<Vec<u32>>,
}

/// The shared artifact of a multi-window oracle sweep over one trace.
#[derive(Debug, Clone)]
pub struct SweepMatrix {
    windows: Vec<usize>,
    branches: FxHashMap<Pc, SweepBranch>,
}

impl SweepMatrix {
    /// Scans `trace` once at the largest window in `windows` and records
    /// everything needed to materialize each sweep point's candidates and
    /// outcome matrix. `caps[i]` is the per-branch candidate cap for
    /// `windows[i]` (rank by visibility, truncate) — per-window caps let a
    /// sweep reproduce exactly the candidate lists a caller would have
    /// built point-by-point, while still packing one shared artifact for
    /// the union of every window's capped list.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty, unsorted, non-unique, longer than
    /// [`MAX_SWEEP_WINDOWS`], or contains zero, or if `caps` has a
    /// different length than `windows` or contains zero.
    pub fn build(trace: &Trace, windows: &[usize], caps: &[usize]) -> Self {
        SweepMatrix::build_from_source(trace, windows, caps)
            .expect("in-memory traces cannot fail to scan")
    }

    /// As [`SweepMatrix::build`], consuming any [`TraceSource`] — two
    /// streaming scans (visibility bucketing, then plane packing) instead
    /// of two in-memory passes, with identical output.
    ///
    /// # Errors
    ///
    /// Propagates the source's scan error.
    ///
    /// # Panics
    ///
    /// As [`SweepMatrix::build`].
    pub fn build_from_source<T: TraceSource + ?Sized>(
        source: &T,
        windows: &[usize],
        caps: &[usize],
    ) -> Result<Self, TraceIoError> {
        assert!(!windows.is_empty(), "need at least one sweep window");
        assert!(
            windows.len() <= MAX_SWEEP_WINDOWS,
            "at most {MAX_SWEEP_WINDOWS} sweep windows per artifact"
        );
        assert!(
            windows.windows(2).all(|p| p[0] < p[1]),
            "sweep windows must be strictly ascending"
        );
        assert!(windows[0] > 0, "sweep windows must be positive");
        assert_eq!(
            caps.len(),
            windows.len(),
            "one candidate cap per sweep window"
        );
        assert!(
            caps.iter().all(|&c| c > 0),
            "candidate caps must be positive"
        );
        let max_window = *windows.last().expect("windows is non-empty");

        // Pass 1: per-branch, per-tag visibility counts bucketed by the
        // smallest window that sees the instance.
        let mut counts: FxHashMap<Pc, FxHashMap<InstanceTag, [u64; MAX_SWEEP_WINDOWS]>> =
            FxHashMap::default();
        let mut path = PathWindow::new(max_window);
        let mut visible = Vec::new();
        source.scan(&mut |chunk| {
            for rec in chunk {
                if rec.is_conditional() {
                    path.visible_tags_with_distance(&mut visible);
                    let branch_counts = counts.entry(rec.pc).or_default();
                    for &(tag, _, d) in &visible {
                        let b = windows.partition_point(|&w| w < d);
                        branch_counts.entry(tag).or_insert([0; MAX_SWEEP_WINDOWS])[b] += 1;
                    }
                }
                path.push(rec);
            }
        })?;

        // Rank + cap per window; the union of the capped lists is the
        // column set worth packing planes for.
        let mut branches: FxHashMap<Pc, SweepBranch> = counts
            .into_iter()
            .map(|(pc, tag_counts)| {
                let mut union: Vec<InstanceTag> = Vec::new();
                let mut union_index: FxHashMap<InstanceTag, u32> = FxHashMap::default();
                let mut ranked = Vec::with_capacity(windows.len());
                for i in 0..windows.len() {
                    // Visibility within window i = buckets 0..=i summed.
                    let mut list: Vec<(InstanceTag, u64)> = tag_counts
                        .iter()
                        .filter_map(|(tag, buckets)| {
                            let count: u64 = buckets[..=i].iter().sum();
                            (count > 0).then_some((*tag, count))
                        })
                        .collect();
                    list.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                    list.truncate(caps[i]);
                    let cols = list
                        .into_iter()
                        .map(|(tag, _)| {
                            *union_index.entry(tag).or_insert_with(|| {
                                union.push(tag);
                                (union.len() - 1) as u32
                            })
                        })
                        .collect();
                    ranked.push(cols);
                }
                let n = union.len();
                (
                    pc,
                    SweepBranch {
                        executions: 0,
                        taken: Vec::new(),
                        tags: union,
                        inpath: vec![Vec::new(); n],
                        dir: vec![Vec::new(); n],
                        buckets: std::array::from_fn(|_| vec![Vec::new(); n]),
                        ranked,
                    },
                )
            })
            .collect();

        // Pass 2: pack the planes for the union columns.
        let mut path = PathWindow::new(max_window);
        let mut column_lookup: FxHashMap<Pc, FxHashMap<InstanceTag, u32>> = branches
            .iter()
            .map(|(pc, sb)| {
                (
                    *pc,
                    sb.tags
                        .iter()
                        .enumerate()
                        .map(|(c, tag)| (*tag, c as u32))
                        .collect(),
                )
            })
            .collect();
        source.scan(&mut |chunk| {
            for rec in chunk {
                if rec.is_conditional() {
                    if let Some(sb) = branches.get_mut(&rec.pc) {
                        let columns = &column_lookup[&rec.pc];
                        path.visible_tags_with_distance(&mut visible);
                        sb.push_execution(rec.taken, windows, columns, &visible);
                    }
                }
                path.push(rec);
            }
        })?;
        column_lookup.clear();

        Ok(SweepMatrix {
            windows: windows.to_vec(),
            branches,
        })
    }

    /// Convenience: `build` with the windows taken from ascending-sorted,
    /// deduplicated input is the caller's job — this just exposes them.
    pub fn windows(&self) -> &[usize] {
        &self.windows
    }

    /// Assembles sweep point `idx`'s outcome matrix: per branch, the capped
    /// candidate columns ranked for `windows[idx]`, with planes masked to
    /// instances the sub-window sees. Equal to [`OutcomeMatrix::build`] on
    /// that window's [`crate::TagCandidates`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn materialize(&self, idx: usize) -> OutcomeMatrix {
        assert!(idx < self.windows.len(), "sweep point out of range");
        let branches = self
            .branches
            .iter()
            .map(|(pc, sb)| (*pc, sb.materialize(idx)))
            .collect();
        OutcomeMatrix::from_parts(branches, self.windows[idx])
    }

    /// As [`SweepMatrix::materialize`], assembling branch planes on up to
    /// `jobs` threads. The per-branch masking is pure and the merge is
    /// keyed by PC, so the matrix is identical to the serial replay for
    /// every `jobs` value.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn materialize_parallel(&self, idx: usize, jobs: usize) -> OutcomeMatrix {
        assert!(idx < self.windows.len(), "sweep point out of range");
        let threads = jobs.max(1).min(self.branches.len().max(1));
        if threads <= 1 {
            return self.materialize(idx);
        }
        let mut branches: Vec<(Pc, &SweepBranch)> =
            self.branches.iter().map(|(pc, sb)| (*pc, sb)).collect();
        branches.sort_unstable_by_key(|&(pc, _)| pc);
        let chunk = branches.len().div_ceil(threads * 8).max(1);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let collected: std::sync::Mutex<FxHashMap<Pc, BranchMatrix>> =
            std::sync::Mutex::new(FxHashMap::default());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local: Vec<(Pc, BranchMatrix)> = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                        if start >= branches.len() {
                            break;
                        }
                        let end = (start + chunk).min(branches.len());
                        for &(pc, sb) in &branches[start..end] {
                            local.push((pc, sb.materialize(idx)));
                        }
                    }
                    collected
                        .lock()
                        .expect("sweep worker poisoned")
                        .extend(local);
                });
            }
        });
        let branches = collected.into_inner().expect("sweep workers poisoned");
        OutcomeMatrix::from_parts(branches, self.windows[idx])
    }
}

impl SweepBranch {
    fn push_execution(
        &mut self,
        taken: bool,
        windows: &[usize],
        columns: &FxHashMap<InstanceTag, u32>,
        visible: &[(InstanceTag, bool, usize)],
    ) {
        let e = self.executions;
        self.executions += 1;
        let (word, bit) = (e / 64, e % 64);
        if bit == 0 {
            self.taken.push(0);
            for plane in self.inpath.iter_mut().chain(self.dir.iter_mut()) {
                plane.push(0);
            }
            for planes in &mut self.buckets {
                for plane in planes.iter_mut() {
                    plane.push(0);
                }
            }
        }
        if taken {
            self.taken[word] |= 1 << bit;
        }
        for &(tag, tag_taken, d) in visible {
            let Some(&c) = columns.get(&tag) else {
                continue;
            };
            let c = c as usize;
            self.inpath[c][word] |= 1 << bit;
            if tag_taken {
                self.dir[c][word] |= 1 << bit;
            }
            let b = windows.partition_point(|&w| w < d);
            for (k, planes) in self.buckets.iter_mut().enumerate() {
                if b >> k & 1 == 1 {
                    planes[c][word] |= 1 << bit;
                }
            }
        }
    }

    fn materialize(&self, idx: usize) -> BranchMatrix {
        let words = self.executions.div_ceil(64);
        let cols = &self.ranked[idx];
        let mut inpath = Vec::with_capacity(cols.len());
        let mut dir = Vec::with_capacity(cols.len());
        for &c in cols {
            let c = c as usize;
            let mut ip_plane = Vec::with_capacity(words);
            let mut d_plane = Vec::with_capacity(words);
            for w in 0..words {
                // Word-wise bucket-index <= idx comparator over the three
                // bucket bit-planes: a bit survives when its instance is
                // seen by a window no longer than this sweep point's.
                let mut gt = 0u64;
                let mut eq = !0u64;
                for k in (0..BUCKET_BITS).rev() {
                    let bk = self.buckets[k][c][w];
                    let tk = if idx >> k & 1 == 1 { !0u64 } else { 0 };
                    gt |= eq & bk & !tk;
                    eq &= !(bk ^ tk);
                }
                let ip = self.inpath[c][w] & !gt;
                ip_plane.push(ip);
                d_plane.push(self.dir[c][w] & ip);
            }
            inpath.push(ip_plane);
            dir.push(d_plane);
        }
        let tags = cols.iter().map(|&c| self.tags[c as usize]).collect();
        BranchMatrix::from_planes(tags, self.executions, inpath, dir, self.taken.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::TagCandidates;
    use bp_trace::{BranchRecord, Recorder};

    /// A trace with loops, calls and correlated branches so all tag
    /// schemes, distances and collision cases occur.
    fn mixed_trace(n: usize) -> Trace {
        let mut rec = Recorder::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (state >> 33) & 1 == 1;
            let b = (state >> 34) & 1 == 1;
            let c = (state >> 35) & 1 == 1;
            rec.cond(0x100, a);
            if a {
                rec.call(0x110, 0x1000);
                rec.cond(0x1010, b);
                rec.ret(0x1020);
            }
            rec.cond(0x200, b);
            rec.cond(0x300, a && b);
            rec.cond(0x400, a ^ c);
            rec.loop_back(0x500, true);
        }
        rec.into_trace()
    }

    const WINDOWS: [usize; 4] = [4, 8, 12, 16];

    #[test]
    fn materialized_points_equal_direct_builds() {
        let trace = mixed_trace(300);
        let caps = [20; 4];
        let sweep = SweepMatrix::build(&trace, &WINDOWS, &caps);
        for (i, &n) in WINDOWS.iter().enumerate() {
            let derived = sweep.materialize(i);
            let cands = TagCandidates::collect(&trace, n, caps[i]);
            let direct = OutcomeMatrix::build(&trace, &cands, n);
            assert_eq!(derived.window(), direct.window());
            assert_eq!(derived.branch_count(), direct.branch_count());
            for (pc, want) in direct.iter() {
                let got = derived.branch(pc).expect("branch present");
                assert_eq!(got.tags(), want.tags(), "window {n} branch {pc:#x}");
                assert_eq!(got.executions(), want.executions());
                assert_eq!(got.taken_plane(), want.taken_plane());
                for c in 0..want.tags().len() {
                    assert_eq!(
                        got.inpath_plane(c),
                        want.inpath_plane(c),
                        "window {n} branch {pc:#x} col {c} in-path"
                    );
                    assert_eq!(
                        got.dir_plane(c),
                        want.dir_plane(c),
                        "window {n} branch {pc:#x} col {c} dir"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_materialization_is_identical_for_every_jobs_count() {
        let trace = mixed_trace(200);
        let sweep = SweepMatrix::build(&trace, &WINDOWS, &[12; 4]);
        for (i, _) in WINDOWS.iter().enumerate() {
            let serial = sweep.materialize(i);
            for jobs in [1, 2, 7, 64] {
                assert_eq!(
                    sweep.materialize_parallel(i, jobs),
                    serial,
                    "point {i} jobs {jobs}"
                );
            }
        }
    }

    #[test]
    fn single_window_sweep_degenerates_to_direct_build() {
        let trace = mixed_trace(100);
        let sweep = SweepMatrix::build(&trace, &[16], &[12]);
        let derived = sweep.materialize(0);
        let cands = TagCandidates::collect(&trace, 16, 12);
        let direct = OutcomeMatrix::build(&trace, &cands, 16);
        assert_eq!(derived.branch_count(), direct.branch_count());
        assert_eq!(derived.dynamic_count(), direct.dynamic_count());
    }

    #[test]
    fn per_window_caps_match_direct_collections() {
        // Tight, varying caps exercise both the per-window re-ranking
        // (short windows rank nearby instances highest, long windows may
        // promote others) and per-point truncation: each materialized
        // point must reproduce exactly the candidate list a direct build
        // at that window's own cap would produce.
        let trace = mixed_trace(200);
        let caps = [2, 3, 5, 8];
        let sweep = SweepMatrix::build(&trace, &WINDOWS, &caps);
        for (i, &n) in WINDOWS.iter().enumerate() {
            let derived = sweep.materialize(i);
            let cands = TagCandidates::collect(&trace, n, caps[i]);
            for (pc, tags) in cands.iter() {
                let got = derived.branch(pc).expect("branch present");
                assert_eq!(got.tags(), tags, "window {n} branch {pc:#x}");
            }
        }
    }

    #[test]
    fn branch_with_no_candidates_is_retained() {
        // A lone branch never has anything in its window... the sweep must
        // still carry it (zero columns) like the direct build does.
        let trace = Trace::from_records(vec![BranchRecord::conditional(0x42, true)]);
        let sweep = SweepMatrix::build(&trace, &[8, 16], &[4, 4]);
        let m = sweep.materialize(1);
        let bm = m.branch(0x42).expect("branch retained");
        assert_eq!(bm.tags().len(), 0);
        assert_eq!(bm.executions(), 1);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_windows_rejected() {
        let _ = SweepMatrix::build(&Trace::new(), &[16, 8], &[4, 4]);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_windows_rejected() {
        let _ = SweepMatrix::build(&Trace::new(), &[1, 2, 3, 4, 5, 6, 7, 8, 9], &[4; 9]);
    }

    #[test]
    #[should_panic(expected = "one candidate cap per sweep window")]
    fn mismatched_caps_rejected() {
        let _ = SweepMatrix::build(&Trace::new(), &[8, 16], &[4]);
    }
}

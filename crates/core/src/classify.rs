use std::collections::HashMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use bp_predictors::{PerBranchStats, SaturatingCounter, MAX_TRIP};
use bp_trace::{BranchProfile, BranchStreams, FxHashMap, OutcomeStream, Pc, Trace};

/// The per-address predictability classes of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PaClass {
    /// No class predictor beats predicting the branch's predominant
    /// direction (most such branches are >99% biased).
    IdealStatic,
    /// Loop-type: for-type (taken *n* then not-taken) or while-type
    /// (mirror), captured by the loop predictor (§4.1.1).
    Loop,
    /// Repeating pattern: fixed-length-*k* or block (*n* taken / *m*
    /// not-taken) patterns (§4.1.2).
    RepeatingPattern,
    /// Non-repeating pattern: predictable from specific prior outcomes —
    /// the premise of PAs (§4.1.3).
    NonRepeatingPattern,
}

impl PaClass {
    /// All classes, in the paper's figure 6 legend order.
    pub const ALL: [PaClass; 4] = [
        PaClass::IdealStatic,
        PaClass::Loop,
        PaClass::RepeatingPattern,
        PaClass::NonRepeatingPattern,
    ];

    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PaClass::IdealStatic => "Ideal Static",
            PaClass::Loop => "Loop",
            PaClass::RepeatingPattern => "Repeating Pattern",
            PaClass::NonRepeatingPattern => "Non-Repeating Pattern",
        }
    }
}

/// Configuration of the per-address classification.
///
/// `Hash`/`Eq` cover every field, so the config doubles as its own
/// memoization fingerprint in the evaluation-engine cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Largest fixed pattern length swept (the paper uses 32).
    pub max_period: u32,
    /// History length of the interference-free PAs class predictor.
    pub pas_history_bits: u32,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            max_period: 32,
            pas_history_bits: 12,
        }
    }
}

/// Per-branch class-predictor scores and the resulting class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchClassScores {
    /// Dynamic executions of the branch.
    pub executions: u64,
    /// Ideal-static correct count (majority direction all run).
    pub static_correct: u64,
    /// Loop predictor correct count.
    pub loop_correct: u64,
    /// Best fixed-length-pattern (k-ago) correct count over k = 1..=max.
    pub fixed_correct: u64,
    /// The k achieving `fixed_correct`.
    pub best_period: u32,
    /// Block-pattern predictor correct count.
    pub block_correct: u64,
    /// Interference-free PAs correct count.
    pub pas_correct: u64,
}

impl BranchClassScores {
    /// Repeating-pattern score: the better of the fixed-length sweep and
    /// the block predictor, as in §4.1.2.
    pub fn repeating_correct(&self) -> u64 {
        self.fixed_correct.max(self.block_correct)
    }

    /// Best correct count over every per-address class predictor (not
    /// counting ideal static).
    pub fn best_dynamic_correct(&self) -> u64 {
        self.loop_correct
            .max(self.repeating_correct())
            .max(self.pas_correct)
    }

    /// Assigns the class per §4.1: a branch predicted at least as well by
    /// ideal static belongs to no dynamic class; otherwise the class whose
    /// predictor scored highest wins, with ties resolved in the order loop,
    /// repeating, non-repeating (the more specific behavior wins — a loop
    /// is also a repeating pattern and a history-predictable pattern).
    pub fn class(&self) -> PaClass {
        let best = self.best_dynamic_correct();
        if self.static_correct >= best {
            PaClass::IdealStatic
        } else if self.loop_correct == best {
            PaClass::Loop
        } else if self.repeating_correct() == best {
            PaClass::RepeatingPattern
        } else {
            PaClass::NonRepeatingPattern
        }
    }
}

/// Result of classifying every branch of a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Classification {
    per_branch: HashMap<Pc, BranchClassScores>,
    total_dynamic: u64,
}

impl Classification {
    /// Assembles a classification from per-branch scores (shared by the
    /// bit-parallel kernel and the per-record reference implementation).
    pub(crate) fn from_parts(
        per_branch: HashMap<Pc, BranchClassScores>,
        total_dynamic: u64,
    ) -> Self {
        Classification {
            per_branch,
            total_dynamic,
        }
    }

    /// Scores for one branch, if it executed.
    pub fn get(&self, pc: Pc) -> Option<&BranchClassScores> {
        self.per_branch.get(&pc)
    }

    /// Iterates `(pc, scores)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &BranchClassScores)> {
        self.per_branch.iter().map(|(pc, s)| (*pc, s))
    }

    /// Fraction of *dynamic* branches in each class (the paper's figure 6
    /// weighting); sums to 1 for a non-empty trace.
    pub fn dynamic_distribution(&self) -> HashMap<PaClass, f64> {
        let mut weights: HashMap<PaClass, u64> = HashMap::new();
        for scores in self.per_branch.values() {
            *weights.entry(scores.class()).or_insert(0) += scores.executions;
        }
        PaClass::ALL
            .iter()
            .map(|&class| {
                let w = weights.get(&class).copied().unwrap_or(0);
                let f = if self.total_dynamic == 0 {
                    0.0
                } else {
                    w as f64 / self.total_dynamic as f64
                };
                (class, f)
            })
            .collect()
    }

    /// Of the dynamic branches classified [`PaClass::IdealStatic`], the
    /// fraction whose static branch is biased above `threshold` — the
    /// paper's "88% of these branches are more than 99% biased" statistic.
    pub fn static_class_bias_fraction(&self, profile: &BranchProfile, threshold: f64) -> f64 {
        let mut static_weight = 0u64;
        let mut biased_weight = 0u64;
        for (pc, scores) in self.iter() {
            if scores.class() == PaClass::IdealStatic {
                static_weight += scores.executions;
                if profile.get(pc).is_some_and(|e| e.bias() > threshold) {
                    biased_weight += scores.executions;
                }
            }
        }
        if static_weight == 0 {
            0.0
        } else {
            biased_weight as f64 / static_weight as f64
        }
    }

    /// Per-branch stats of the loop predictor run used for classification —
    /// reused by the Table 3 "PAs w/ Loop" construction.
    pub fn loop_stats(&self) -> PerBranchStats {
        self.per_branch
            .iter()
            .map(|(pc, s)| {
                (
                    *pc,
                    bp_predictors::PredictionStats {
                        predictions: s.executions,
                        correct: s.loop_correct,
                    },
                )
            })
            .collect()
    }

    /// Per-branch stats of the best per-address class predictor for each
    /// branch (loop / repeating / non-repeating, whichever scored highest)
    /// — the "per-address" contender in figure 8.
    pub fn best_per_address_stats(&self) -> PerBranchStats {
        self.per_branch
            .iter()
            .map(|(pc, s)| {
                (
                    *pc,
                    bp_predictors::PredictionStats {
                        predictions: s.executions,
                        correct: s.best_dynamic_correct(),
                    },
                )
            })
            .collect()
    }
}

/// Where a classification spent its time, for `repro --timings`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassifyPhases {
    /// Seconds in the shifted-XNOR fixed-pattern sweep.
    pub sweep_seconds: f64,
    /// Seconds in the run-length loop/block replay and the pattern-major
    /// IF-PAs scoring.
    pub replay_seconds: f64,
}

/// Runs the §4 per-address classification over a trace.
///
/// Every class predictor is scored from packed per-branch outcome streams
/// ([`BranchStreams`]): the k-ago sweep as shifted-XNOR popcounts, the
/// loop and block predictors over the stream's run-length decomposition,
/// and interference-free PAs pattern-major with O(1) uniform-run counter
/// jumps. Scores are exactly those of per-record simulation (the retained
/// reference implementation, `bp_core::reference::classify`, is
/// property-tested against this kernel).
///
/// # Example
///
/// ```
/// use bp_core::{Classifier, ClassifierConfig, PaClass};
/// use bp_trace::{BranchRecord, Trace};
///
/// // A trip-40 loop: too long for PAs history, trivial for the loop
/// // predictor — so it classifies as loop-type.
/// let trace: Trace = (0..2000)
///     .map(|i| BranchRecord::conditional(0x10, i % 41 != 40))
///     .collect();
/// let c = Classifier::classify(&trace, &ClassifierConfig::default());
/// assert_eq!(c.get(0x10).unwrap().class(), PaClass::Loop);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Classifier;

impl Classifier {
    /// Scores every branch with each class predictor and assigns classes.
    pub fn classify(trace: &Trace, cfg: &ClassifierConfig) -> Classification {
        Self::classify_streams(&BranchStreams::of(trace), cfg)
    }

    /// As [`Classifier::classify`], over an already-packed stream artifact
    /// (built once per trace and shared across experiments).
    pub fn classify_streams(streams: &BranchStreams, cfg: &ClassifierConfig) -> Classification {
        Self::classify_streams_timed(streams, cfg).0
    }

    /// As [`Classifier::classify_streams`], also reporting phase timings.
    pub fn classify_streams_timed(
        streams: &BranchStreams,
        cfg: &ClassifierConfig,
    ) -> (Classification, ClassifyPhases) {
        assert!(
            (1..=64).contains(&cfg.max_period),
            "max fixed-pattern period must be 1..=64"
        );
        let mut pas = PasScratch::new(cfg.pas_history_bits);
        let mut phases = ClassifyPhases::default();
        let mut per_branch = HashMap::with_capacity(streams.static_count());
        for (pc, stream) in streams.iter() {
            per_branch.insert(pc, score_branch(stream, cfg, &mut pas, &mut phases));
        }
        (
            Classification::from_parts(per_branch, streams.dynamic_count()),
            phases,
        )
    }

    /// As [`Classifier::classify_streams_timed`], scoring branches on up
    /// to `jobs` threads. Scoring is pure per branch and the merge is
    /// keyed by PC, so the classification is identical to the serial
    /// kernel for every `jobs` value; the reported phase times are summed
    /// per-worker busy seconds. Work is claimed in small chunks off a
    /// shared cursor (the `sharded_select` pattern) so a few huge streams
    /// cannot serialize the run.
    pub fn classify_streams_parallel(
        streams: &BranchStreams,
        cfg: &ClassifierConfig,
        jobs: usize,
    ) -> (Classification, ClassifyPhases) {
        let threads = jobs.max(1).min(streams.static_count().max(1));
        if threads <= 1 {
            return Self::classify_streams_timed(streams, cfg);
        }
        let mut branches: Vec<(Pc, &OutcomeStream)> = streams.iter().collect();
        branches.sort_unstable_by_key(|&(pc, _)| pc);
        let chunk = branches.len().div_ceil(threads * 8).max(1);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let collected: std::sync::Mutex<(HashMap<Pc, BranchClassScores>, ClassifyPhases)> =
            std::sync::Mutex::new((
                HashMap::with_capacity(branches.len()),
                ClassifyPhases::default(),
            ));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut pas = PasScratch::new(cfg.pas_history_bits);
                    let mut phases = ClassifyPhases::default();
                    let mut local: Vec<(Pc, BranchClassScores)> = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                        if start >= branches.len() {
                            break;
                        }
                        let end = (start + chunk).min(branches.len());
                        for &(pc, stream) in &branches[start..end] {
                            local.push((pc, score_branch(stream, cfg, &mut pas, &mut phases)));
                        }
                    }
                    let mut guard = collected.lock().expect("classify worker poisoned");
                    guard.0.extend(local);
                    guard.1.sweep_seconds += phases.sweep_seconds;
                    guard.1.replay_seconds += phases.replay_seconds;
                });
            }
        });
        let (per_branch, phases) = collected.into_inner().expect("classify workers poisoned");
        (
            Classification::from_parts(per_branch, streams.dynamic_count()),
            phases,
        )
    }
}

/// Scores one branch's stream with every class predictor — the single
/// per-branch kernel behind both the serial and parallel entry points,
/// so they cannot drift.
fn score_branch(
    stream: &OutcomeStream,
    cfg: &ClassifierConfig,
    pas: &mut PasScratch,
    phases: &mut ClassifyPhases,
) -> BranchClassScores {
    assert!(
        (1..=64).contains(&cfg.max_period),
        "max fixed-pattern period must be 1..=64"
    );
    let executions = stream.len() as u64;
    let taken = stream.taken_count();
    let t0 = Instant::now();
    let (fixed_correct, best_period) = sweep_best(stream, cfg.max_period);
    let t1 = Instant::now();
    phases.sweep_seconds += (t1 - t0).as_secs_f64();
    let scores = BranchClassScores {
        executions,
        static_correct: taken.max(executions - taken),
        loop_correct: loop_replay(stream),
        fixed_correct,
        best_period,
        block_correct: block_replay(stream),
        pas_correct: pas.score(stream),
    };
    phases.replay_seconds += t1.elapsed().as_secs_f64();
    scores
}

/// Popcount of the first `m` bits of a packed stream.
fn popcount_prefix(words: &[u64], m: usize) -> u64 {
    let full = m / 64;
    let mut count: u64 = words[..full]
        .iter()
        .map(|w| u64::from(w.count_ones()))
        .sum();
    let rem = m % 64;
    if rem > 0 {
        count += u64::from((words[full] & (!0u64 >> (64 - rem))).count_ones());
    }
    count
}

/// Correct predictions of the k-ago predictor over one stream — exactly
/// [`bp_predictors::KthAgo::new`]`(k)` on that branch: the first
/// `min(k, n)` executions predict taken (insufficient history), every
/// later execution `e` is correct iff outcome `e` equals outcome `e - k`.
/// The agreement test is one XNOR per word against the stream shifted left
/// by `k` bits, masked to the valid range — O(n/64) per `k` with no
/// per-record state.
#[doc(hidden)]
pub fn kth_ago_correct(stream: &OutcomeStream, k: usize) -> u64 {
    let n = stream.len();
    let words = stream.words();
    let correct = popcount_prefix(words, k.min(n));
    if n <= k {
        return correct;
    }
    if crate::simd::use_avx2(words.len()) {
        return correct + crate::simd::kth_ago_body_avx2(words, n, k);
    }
    correct + kth_ago_body_scalar(words, n, k)
}

/// As [`kth_ago_correct`], forced onto the portable path — the reference
/// side of the conformance SIMD differential suite.
#[doc(hidden)]
pub fn kth_ago_correct_scalar(stream: &OutcomeStream, k: usize) -> u64 {
    let n = stream.len();
    let words = stream.words();
    let correct = popcount_prefix(words, k.min(n));
    if n <= k {
        return correct;
    }
    correct + kth_ago_body_scalar(words, n, k)
}

/// Agreement count over executions `[k, n)`: one XNOR + popcount per word.
pub(crate) fn kth_ago_body_scalar(words: &[u64], n: usize, k: usize) -> u64 {
    let mut correct = 0u64;
    let (q, r) = (k / 64, (k % 64) as u32);
    for i in q..=(n - 1) / 64 {
        let shifted = if r == 0 {
            words[i - q]
        } else {
            let carry = if i > q {
                words[i - q - 1] >> (64 - r)
            } else {
                0
            };
            (words[i - q] << r) | carry
        };
        // Valid executions of this word: global indices in [k, n).
        let base = i * 64;
        let mut mask = !0u64;
        if k > base {
            mask &= !0u64 << (k - base);
        }
        if n < base + 64 {
            mask &= !0u64 >> (64 - (n - base));
        }
        correct += u64::from((!(words[i] ^ shifted) & mask).count_ones());
    }
    correct
}

/// Best fixed-pattern score over k = 1..=`max_period`. Ties keep the
/// smallest k (ascending scan, strictly-greater wins); a branch no k-ago
/// predictor ever gets right reports `(0, 1)`.
fn sweep_best(stream: &OutcomeStream, max_period: u32) -> (u64, u32) {
    let mut best = 0u64;
    let mut best_k = 1u32;
    for k in 1..=max_period {
        let c = kth_ago_correct(stream, k as usize);
        if c > best {
            best = c;
            best_k = k;
        }
    }
    (best, best_k)
}

/// Replays [`bp_predictors::LoopPredictor`] over a stream's run-length
/// decomposition in O(1) per run.
///
/// The predictor's whole-run behavior collapses: riding a body run of
/// length `L` with a learned trip `n` costs one miss iff the exit was
/// expected strictly inside the run (`run ≤ n < run + L`); a completed
/// run stores its trip and mispredicts at most its first outcome; the
/// re-latch after a length-1 exit restarts the body. Each transition below
/// is the predictor's per-record state machine applied `L` times at once,
/// so the total equals per-record simulation exactly (property-tested
/// against `bp_core::reference::classify`).
fn loop_replay(stream: &OutcomeStream) -> u64 {
    let max_trip = u64::from(MAX_TRIP);
    let mut correct = 0u64;
    let mut started = false;
    // Mirrors `LoopState`: the latched body direction, current same-
    // direction run length (uncapped), learned trip, and overflow flag.
    let mut direction = false;
    let mut run = 0u64;
    let mut trip: Option<u64> = None;
    let mut overflowed = false;
    for (d, len) in stream.runs() {
        if !started {
            // First prediction is the static taken fallback; the rest of
            // the run rides the just-latched direction.
            started = true;
            correct += u64::from(d) + (len - 1);
            direction = d;
            run = len;
            overflowed = len > max_trip;
        } else if d == direction {
            // Body continues: one miss iff the learned trip expires
            // strictly inside this run (the predictor calls the exit and
            // the branch keeps going).
            let hit = matches!(trip, Some(n) if !overflowed && run <= n && n < run + len);
            correct += len - u64::from(hit);
            run += len;
            if run > max_trip {
                overflowed = true;
            }
        } else {
            // The first flip outcome is the exit: predicted iff the trip
            // was known, not overflowed, and expired exactly now.
            correct += u64::from(matches!(trip, Some(n) if !overflowed && run == n));
            if run == 0 {
                // Second consecutive non-body outcome: re-latch, and the
                // rest of this run rides the new direction.
                correct += len - 1;
                direction = d;
                run = len;
                trip = None;
                overflowed = len > max_trip;
            } else {
                trip = if overflowed { None } else { Some(run) };
                overflowed = false;
                if len == 1 {
                    run = 0;
                } else {
                    // A second flip outcome re-latches (missing once —
                    // run is 0 and the trip never matches 0); outcomes
                    // three onward ride the new body.
                    correct += len - 2;
                    direction = d;
                    run = len - 1;
                    trip = None;
                    overflowed = len - 1 > max_trip;
                }
            }
        }
    }
    correct
}

/// Replays [`bp_predictors::BlockPattern`] over a stream's run-length
/// decomposition in O(1) per run.
///
/// Between flips the state only counts: a whole run of length `L` after a
/// flip mispredicts its first outcome unless the completed run's length
/// matched the stored expectation, plus at most one mid-run miss where a
/// stale expectation (shorter than `L`) calls the flip early.
fn block_replay(stream: &OutcomeStream) -> u64 {
    // Mirrors `BlockState`, whose run counter saturates at MAX_TRIP + 1.
    let cap = u64::from(MAX_TRIP) + 1;
    let mut correct = 0u64;
    let mut started = false;
    let mut current = false;
    let mut run = 0u64;
    let mut taken_run: Option<u64> = None;
    let mut not_taken_run: Option<u64> = None;
    for (d, len) in stream.runs() {
        if !started {
            // Static taken fallback, then ride the run (no expectations
            // exist yet).
            started = true;
            correct += u64::from(d) + (len - 1);
            current = d;
            run = len.min(cap);
        } else if d == current {
            // Unreachable from maximal runs (adjacent runs alternate) but
            // kept exact: a stale expectation expiring inside the run
            // costs one miss.
            let expect = if current { taken_run } else { not_taken_run };
            let hit = matches!(expect, Some(n) if run <= n && n < run + len);
            correct += len - u64::from(hit);
            run = (run + len).min(cap);
        } else {
            // The flip itself is predicted iff the completed run's length
            // matched its stored expectation.
            let expect_old = if current { taken_run } else { not_taken_run };
            correct += u64::from(matches!(expect_old, Some(n) if run == n));
            let completed = (run <= u64::from(MAX_TRIP)).then_some(run);
            if current {
                taken_run = completed;
            } else {
                not_taken_run = completed;
            }
            // Riding the new run: one miss iff the other direction's
            // expectation expires before the run actually ends.
            let expect_new = if d { taken_run } else { not_taken_run };
            if len > 1 {
                correct += (len - 1) - u64::from(matches!(expect_new, Some(n) if n < len));
            }
            current = d;
            run = len.min(cap);
        }
    }
    correct
}

/// History lengths up to this many bits use dense counting-sort buckets
/// (two `2^bits`-entry u32 tables); longer histories fall back to a
/// hash-keyed per-record replay.
const DENSE_PAS_BITS: u32 = 16;

/// Reusable scratch for pattern-major interference-free PAs scoring.
///
/// Per branch, the rolling history pattern of every execution is computed
/// once, executions are counting-sorted into per-pattern buckets (dense
/// tables indexed by pattern, reset via the touched-pattern list), and
/// each bucket — whose counter no other pattern touches — is replayed as
/// uniform-outcome runs with [`SaturatingCounter::train_run`]. Within a
/// pattern the original execution order is preserved, so the counter sees
/// exactly the per-record training sequence.
struct PasScratch {
    history_bits: u32,
    /// Executions per pattern this branch (dense path); zeroed via
    /// `touched` after each branch.
    counts: Vec<u32>,
    /// Bucket write cursor, then bucket end offset, per pattern.
    cursor: Vec<u32>,
    /// Patterns seen for this branch, in first-use order.
    touched: Vec<u32>,
    /// Pattern of each execution, in trace order.
    patterns: Vec<u32>,
    /// Outcomes regrouped pattern-major.
    ordered: Vec<u8>,
}

impl PasScratch {
    fn new(history_bits: u32) -> Self {
        let slots = if history_bits <= DENSE_PAS_BITS {
            1usize << history_bits
        } else {
            0
        };
        PasScratch {
            history_bits,
            counts: vec![0; slots],
            cursor: vec![0; slots],
            touched: Vec::new(),
            patterns: Vec::new(),
            ordered: Vec::new(),
        }
    }

    /// Interference-free PAs correct count for one branch's stream —
    /// exactly [`bp_predictors::PasInterferenceFree`] on that branch
    /// (history starts at zero; counters initialize weakly taken and train
    /// on the pre-update history).
    fn score(&mut self, stream: &OutcomeStream) -> u64 {
        if self.history_bits > DENSE_PAS_BITS {
            return self.score_sparse(stream);
        }
        let n = stream.len();
        let words = stream.words();
        let mask = (1u32 << self.history_bits) - 1;
        self.patterns.clear();
        self.patterns.reserve(n);
        let mut h = 0u32;
        for e in 0..n {
            let bit = (words[e / 64] >> (e % 64)) & 1;
            if self.counts[h as usize] == 0 {
                self.touched.push(h);
            }
            self.counts[h as usize] += 1;
            self.patterns.push(h);
            h = ((h << 1) | bit as u32) & mask;
        }
        // Prefix-sum bucket starts in first-use order, scatter outcomes
        // pattern-major, then replay each bucket's runs.
        let mut running = 0u32;
        for &p in &self.touched {
            self.cursor[p as usize] = running;
            running += self.counts[p as usize];
        }
        self.ordered.clear();
        self.ordered.resize(n, 0);
        for e in 0..n {
            let bit = ((words[e / 64] >> (e % 64)) & 1) as u8;
            let slot = &mut self.cursor[self.patterns[e] as usize];
            self.ordered[*slot as usize] = bit;
            *slot += 1;
        }
        let mut correct = 0u64;
        for &p in &self.touched {
            let end = self.cursor[p as usize] as usize;
            let start = end - self.counts[p as usize] as usize;
            let mut counter = SaturatingCounter::two_bit();
            let mut i = start;
            while i < end {
                let v = self.ordered[i];
                let mut j = i + 1;
                while j < end && self.ordered[j] == v {
                    j += 1;
                }
                correct += counter.train_run((j - i) as u64, v == 1);
                i = j;
            }
        }
        for &p in &self.touched {
            self.counts[p as usize] = 0;
        }
        self.touched.clear();
        correct
    }

    /// Per-record fallback for history lengths too long to bucket densely
    /// (still branch-local, so no cross-branch interference either way).
    fn score_sparse(&self, stream: &OutcomeStream) -> u64 {
        let mask = (1u64 << self.history_bits) - 1;
        let mut counters: FxHashMap<u64, SaturatingCounter> = FxHashMap::default();
        let mut h = 0u64;
        let mut correct = 0u64;
        for e in 0..stream.len() {
            let taken = stream.get(e);
            let counter = counters.entry(h).or_insert_with(SaturatingCounter::two_bit);
            if counter.predict_taken() == taken {
                correct += 1;
            }
            counter.train(taken);
            h = ((h << 1) | u64::from(taken)) & mask;
        }
        correct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_predictors::{simulate_per_branch, KthAgo};
    use bp_trace::BranchRecord;

    fn classify(trace: &Trace) -> Classification {
        Classifier::classify(trace, &ClassifierConfig::default())
    }

    #[test]
    fn biased_branch_is_static_class() {
        // ~99% taken with *irregularly placed* not-takens (LFSR-driven):
        // no loop/block/pattern structure to exploit, so ideal static wins.
        let mut lfsr = 0xBEEFu16;
        let trace: Trace = (0..2000)
            .map(|_| {
                lfsr = (lfsr >> 1) ^ if lfsr & 1 != 0 { 0xB400 } else { 0 };
                BranchRecord::conditional(0x10, !lfsr.is_multiple_of(97))
            })
            .collect();
        let c = classify(&trace);
        assert_eq!(
            c.get(0x10).unwrap().class(),
            PaClass::IdealStatic,
            "scores {:?}",
            c.get(0x10).unwrap()
        );
        let dist = c.dynamic_distribution();
        assert!((dist[&PaClass::IdealStatic] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn long_loop_is_loop_class() {
        // Trip 40 beats the 12-bit PAs history; loop predictor is perfect.
        let mut recs = Vec::new();
        for _ in 0..50 {
            for _ in 0..40 {
                recs.push(BranchRecord::conditional(0x20, true));
            }
            recs.push(BranchRecord::conditional(0x20, false));
        }
        let c = classify(&Trace::from_records(recs));
        let s = c.get(0x20).unwrap();
        assert_eq!(s.class(), PaClass::Loop, "scores {s:?}");
        assert!(s.loop_correct > s.static_correct);
    }

    #[test]
    fn irregular_block_is_repeating_class() {
        // 37 taken / 23 not-taken blocks: period 60 exceeds the fixed-k
        // sweep (max 32), and the loop predictor only models single-exit
        // runs; the block predictor nails it.
        let mut recs = Vec::new();
        for _ in 0..40 {
            for _ in 0..37 {
                recs.push(BranchRecord::conditional(0x30, true));
            }
            for _ in 0..23 {
                recs.push(BranchRecord::conditional(0x30, false));
            }
        }
        let c = classify(&Trace::from_records(recs));
        let s = c.get(0x30).unwrap();
        assert_eq!(s.class(), PaClass::RepeatingPattern, "scores {s:?}");
        assert!(s.block_correct >= s.fixed_correct);
    }

    #[test]
    fn short_period_pattern_prefers_loop_by_tie_break_or_repeating() {
        // Period-5 pattern TTFTF: not a loop (two not-takens per period,
        // non-contiguous... TTFTF has isolated F's), fixed-5 is perfect.
        let pattern = [true, true, false, true, false];
        let mut recs = Vec::new();
        for _ in 0..200 {
            for &t in &pattern {
                recs.push(BranchRecord::conditional(0x40, t));
            }
        }
        let c = classify(&Trace::from_records(recs));
        let s = c.get(0x40).unwrap();
        assert_eq!(s.class(), PaClass::RepeatingPattern, "scores {s:?}");
        assert_eq!(s.best_period, 5);
    }

    #[test]
    fn data_dependent_history_pattern_is_nonrepeating() {
        // A maximal 6-bit Galois LFSR output stream: period 63, so no
        // k-ago predictor with k ≤ 32 matches, runs are short and
        // irregular (no loop/block shape), but every 12-bit history window
        // uniquely determines the next outcome and *recurs* — exactly the
        // history-predictable behavior PAs is premised on.
        let mut recs = Vec::new();
        let mut lfsr = 0x2Au8;
        for _ in 0..800 {
            let bit = lfsr & 1 != 0;
            lfsr >>= 1;
            if bit {
                lfsr ^= 0x30;
            }
            recs.push(BranchRecord::conditional(0x60, bit));
        }
        let trace = Trace::from_records(recs);
        let c = classify(&trace);
        let s = c.get(0x60).unwrap();
        assert_eq!(s.class(), PaClass::NonRepeatingPattern, "scores {s:?}");
    }

    #[test]
    fn distribution_sums_to_one() {
        let mut recs = Vec::new();
        for i in 0..300u64 {
            recs.push(BranchRecord::conditional(0x10, true)); // biased
            recs.push(BranchRecord::conditional(0x20, i % 8 != 7)); // loop
        }
        let c = classify(&Trace::from_records(recs));
        let dist = c.dynamic_distribution();
        let sum: f64 = dist.values().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bias_fraction_within_static_class() {
        // One >99%-biased branch, one 60%-biased branch that still lands in
        // the static class (random-ish outcomes defeat the class
        // predictors).
        let mut recs = Vec::new();
        let mut lfsr = 0x1D2Fu16;
        for i in 0..2000u64 {
            recs.push(BranchRecord::conditional(0x10, i % 1000 != 0));
            let bit = lfsr & 1 != 0;
            lfsr >>= 1;
            if bit {
                lfsr ^= 0xB400;
            }
            // 60%-ish biased noise: or together two pseudo-random bits.
            recs.push(BranchRecord::conditional(0x20, bit || (i % 5 == 0)));
        }
        let trace = Trace::from_records(recs);
        let profile = BranchProfile::of(&trace);
        let c = Classifier::classify(
            &trace,
            &ClassifierConfig {
                pas_history_bits: 4, // keep PAs weak so 0x20 stays static
                ..ClassifierConfig::default()
            },
        );
        let frac = c.static_class_bias_fraction(&profile, 0.99);
        assert!(frac > 0.0 && frac < 1.0, "fraction {frac}");
    }

    #[test]
    fn loop_stats_match_scores() {
        let trace: Trace = (0..200)
            .map(|i| BranchRecord::conditional(0x70, i % 6 != 5))
            .collect();
        let c = classify(&trace);
        let ls = c.loop_stats();
        assert_eq!(
            ls.get(0x70).unwrap().correct,
            c.get(0x70).unwrap().loop_correct
        );
        assert_eq!(ls.total().predictions, 200);
        let pa = c.best_per_address_stats();
        assert!(pa.get(0x70).unwrap().correct >= c.get(0x70).unwrap().loop_correct);
    }

    #[test]
    fn empty_trace_classifies_nothing() {
        let c = classify(&Trace::new());
        assert_eq!(c.iter().count(), 0);
        let dist = c.dynamic_distribution();
        assert_eq!(dist.values().sum::<f64>(), 0.0);
    }

    #[test]
    fn stream_entry_point_matches_trace_entry_point() {
        let mut recs = Vec::new();
        for i in 0..500u64 {
            recs.push(BranchRecord::conditional(0x10, i % 7 != 6));
            recs.push(BranchRecord::conditional(0x20, i % 3 == 0));
        }
        let trace = Trace::from_records(recs);
        let cfg = ClassifierConfig::default();
        let direct = Classifier::classify(&trace, &cfg);
        let streams = BranchStreams::of(&trace);
        let (via_streams, phases) = Classifier::classify_streams_timed(&streams, &cfg);
        for (pc, s) in direct.iter() {
            assert_eq!(via_streams.get(pc), Some(s), "{pc:#x}");
        }
        assert!(phases.sweep_seconds >= 0.0 && phases.replay_seconds >= 0.0);
    }

    #[test]
    fn parallel_kernel_is_identical_for_every_jobs_count() {
        let mut recs = Vec::new();
        let mut state = 0xabcd_1234u64;
        for i in 0..4000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pc = 0x100 + (i % 17) * 8;
            recs.push(BranchRecord::conditional(pc, (state >> 40) & 3 != 0));
        }
        let streams = BranchStreams::of(&Trace::from_records(recs));
        let cfg = ClassifierConfig::default();
        let (serial, _) = Classifier::classify_streams_timed(&streams, &cfg);
        for jobs in [1, 2, 7, 64] {
            let (par, phases) = Classifier::classify_streams_parallel(&streams, &cfg, jobs);
            assert_eq!(par.iter().count(), serial.iter().count(), "jobs {jobs}");
            for (pc, s) in serial.iter() {
                assert_eq!(par.get(pc), Some(s), "jobs {jobs} pc {pc:#x}");
            }
            assert!(phases.sweep_seconds >= 0.0 && phases.replay_seconds >= 0.0);
        }
    }

    /// Satellite regression: the k = max_period = 64 ring boundary. The
    /// old per-record sweep kept a 64-deep ring whose capacity exactly
    /// equals the largest legal period; the shifted-XNOR kernel must agree
    /// with a real `KthAgo(k)` simulation at every k up to that boundary,
    /// on a stream whose length is itself word-aligned.
    #[test]
    fn kth_ago_kernel_matches_simulated_predictor_through_k64() {
        // Period-64 pattern (so k = 64 is the only perfect period) whose
        // content has no shorter-shift self-correlation (k = 64 beats
        // every k < 64 by a wide margin), plus a second branch with a
        // non-aligned length; 256 executions lands runs on every word
        // boundary.
        let word = 0x2CEA_EE20_D811_CD0Du64;
        let pattern: Vec<bool> = (0..64).map(|i| (word >> i) & 1 == 1).collect();
        let mut recs = Vec::new();
        for rep in 0..4 {
            for &t in &pattern {
                recs.push(BranchRecord::conditional(0x10, t));
            }
            for j in 0..45u64 {
                recs.push(BranchRecord::conditional(0x20, (j + rep) % 9 < 4));
            }
        }
        let trace = Trace::from_records(recs);
        let streams = BranchStreams::of(&trace);
        for k in 1..=64u32 {
            let sim = simulate_per_branch(&mut KthAgo::new(k), &trace);
            for (pc, stream) in streams.iter() {
                assert_eq!(
                    kth_ago_correct(stream, k as usize),
                    sim.get(pc).map_or(0, |s| s.correct),
                    "k={k} pc={pc:#x}"
                );
            }
        }
        // And the sweep at max_period 64 finds the period-64 branch.
        let c = Classifier::classify(
            &trace,
            &ClassifierConfig {
                max_period: 64,
                ..ClassifierConfig::default()
            },
        );
        let s = c.get(0x10).unwrap();
        assert_eq!(s.best_period, 64, "scores {s:?}");
        // Perfect after the 64-execution warmup (which predicts taken).
        let warm_taken = pattern.iter().filter(|&&t| t).count() as u64;
        assert_eq!(s.fixed_correct, warm_taken + (256 - 64));
    }

    #[test]
    #[should_panic(expected = "max fixed-pattern period")]
    fn oversized_period_rejected() {
        let _ = Classifier::classify(
            &Trace::new(),
            &ClassifierConfig {
                max_period: 65,
                ..ClassifierConfig::default()
            },
        );
    }
}

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use bp_predictors::{
    simulate_per_branch, BlockPattern, LoopPredictor, PasInterferenceFree, PerBranchStats,
};
use bp_trace::{BranchProfile, Pc, Trace};

/// The per-address predictability classes of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PaClass {
    /// No class predictor beats predicting the branch's predominant
    /// direction (most such branches are >99% biased).
    IdealStatic,
    /// Loop-type: for-type (taken *n* then not-taken) or while-type
    /// (mirror), captured by the loop predictor (§4.1.1).
    Loop,
    /// Repeating pattern: fixed-length-*k* or block (*n* taken / *m*
    /// not-taken) patterns (§4.1.2).
    RepeatingPattern,
    /// Non-repeating pattern: predictable from specific prior outcomes —
    /// the premise of PAs (§4.1.3).
    NonRepeatingPattern,
}

impl PaClass {
    /// All classes, in the paper's figure 6 legend order.
    pub const ALL: [PaClass; 4] = [
        PaClass::IdealStatic,
        PaClass::Loop,
        PaClass::RepeatingPattern,
        PaClass::NonRepeatingPattern,
    ];

    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PaClass::IdealStatic => "Ideal Static",
            PaClass::Loop => "Loop",
            PaClass::RepeatingPattern => "Repeating Pattern",
            PaClass::NonRepeatingPattern => "Non-Repeating Pattern",
        }
    }
}

/// Configuration of the per-address classification.
///
/// `Hash`/`Eq` cover every field, so the config doubles as its own
/// memoization fingerprint in the evaluation-engine cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Largest fixed pattern length swept (the paper uses 32).
    pub max_period: u32,
    /// History length of the interference-free PAs class predictor.
    pub pas_history_bits: u32,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            max_period: 32,
            pas_history_bits: 12,
        }
    }
}

/// Per-branch class-predictor scores and the resulting class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchClassScores {
    /// Dynamic executions of the branch.
    pub executions: u64,
    /// Ideal-static correct count (majority direction all run).
    pub static_correct: u64,
    /// Loop predictor correct count.
    pub loop_correct: u64,
    /// Best fixed-length-pattern (k-ago) correct count over k = 1..=max.
    pub fixed_correct: u64,
    /// The k achieving `fixed_correct`.
    pub best_period: u32,
    /// Block-pattern predictor correct count.
    pub block_correct: u64,
    /// Interference-free PAs correct count.
    pub pas_correct: u64,
}

impl BranchClassScores {
    /// Repeating-pattern score: the better of the fixed-length sweep and
    /// the block predictor, as in §4.1.2.
    pub fn repeating_correct(&self) -> u64 {
        self.fixed_correct.max(self.block_correct)
    }

    /// Best correct count over every per-address class predictor (not
    /// counting ideal static).
    pub fn best_dynamic_correct(&self) -> u64 {
        self.loop_correct
            .max(self.repeating_correct())
            .max(self.pas_correct)
    }

    /// Assigns the class per §4.1: a branch predicted at least as well by
    /// ideal static belongs to no dynamic class; otherwise the class whose
    /// predictor scored highest wins, with ties resolved in the order loop,
    /// repeating, non-repeating (the more specific behavior wins — a loop
    /// is also a repeating pattern and a history-predictable pattern).
    pub fn class(&self) -> PaClass {
        let best = self.best_dynamic_correct();
        if self.static_correct >= best {
            PaClass::IdealStatic
        } else if self.loop_correct == best {
            PaClass::Loop
        } else if self.repeating_correct() == best {
            PaClass::RepeatingPattern
        } else {
            PaClass::NonRepeatingPattern
        }
    }
}

/// Result of classifying every branch of a trace.
#[derive(Debug, Clone, Default)]
pub struct Classification {
    per_branch: HashMap<Pc, BranchClassScores>,
    total_dynamic: u64,
}

impl Classification {
    /// Scores for one branch, if it executed.
    pub fn get(&self, pc: Pc) -> Option<&BranchClassScores> {
        self.per_branch.get(&pc)
    }

    /// Iterates `(pc, scores)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &BranchClassScores)> {
        self.per_branch.iter().map(|(pc, s)| (*pc, s))
    }

    /// Fraction of *dynamic* branches in each class (the paper's figure 6
    /// weighting); sums to 1 for a non-empty trace.
    pub fn dynamic_distribution(&self) -> HashMap<PaClass, f64> {
        let mut weights: HashMap<PaClass, u64> = HashMap::new();
        for scores in self.per_branch.values() {
            *weights.entry(scores.class()).or_insert(0) += scores.executions;
        }
        PaClass::ALL
            .iter()
            .map(|&class| {
                let w = weights.get(&class).copied().unwrap_or(0);
                let f = if self.total_dynamic == 0 {
                    0.0
                } else {
                    w as f64 / self.total_dynamic as f64
                };
                (class, f)
            })
            .collect()
    }

    /// Of the dynamic branches classified [`PaClass::IdealStatic`], the
    /// fraction whose static branch is biased above `threshold` — the
    /// paper's "88% of these branches are more than 99% biased" statistic.
    pub fn static_class_bias_fraction(&self, profile: &BranchProfile, threshold: f64) -> f64 {
        let mut static_weight = 0u64;
        let mut biased_weight = 0u64;
        for (pc, scores) in self.iter() {
            if scores.class() == PaClass::IdealStatic {
                static_weight += scores.executions;
                if profile.get(pc).is_some_and(|e| e.bias() > threshold) {
                    biased_weight += scores.executions;
                }
            }
        }
        if static_weight == 0 {
            0.0
        } else {
            biased_weight as f64 / static_weight as f64
        }
    }

    /// Per-branch stats of the loop predictor run used for classification —
    /// reused by the Table 3 "PAs w/ Loop" construction.
    pub fn loop_stats(&self) -> PerBranchStats {
        self.per_branch
            .iter()
            .map(|(pc, s)| {
                (
                    *pc,
                    bp_predictors::PredictionStats {
                        predictions: s.executions,
                        correct: s.loop_correct,
                    },
                )
            })
            .collect()
    }

    /// Per-branch stats of the best per-address class predictor for each
    /// branch (loop / repeating / non-repeating, whichever scored highest)
    /// — the "per-address" contender in figure 8.
    pub fn best_per_address_stats(&self) -> PerBranchStats {
        self.per_branch
            .iter()
            .map(|(pc, s)| {
                (
                    *pc,
                    bp_predictors::PredictionStats {
                        predictions: s.executions,
                        correct: s.best_dynamic_correct(),
                    },
                )
            })
            .collect()
    }
}

/// Runs the §4 per-address classification over a trace.
///
/// # Example
///
/// ```
/// use bp_core::{Classifier, ClassifierConfig, PaClass};
/// use bp_trace::{BranchRecord, Trace};
///
/// // A trip-40 loop: too long for PAs history, trivial for the loop
/// // predictor — so it classifies as loop-type.
/// let trace: Trace = (0..2000)
///     .map(|i| BranchRecord::conditional(0x10, i % 41 != 40))
///     .collect();
/// let c = Classifier::classify(&trace, &ClassifierConfig::default());
/// assert_eq!(c.get(0x10).unwrap().class(), PaClass::Loop);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Classifier;

impl Classifier {
    /// Scores every branch with each class predictor and assigns classes.
    pub fn classify(trace: &Trace, cfg: &ClassifierConfig) -> Classification {
        assert!(
            (1..=64).contains(&cfg.max_period),
            "max fixed-pattern period must be 1..=64"
        );
        let profile = BranchProfile::of(trace);
        let loop_stats = simulate_per_branch(&mut LoopPredictor::new(), trace);
        let block_stats = simulate_per_branch(&mut BlockPattern::new(), trace);
        let pas_stats =
            simulate_per_branch(&mut PasInterferenceFree::new(cfg.pas_history_bits), trace);
        let fixed = sweep_fixed_patterns(trace, cfg.max_period);

        let per_branch = profile
            .iter()
            .map(|(pc, entry)| {
                let (fixed_correct, best_period) = fixed.get(&pc).map_or((0, 1), |f| f.best());
                let scores = BranchClassScores {
                    executions: entry.executions,
                    static_correct: entry.ideal_static_correct(),
                    loop_correct: loop_stats.get(pc).map_or(0, |s| s.correct),
                    fixed_correct,
                    best_period,
                    block_correct: block_stats.get(pc).map_or(0, |s| s.correct),
                    pas_correct: pas_stats.get(pc).map_or(0, |s| s.correct),
                };
                (pc, scores)
            })
            .collect();
        Classification {
            per_branch,
            total_dynamic: profile.dynamic_count(),
        }
    }
}

#[derive(Debug, Clone)]
struct FixedSweep {
    /// correct[k-1] = correct predictions of the k-ago predictor.
    correct: Vec<u64>,
}

impl FixedSweep {
    fn best(&self) -> (u64, u32) {
        let mut best = 0u64;
        let mut best_k = 1u32;
        for (i, &c) in self.correct.iter().enumerate() {
            if c > best {
                best = c;
                best_k = i as u32 + 1;
            }
        }
        (best, best_k)
    }
}

/// Evaluates all k-ago predictors (k = 1..=max) for every branch in one
/// trace pass, using a per-branch outcome ring. Insufficient history
/// predicts taken, matching [`bp_predictors::KthAgo`].
fn sweep_fixed_patterns(trace: &Trace, max_period: u32) -> HashMap<Pc, FixedSweep> {
    struct Ring {
        bits: u64,
        len: u32,
    }
    let mut rings: HashMap<Pc, (Ring, FixedSweep)> = HashMap::new();
    for rec in trace.conditionals() {
        let (ring, sweep) = rings.entry(rec.pc).or_insert_with(|| {
            (
                Ring { bits: 0, len: 0 },
                FixedSweep {
                    correct: vec![0; max_period as usize],
                },
            )
        });
        for k in 1..=max_period {
            let pred = if ring.len >= k {
                (ring.bits >> (k - 1)) & 1 == 1
            } else {
                true
            };
            if pred == rec.taken {
                sweep.correct[(k - 1) as usize] += 1;
            }
        }
        ring.bits = (ring.bits << 1) | u64::from(rec.taken);
        if ring.len < 64 {
            ring.len += 1;
        }
    }
    rings.into_iter().map(|(pc, (_, s))| (pc, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::BranchRecord;

    fn classify(trace: &Trace) -> Classification {
        Classifier::classify(trace, &ClassifierConfig::default())
    }

    #[test]
    fn biased_branch_is_static_class() {
        // ~99% taken with *irregularly placed* not-takens (LFSR-driven):
        // no loop/block/pattern structure to exploit, so ideal static wins.
        let mut lfsr = 0xBEEFu16;
        let trace: Trace = (0..2000)
            .map(|_| {
                lfsr = (lfsr >> 1) ^ if lfsr & 1 != 0 { 0xB400 } else { 0 };
                BranchRecord::conditional(0x10, !lfsr.is_multiple_of(97))
            })
            .collect();
        let c = classify(&trace);
        assert_eq!(
            c.get(0x10).unwrap().class(),
            PaClass::IdealStatic,
            "scores {:?}",
            c.get(0x10).unwrap()
        );
        let dist = c.dynamic_distribution();
        assert!((dist[&PaClass::IdealStatic] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn long_loop_is_loop_class() {
        // Trip 40 beats the 12-bit PAs history; loop predictor is perfect.
        let mut recs = Vec::new();
        for _ in 0..50 {
            for _ in 0..40 {
                recs.push(BranchRecord::conditional(0x20, true));
            }
            recs.push(BranchRecord::conditional(0x20, false));
        }
        let c = classify(&Trace::from_records(recs));
        let s = c.get(0x20).unwrap();
        assert_eq!(s.class(), PaClass::Loop, "scores {s:?}");
        assert!(s.loop_correct > s.static_correct);
    }

    #[test]
    fn irregular_block_is_repeating_class() {
        // 37 taken / 23 not-taken blocks: period 60 exceeds the fixed-k
        // sweep (max 32), and the loop predictor only models single-exit
        // runs; the block predictor nails it.
        let mut recs = Vec::new();
        for _ in 0..40 {
            for _ in 0..37 {
                recs.push(BranchRecord::conditional(0x30, true));
            }
            for _ in 0..23 {
                recs.push(BranchRecord::conditional(0x30, false));
            }
        }
        let c = classify(&Trace::from_records(recs));
        let s = c.get(0x30).unwrap();
        assert_eq!(s.class(), PaClass::RepeatingPattern, "scores {s:?}");
        assert!(s.block_correct >= s.fixed_correct);
    }

    #[test]
    fn short_period_pattern_prefers_loop_by_tie_break_or_repeating() {
        // Period-5 pattern TTFTF: not a loop (two not-takens per period,
        // non-contiguous... TTFTF has isolated F's), fixed-5 is perfect.
        let pattern = [true, true, false, true, false];
        let mut recs = Vec::new();
        for _ in 0..200 {
            for &t in &pattern {
                recs.push(BranchRecord::conditional(0x40, t));
            }
        }
        let c = classify(&Trace::from_records(recs));
        let s = c.get(0x40).unwrap();
        assert_eq!(s.class(), PaClass::RepeatingPattern, "scores {s:?}");
        assert_eq!(s.best_period, 5);
    }

    #[test]
    fn data_dependent_history_pattern_is_nonrepeating() {
        // A maximal 6-bit Galois LFSR output stream: period 63, so no
        // k-ago predictor with k ≤ 32 matches, runs are short and
        // irregular (no loop/block shape), but every 12-bit history window
        // uniquely determines the next outcome and *recurs* — exactly the
        // history-predictable behavior PAs is premised on.
        let mut recs = Vec::new();
        let mut lfsr = 0x2Au8;
        for _ in 0..800 {
            let bit = lfsr & 1 != 0;
            lfsr >>= 1;
            if bit {
                lfsr ^= 0x30;
            }
            recs.push(BranchRecord::conditional(0x60, bit));
        }
        let trace = Trace::from_records(recs);
        let c = classify(&trace);
        let s = c.get(0x60).unwrap();
        assert_eq!(s.class(), PaClass::NonRepeatingPattern, "scores {s:?}");
    }

    #[test]
    fn distribution_sums_to_one() {
        let mut recs = Vec::new();
        for i in 0..300u64 {
            recs.push(BranchRecord::conditional(0x10, true)); // biased
            recs.push(BranchRecord::conditional(0x20, i % 8 != 7)); // loop
        }
        let c = classify(&Trace::from_records(recs));
        let dist = c.dynamic_distribution();
        let sum: f64 = dist.values().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bias_fraction_within_static_class() {
        // One >99%-biased branch, one 60%-biased branch that still lands in
        // the static class (random-ish outcomes defeat the class
        // predictors).
        let mut recs = Vec::new();
        let mut lfsr = 0x1D2Fu16;
        for i in 0..2000u64 {
            recs.push(BranchRecord::conditional(0x10, i % 1000 != 0));
            let bit = lfsr & 1 != 0;
            lfsr >>= 1;
            if bit {
                lfsr ^= 0xB400;
            }
            // 60%-ish biased noise: or together two pseudo-random bits.
            recs.push(BranchRecord::conditional(0x20, bit || (i % 5 == 0)));
        }
        let trace = Trace::from_records(recs);
        let profile = BranchProfile::of(&trace);
        let c = Classifier::classify(
            &trace,
            &ClassifierConfig {
                pas_history_bits: 4, // keep PAs weak so 0x20 stays static
                ..ClassifierConfig::default()
            },
        );
        let frac = c.static_class_bias_fraction(&profile, 0.99);
        assert!(frac > 0.0 && frac < 1.0, "fraction {frac}");
    }

    #[test]
    fn loop_stats_match_scores() {
        let trace: Trace = (0..200)
            .map(|i| BranchRecord::conditional(0x70, i % 6 != 5))
            .collect();
        let c = classify(&trace);
        let ls = c.loop_stats();
        assert_eq!(
            ls.get(0x70).unwrap().correct,
            c.get(0x70).unwrap().loop_correct
        );
        assert_eq!(ls.total().predictions, 200);
        let pa = c.best_per_address_stats();
        assert!(pa.get(0x70).unwrap().correct >= c.get(0x70).unwrap().loop_correct);
    }

    #[test]
    fn empty_trace_classifies_nothing() {
        let c = classify(&Trace::new());
        assert_eq!(c.iter().count(), 0);
        let dist = c.dynamic_distribution();
        assert_eq!(dist.values().sum::<f64>(), 0.0);
    }
}

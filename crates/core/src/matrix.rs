use bp_trace::fx::FxHashMap;
use bp_trace::io::TraceIoError;
use bp_trace::{
    scan_sharded, shard_of, InstanceTag, PathWindow, Pc, TagOutcome, Trace, TraceSource, Words,
};

use crate::candidates::TagCandidates;

/// For one static branch: the ternary outcome of every candidate tag at
/// every dynamic execution, stored as packed bit-planes.
///
/// Each candidate column holds two `u64` planes over the branch's
/// executions — an **in-path** plane (bit set when the tag resolved inside
/// the window) and a **direction** plane (bit set when that resolved
/// instance was taken; always a subset of the in-path plane). The branch's
/// own outcomes are a third plane. The ternary digit of §3.4
/// (0 = taken, 1 = not-taken, 2 = not-in-path) is recovered from the two
/// column planes, and the oracle scoring kernel consumes whole 64-execution
/// words of them at a time (see `oracle.rs`), which is why the planes —
/// not a byte-per-digit array — are the storage of record. Selective-
/// history tag sets are scored by replaying these planes through small
/// counter tables; no further trace passes are needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchMatrix {
    tags: Vec<InstanceTag>,
    executions: usize,
    /// One in-path plane per candidate column, `words()` u64s each.
    /// Planes are [`Words`] — owned while building, zero-copy views when
    /// re-opened from a `.bps` artifact; the kernels only see `&[u64]`.
    inpath: Vec<Words>,
    /// One direction plane per candidate column; `dir[c] ⊆ inpath[c]`.
    dir: Vec<Words>,
    /// The branch's own outcome plane.
    taken: Words,
}

#[inline]
fn get_bit(plane: &[u64], i: usize) -> bool {
    plane[i / 64] >> (i % 64) & 1 == 1
}

#[inline]
fn set_bit(plane: &mut [u64], i: usize) {
    plane[i / 64] |= 1u64 << (i % 64);
}

impl BranchMatrix {
    /// An empty matrix for `tags` columns, ready for
    /// [`BranchMatrix::push_execution`] calls.
    pub(crate) fn with_tags(tags: Vec<InstanceTag>) -> Self {
        let columns = tags.len();
        BranchMatrix {
            tags,
            executions: 0,
            inpath: vec![Words::default(); columns],
            dir: vec![Words::default(); columns],
            taken: Words::default(),
        }
    }

    /// Assembles a matrix directly from pre-packed planes (the sweep
    /// artifact's materialization path).
    ///
    /// Each column's planes must hold `executions.div_ceil(64)` words, with
    /// `dir` a subset of `inpath` and no bits set at or beyond
    /// `executions`.
    pub(crate) fn from_planes(
        tags: Vec<InstanceTag>,
        executions: usize,
        inpath: Vec<Vec<u64>>,
        dir: Vec<Vec<u64>>,
        taken: Vec<u64>,
    ) -> Self {
        let words = executions.div_ceil(64);
        debug_assert_eq!(inpath.len(), tags.len());
        debug_assert_eq!(dir.len(), tags.len());
        debug_assert_eq!(taken.len(), words);
        debug_assert!(inpath.iter().all(|p| p.len() == words));
        debug_assert!(inpath
            .iter()
            .zip(&dir)
            .all(|(ip, d)| ip.iter().zip(d.iter()).all(|(ip, d)| d & !ip == 0)));
        BranchMatrix {
            tags,
            executions,
            inpath: inpath.into_iter().map(Words::owned).collect(),
            dir: dir.into_iter().map(Words::owned).collect(),
            taken: Words::owned(taken),
        }
    }

    /// As [`BranchMatrix::from_planes`] but over [`Words`] directly — the
    /// `.bps` re-open path, whose planes are views into the mapped file.
    /// The store has already validated plane extents and padding bits.
    pub(crate) fn from_words(
        tags: Vec<InstanceTag>,
        executions: usize,
        inpath: Vec<Words>,
        dir: Vec<Words>,
        taken: Words,
    ) -> Self {
        let words = executions.div_ceil(64);
        debug_assert_eq!(inpath.len(), tags.len());
        debug_assert_eq!(dir.len(), tags.len());
        debug_assert_eq!(taken.len(), words);
        debug_assert!(inpath.iter().all(|p| p.len() == words));
        BranchMatrix {
            tags,
            executions,
            inpath,
            dir,
            taken,
        }
    }

    /// Appends one execution: the branch outcome plus the resolved tag
    /// outcomes, as `(column, taken)` pairs for the candidates that were in
    /// the path (every other column records not-in-path).
    pub(crate) fn push_execution(
        &mut self,
        taken: bool,
        in_path: impl Iterator<Item = (usize, bool)>,
    ) {
        let e = self.executions;
        self.executions += 1;
        if e.is_multiple_of(64) {
            self.taken.vec_mut().push(0);
            for plane in self.inpath.iter_mut().chain(self.dir.iter_mut()) {
                plane.vec_mut().push(0);
            }
        }
        if taken {
            set_bit(self.taken.vec_mut(), e);
        }
        for (c, tag_taken) in in_path {
            set_bit(self.inpath[c].vec_mut(), e);
            if tag_taken {
                set_bit(self.dir[c].vec_mut(), e);
            }
        }
    }

    /// The candidate tags (columns), most-visible first.
    pub fn tags(&self) -> &[InstanceTag] {
        &self.tags
    }

    /// Number of dynamic executions (rows).
    pub fn executions(&self) -> usize {
        self.executions
    }

    /// Words per plane (`executions` packed 64 to a `u64`, rounded up).
    #[inline]
    pub fn words(&self) -> usize {
        self.executions.div_ceil(64)
    }

    /// The branch outcome at execution `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn taken(&self, e: usize) -> bool {
        assert!(e < self.executions, "execution out of range");
        get_bit(&self.taken, e)
    }

    /// The branch's outcome plane, one bit per execution.
    #[inline]
    pub fn taken_plane(&self) -> &[u64] {
        &self.taken
    }

    /// Column `c`'s in-path plane: bit `e` set when the tag resolved inside
    /// the window at execution `e`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[inline]
    pub fn inpath_plane(&self, c: usize) -> &[u64] {
        assert!(c < self.tags.len(), "candidate column out of range");
        &self.inpath[c]
    }

    /// Column `c`'s direction plane: bit `e` set when the resolved instance
    /// was taken (a subset of [`BranchMatrix::inpath_plane`]).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[inline]
    pub fn dir_plane(&self, c: usize) -> &[u64] {
        assert!(c < self.tags.len(), "candidate column out of range");
        &self.dir[c]
    }

    /// The tag outcome of candidate column `c` at execution `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` or `c` is out of range.
    pub fn outcome(&self, e: usize, c: usize) -> TagOutcome {
        assert!(e < self.executions, "execution out of range");
        if !get_bit(self.inpath_plane(c), e) {
            TagOutcome::NotInPath
        } else if get_bit(self.dir_plane(c), e) {
            TagOutcome::Taken
        } else {
            TagOutcome::NotTaken
        }
    }
}

/// Candidate tag outcomes for every static branch of a trace, computed in a
/// single streaming pass.
///
/// This is the workhorse behind the oracle selective-history analysis
/// (§3.4): one pass over the trace with a [`PathWindow`] resolves, for every
/// dynamic branch, the taken / not-taken / not-in-path status of each of its
/// candidate correlated instances. All subsequent subset-search passes run
/// over this compact matrix instead of the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutcomeMatrix {
    branches: FxHashMap<Pc, BranchMatrix>,
    window: usize,
}

impl OutcomeMatrix {
    /// Builds the matrix for `trace` using `candidates` and a path window
    /// of `window` branches (use the same window length the candidates were
    /// collected with).
    pub fn build(trace: &Trace, candidates: &TagCandidates, window: usize) -> Self {
        OutcomeMatrix::build_from_source(trace, candidates, window)
            .expect("in-memory traces cannot fail to scan")
    }

    /// As [`OutcomeMatrix::build`], consuming any [`TraceSource`] in one
    /// streaming scan. Working memory is the packed planes themselves (~2
    /// bits per candidate per execution); the raw records never accumulate.
    ///
    /// # Errors
    ///
    /// Propagates the source's scan error.
    pub fn build_from_source<T: TraceSource + ?Sized>(
        source: &T,
        candidates: &TagCandidates,
        window: usize,
    ) -> Result<Self, TraceIoError> {
        let mut builders: FxHashMap<Pc, (BranchMatrix, FxHashMap<InstanceTag, usize>)> = candidates
            .iter()
            .map(|(pc, tags)| {
                let columns: FxHashMap<InstanceTag, usize> =
                    tags.iter().enumerate().map(|(c, tag)| (*tag, c)).collect();
                (pc, (BranchMatrix::with_tags(tags.to_vec()), columns))
            })
            .collect();

        let mut path = PathWindow::new(window);
        let mut visible = Vec::new();
        source.scan(&mut |chunk| {
            for rec in chunk {
                if rec.is_conditional() {
                    if let Some((bm, columns)) = builders.get_mut(&rec.pc) {
                        path.visible_tags(&mut visible);
                        bm.push_execution(
                            rec.taken,
                            visible
                                .iter()
                                .filter_map(|(tag, taken)| columns.get(tag).map(|&c| (c, *taken))),
                        );
                    }
                }
                path.push(rec);
            }
        })?;
        Ok(OutcomeMatrix {
            branches: builders.into_iter().map(|(pc, (bm, _))| (pc, bm)).collect(),
            window,
        })
    }

    /// As [`OutcomeMatrix::build_from_source`], built with the pipelined
    /// chunk executor: one scan, `shards` workers each replicating the
    /// [`PathWindow`] over the full record sequence but packing planes
    /// only for the branches their shard owns. The per-branch loop is the
    /// serial one verbatim, and the partial maps are disjoint by PC, so
    /// the merged matrix is identical for every shard count.
    ///
    /// # Errors
    ///
    /// Propagates the source's scan error.
    pub fn build_from_source_sharded<T: TraceSource + Sync + ?Sized>(
        source: &T,
        candidates: &TagCandidates,
        window: usize,
        shards: usize,
    ) -> Result<Self, TraceIoError> {
        let shards = shards.max(1);
        let parts = scan_sharded(source, shards, |shard, chunks| {
            let mut builders: FxHashMap<Pc, (BranchMatrix, FxHashMap<InstanceTag, usize>)> =
                candidates
                    .iter()
                    .filter(|&(pc, _)| shard_of(pc, shards) == shard)
                    .map(|(pc, tags)| {
                        let columns: FxHashMap<InstanceTag, usize> =
                            tags.iter().enumerate().map(|(c, tag)| (*tag, c)).collect();
                        (pc, (BranchMatrix::with_tags(tags.to_vec()), columns))
                    })
                    .collect();
            let mut path = PathWindow::new(window);
            let mut visible = Vec::new();
            for chunk in chunks {
                for rec in chunk.iter() {
                    if rec.is_conditional() {
                        if let Some((bm, columns)) = builders.get_mut(&rec.pc) {
                            path.visible_tags(&mut visible);
                            bm.push_execution(
                                rec.taken,
                                visible.iter().filter_map(|(tag, taken)| {
                                    columns.get(tag).map(|&c| (c, *taken))
                                }),
                            );
                        }
                    }
                    path.push(rec);
                }
            }
            builders
        })?;
        let mut branches: FxHashMap<Pc, BranchMatrix> = FxHashMap::default();
        for part in parts {
            branches.extend(part.into_iter().map(|(pc, (bm, _))| (pc, bm)));
        }
        Ok(OutcomeMatrix { branches, window })
    }

    /// Assembles a matrix from per-branch parts (the sweep artifact's
    /// materialization path and the `.bps` re-open path).
    pub(crate) fn from_parts(branches: FxHashMap<Pc, BranchMatrix>, window: usize) -> Self {
        OutcomeMatrix { branches, window }
    }

    /// The window length the matrix was built with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The matrix of one branch, if it executed.
    pub fn branch(&self, pc: Pc) -> Option<&BranchMatrix> {
        self.branches.get(&pc)
    }

    /// Iterates `(pc, matrix)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &BranchMatrix)> {
        self.branches.iter().map(|(pc, m)| (*pc, m))
    }

    /// Number of static branches covered.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Total dynamic executions covered (sum of rows over all branches).
    pub fn dynamic_count(&self) -> u64 {
        self.branches.values().map(|m| m.executions() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::BranchRecord;

    /// 0x200 copies 0x100's outcome exactly.
    fn copy_trace(n: usize) -> Trace {
        let mut recs = Vec::new();
        for i in 0..n {
            let dir = i % 3 == 0;
            recs.push(BranchRecord::conditional(0x100, dir));
            recs.push(BranchRecord::conditional(0x200, dir));
        }
        Trace::from_records(recs)
    }

    #[test]
    fn matrix_shape_matches_trace() {
        let trace = copy_trace(20);
        let cands = TagCandidates::collect(&trace, 8, 16);
        let m = OutcomeMatrix::build(&trace, &cands, 8);
        assert_eq!(m.branch_count(), 2);
        assert_eq!(m.dynamic_count(), 40);
        assert_eq!(m.window(), 8);
        let bm = m.branch(0x200).unwrap();
        assert_eq!(bm.executions(), 20);
        assert_eq!(bm.tags().len(), cands.tags(0x200).len());
        assert_eq!(bm.words(), 1);
        assert_eq!(bm.taken_plane().len(), 1);
    }

    #[test]
    fn perfect_correlation_visible_in_matrix() {
        let trace = copy_trace(30);
        let cands = TagCandidates::collect(&trace, 8, 16);
        let m = OutcomeMatrix::build(&trace, &cands, 8);
        let bm = m.branch(0x200).unwrap();
        let col = bm
            .tags()
            .iter()
            .position(|t| *t == InstanceTag::occurrence(0x100, 0))
            .expect("most recent 0x100 must be a candidate");
        for e in 0..bm.executions() {
            let tag_outcome = bm.outcome(e, col);
            let expect = TagOutcome::from_taken(bm.taken(e));
            assert_eq!(tag_outcome, expect, "execution {e}");
        }
        // A perfectly correlated column's planes coincide with the outcome
        // plane: always in path, direction equals the branch outcome.
        assert_eq!(bm.dir_plane(col), bm.taken_plane());
        let tail = bm.executions() % 64;
        let full = if tail == 0 { !0u64 } else { (1u64 << tail) - 1 };
        assert_eq!(bm.inpath_plane(col), &[full]);
    }

    #[test]
    fn sharded_build_is_identical_for_every_shard_count() {
        let trace = copy_trace(300);
        let cands = TagCandidates::collect(&trace, 8, 16);
        let serial = OutcomeMatrix::build(&trace, &cands, 8);
        for shards in [1, 2, 7, 64] {
            let sharded = OutcomeMatrix::build_from_source_sharded(&trace, &cands, 8, shards)
                .expect("in-memory scan");
            assert_eq!(sharded, serial, "{shards} shards");
        }
    }

    #[test]
    fn early_executions_report_not_in_path() {
        let trace = copy_trace(5);
        let cands = TagCandidates::collect(&trace, 8, 16);
        let m = OutcomeMatrix::build(&trace, &cands, 8);
        let bm = m.branch(0x100).unwrap();
        // The very first execution of 0x100 has an empty window: every
        // candidate must be not-in-path.
        for c in 0..bm.tags().len() {
            assert_eq!(bm.outcome(0, c), TagOutcome::NotInPath);
            assert_eq!(bm.inpath_plane(c)[0] & 1, 0);
        }
    }

    #[test]
    fn planes_span_word_boundaries() {
        let trace = copy_trace(100); // 100 executions -> 2 words per plane
        let cands = TagCandidates::collect(&trace, 8, 16);
        let m = OutcomeMatrix::build(&trace, &cands, 8);
        let bm = m.branch(0x200).unwrap();
        assert_eq!(bm.words(), 2);
        for c in 0..bm.tags().len() {
            assert_eq!(bm.inpath_plane(c).len(), 2);
            // dir is a subset of inpath everywhere.
            for w in 0..2 {
                assert_eq!(bm.dir_plane(c)[w] & !bm.inpath_plane(c)[w], 0);
            }
        }
        // Bits past 64 land in the second word and read back correctly.
        for e in [63, 64, 65, 99] {
            assert_eq!(bm.taken(e), e % 3 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn column_out_of_range_panics() {
        let trace = copy_trace(3);
        let cands = TagCandidates::collect(&trace, 8, 2);
        let m = OutcomeMatrix::build(&trace, &cands, 8);
        let bm = m.branch(0x200).unwrap();
        let _ = bm.outcome(0, 99);
    }
}

use bp_trace::fx::FxHashMap;
use bp_trace::{InstanceTag, PathWindow, Pc, TagOutcome, Trace};

use crate::candidates::TagCandidates;

/// For one static branch: the ternary outcome of every candidate tag at
/// every dynamic execution, packed flat.
///
/// Row *e* (execution *e* of the branch) holds one [`TagOutcome`] digit per
/// candidate; the branch's own outcome is in `taken[e]`. Selective-history
/// tag sets are scored by replaying these rows through small counter tables
/// — no further trace passes needed.
#[derive(Debug, Clone)]
pub struct BranchMatrix {
    tags: Vec<InstanceTag>,
    /// `executions × tags.len()` outcome digits (0 = taken, 1 = not-taken,
    /// 2 = not-in-path).
    digits: Vec<u8>,
    taken: Vec<bool>,
}

impl BranchMatrix {
    /// The candidate tags (columns), most-visible first.
    pub fn tags(&self) -> &[InstanceTag] {
        &self.tags
    }

    /// Number of dynamic executions (rows).
    pub fn executions(&self) -> usize {
        self.taken.len()
    }

    /// The branch outcome at execution `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn taken(&self, e: usize) -> bool {
        self.taken[e]
    }

    /// The tag outcome of candidate column `c` at execution `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` or `c` is out of range.
    pub fn outcome(&self, e: usize, c: usize) -> TagOutcome {
        assert!(c < self.tags.len(), "candidate column out of range");
        TagOutcome::from_digit(self.digits[e * self.tags.len() + c] as usize)
    }

    /// Raw digit row for execution `e` (one digit per candidate column).
    #[inline]
    pub fn row(&self, e: usize) -> &[u8] {
        let w = self.tags.len();
        &self.digits[e * w..(e + 1) * w]
    }

    /// The branch's outcome at every execution, as one flat slice.
    #[inline]
    pub fn outcomes(&self) -> &[bool] {
        &self.taken
    }
}

/// Candidate tag outcomes for every static branch of a trace, computed in a
/// single streaming pass.
///
/// This is the workhorse behind the oracle selective-history analysis
/// (§3.4): one pass over the trace with a [`PathWindow`] resolves, for every
/// dynamic branch, the taken / not-taken / not-in-path status of each of its
/// candidate correlated instances. All subsequent subset-search passes run
/// over this compact matrix instead of the trace.
#[derive(Debug, Clone)]
pub struct OutcomeMatrix {
    branches: FxHashMap<Pc, BranchMatrix>,
    window: usize,
}

impl OutcomeMatrix {
    /// Builds the matrix for `trace` using `candidates` and a path window
    /// of `window` branches (use the same window length the candidates were
    /// collected with).
    pub fn build(trace: &Trace, candidates: &TagCandidates, window: usize) -> Self {
        let mut builders: FxHashMap<Pc, BranchMatrix> = candidates
            .iter()
            .map(|(pc, tags)| {
                (
                    pc,
                    BranchMatrix {
                        tags: tags.to_vec(),
                        digits: Vec::new(),
                        taken: Vec::new(),
                    },
                )
            })
            .collect();

        let mut path = PathWindow::new(window);
        let mut visible = Vec::new();
        let mut lookup: FxHashMap<InstanceTag, bool> = FxHashMap::default();
        for rec in trace.iter() {
            if rec.is_conditional() {
                if let Some(bm) = builders.get_mut(&rec.pc) {
                    path.visible_tags(&mut visible);
                    lookup.clear();
                    lookup.extend(visible.iter().copied());
                    for tag in &bm.tags {
                        let digit = match lookup.get(tag) {
                            Some(&t) => TagOutcome::from_taken(t).digit(),
                            None => TagOutcome::NotInPath.digit(),
                        };
                        bm.digits.push(digit as u8);
                    }
                    bm.taken.push(rec.taken);
                }
            }
            path.push(rec);
        }
        OutcomeMatrix {
            branches: builders,
            window,
        }
    }

    /// The window length the matrix was built with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The matrix of one branch, if it executed.
    pub fn branch(&self, pc: Pc) -> Option<&BranchMatrix> {
        self.branches.get(&pc)
    }

    /// Iterates `(pc, matrix)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &BranchMatrix)> {
        self.branches.iter().map(|(pc, m)| (*pc, m))
    }

    /// Number of static branches covered.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Total dynamic executions covered (sum of rows over all branches).
    pub fn dynamic_count(&self) -> u64 {
        self.branches.values().map(|m| m.executions() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::BranchRecord;

    /// 0x200 copies 0x100's outcome exactly.
    fn copy_trace(n: usize) -> Trace {
        let mut recs = Vec::new();
        for i in 0..n {
            let dir = i % 3 == 0;
            recs.push(BranchRecord::conditional(0x100, dir));
            recs.push(BranchRecord::conditional(0x200, dir));
        }
        Trace::from_records(recs)
    }

    #[test]
    fn matrix_shape_matches_trace() {
        let trace = copy_trace(20);
        let cands = TagCandidates::collect(&trace, 8, 16);
        let m = OutcomeMatrix::build(&trace, &cands, 8);
        assert_eq!(m.branch_count(), 2);
        assert_eq!(m.dynamic_count(), 40);
        assert_eq!(m.window(), 8);
        let bm = m.branch(0x200).unwrap();
        assert_eq!(bm.executions(), 20);
        assert_eq!(bm.tags().len(), cands.tags(0x200).len());
    }

    #[test]
    fn perfect_correlation_visible_in_matrix() {
        let trace = copy_trace(30);
        let cands = TagCandidates::collect(&trace, 8, 16);
        let m = OutcomeMatrix::build(&trace, &cands, 8);
        let bm = m.branch(0x200).unwrap();
        let col = bm
            .tags()
            .iter()
            .position(|t| *t == InstanceTag::occurrence(0x100, 0))
            .expect("most recent 0x100 must be a candidate");
        for e in 0..bm.executions() {
            let tag_outcome = bm.outcome(e, col);
            let expect = TagOutcome::from_taken(bm.taken(e));
            assert_eq!(tag_outcome, expect, "execution {e}");
        }
    }

    #[test]
    fn early_executions_report_not_in_path() {
        let trace = copy_trace(5);
        let cands = TagCandidates::collect(&trace, 8, 16);
        let m = OutcomeMatrix::build(&trace, &cands, 8);
        let bm = m.branch(0x100).unwrap();
        // The very first execution of 0x100 has an empty window: every
        // candidate must be not-in-path.
        for c in 0..bm.tags().len() {
            assert_eq!(bm.outcome(0, c), TagOutcome::NotInPath);
        }
        // Row accessor agrees with outcome accessor.
        let row = bm.row(0);
        assert!(row
            .iter()
            .all(|&d| d == TagOutcome::NotInPath.digit() as u8));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn column_out_of_range_panics() {
        let trace = copy_trace(3);
        let cands = TagCandidates::collect(&trace, 8, 2);
        let m = OutcomeMatrix::build(&trace, &cands, 8);
        let bm = m.branch(0x200).unwrap();
        let _ = bm.outcome(0, 99);
    }
}

use std::collections::HashMap;

use bp_predictors::{BranchSite, Predictor, SaturatingCounter};
use bp_trace::{
    pattern_count, pattern_index, BranchRecord, InstanceTag, PathWindow, Pc, TagOutcome,
};

use crate::oracle::OracleResult;

/// The §3.4 selective-history predictor as a *runtime* [`Predictor`]: each
/// branch owns a small table of `3^k` counters selected by the ternary
/// outcomes (taken / not-taken / not-in-path) of its assigned instance
/// tags, resolved against a live path window.
///
/// The oracle analysis scores tag sets by replaying a pre-computed outcome
/// matrix; this type executes the identical machine online, branch by
/// branch. `simulate_per_branch` over a `SelectivePredictor` built from an
/// [`OracleResult`] reproduces [`OracleResult::selective_stats`] exactly —
/// the cross-check is in this module's tests.
///
/// # Example
///
/// ```
/// use bp_core::{OracleConfig, OracleSelector, SelectivePredictor};
/// use bp_predictors::simulate_per_branch;
/// use bp_trace::{BranchRecord, Trace};
///
/// let trace: Trace = (0..400)
///     .flat_map(|i| {
///         let d = (i / 5) % 2 == 0;
///         [BranchRecord::conditional(0x10, d), BranchRecord::conditional(0x20, d)]
///     })
///     .collect();
/// let cfg = OracleConfig::default();
/// let oracle = OracleSelector::analyze(&trace, &cfg);
/// let mut live = SelectivePredictor::from_oracle(&oracle, 1, &cfg);
/// let stats = simulate_per_branch(&mut live, &trace);
/// assert_eq!(stats.total(), oracle.selective_stats(1).total());
/// ```
#[derive(Debug, Clone)]
pub struct SelectivePredictor {
    assignments: HashMap<Pc, Assignment>,
    window: PathWindow,
    init: SaturatingCounter,
}

#[derive(Debug, Clone)]
struct Assignment {
    tags: Vec<InstanceTag>,
    counters: Vec<SaturatingCounter>,
}

impl SelectivePredictor {
    /// Builds a predictor that gives each branch the tag set the oracle
    /// chose for selective histories of (at most) `k` tags.
    ///
    /// `cfg` supplies the window length and counter initialization; use the
    /// same configuration the oracle ran with to reproduce its scores.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not in `1..=`[`crate::MAX_SELECTIVE_TAGS`].
    pub fn from_oracle(oracle: &OracleResult, k: usize, cfg: &crate::OracleConfig) -> Self {
        assert!(
            (1..=crate::MAX_SELECTIVE_TAGS).contains(&k),
            "selective history size must be 1..={}",
            crate::MAX_SELECTIVE_TAGS
        );
        let assignments = oracle
            .iter()
            .map(|(pc, sel)| {
                let tags = sel.best[k - 1].tags.clone();
                let counters = vec![cfg.counter; pattern_count(tags.len())];
                (pc, Assignment { tags, counters })
            })
            .collect();
        SelectivePredictor {
            assignments,
            window: PathWindow::new(cfg.window),
            init: cfg.counter,
        }
    }

    /// Builds a predictor with explicit per-branch tag assignments (for
    /// hand-crafted studies).
    ///
    /// # Panics
    ///
    /// Panics if any assignment has more than [`crate::MAX_SELECTIVE_TAGS`]
    /// tags.
    pub fn with_assignments(
        assignments: impl IntoIterator<Item = (Pc, Vec<InstanceTag>)>,
        window: usize,
        init: SaturatingCounter,
    ) -> Self {
        let assignments = assignments
            .into_iter()
            .map(|(pc, tags)| {
                assert!(
                    tags.len() <= crate::MAX_SELECTIVE_TAGS,
                    "at most {} tags per branch",
                    crate::MAX_SELECTIVE_TAGS
                );
                let counters = vec![init; pattern_count(tags.len())];
                (pc, Assignment { tags, counters })
            })
            .collect();
        SelectivePredictor {
            assignments,
            window: PathWindow::new(window),
            init,
        }
    }

    /// The tag set assigned to `pc`, if any.
    pub fn tags(&self, pc: Pc) -> Option<&[InstanceTag]> {
        self.assignments.get(&pc).map(|a| a.tags.as_slice())
    }

    fn index_for(&self, assignment: &Assignment) -> usize {
        let outcomes: Vec<TagOutcome> = assignment
            .tags
            .iter()
            .map(|tag| match self.window.lookup(*tag) {
                Some(taken) => TagOutcome::from_taken(taken),
                None => TagOutcome::NotInPath,
            })
            .collect();
        pattern_index(&outcomes)
    }
}

impl Predictor for SelectivePredictor {
    fn name(&self) -> String {
        format!("selective({})", self.window.capacity())
    }

    fn predict(&self, site: BranchSite) -> bool {
        match self.assignments.get(&site.pc) {
            Some(a) => a.counters[self.index_for(a)].predict_taken(),
            // Unassigned branch: behave like a fresh counter.
            None => self.init.predict_taken(),
        }
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        if let Some(a) = self.assignments.get(&site.pc) {
            let idx = self.index_for(a);
            self.assignments
                .get_mut(&site.pc)
                .expect("assignment exists")
                .counters[idx]
                .train(taken);
        }
        self.window.push(&BranchRecord {
            pc: site.pc,
            target: site.target,
            taken,
            kind: bp_trace::BranchKind::Conditional,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OracleConfig, OracleSelector};
    use bp_predictors::simulate_per_branch;
    use bp_trace::Trace;

    fn correlated_trace(n: usize) -> Trace {
        let mut recs = Vec::new();
        let mut state = 0x5DEECE66Du64;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 33) & 1 == 1;
            let b = (state >> 34) & 1 == 1;
            recs.push(BranchRecord::conditional(0x10, a));
            recs.push(BranchRecord::conditional(0x20, b));
            recs.push(BranchRecord::conditional(0x30, a ^ b));
            recs.push(BranchRecord::conditional(0x40, true).with_target(0x8));
        }
        Trace::from_records(recs)
    }

    #[test]
    fn runtime_predictor_reproduces_oracle_scores_exactly() {
        let trace = correlated_trace(500);
        let cfg = OracleConfig::default();
        let oracle = OracleSelector::analyze(&trace, &cfg);
        for k in 1..=3 {
            let mut live = SelectivePredictor::from_oracle(&oracle, k, &cfg);
            let stats = simulate_per_branch(&mut live, &trace);
            let expected = oracle.selective_stats(k);
            for (pc, e) in expected.iter() {
                assert_eq!(
                    stats.get(pc),
                    Some(e),
                    "k={k} branch {pc:#x} live vs matrix"
                );
            }
        }
    }

    #[test]
    fn two_tags_capture_xor() {
        // XOR correlation is the canonical greedy-killer: neither input
        // branch predicts the output alone, so forward selection never
        // finds the pair. Exhaustive subset search does — this is the
        // failure mode the `SearchStrategy::Exhaustive` option exists for.
        let trace = correlated_trace(800);
        let cfg = OracleConfig {
            search: crate::SearchStrategy::Exhaustive { max_candidates: 48 },
            ..OracleConfig::default()
        };
        let oracle = OracleSelector::analyze(&trace, &cfg);
        let mut live = SelectivePredictor::from_oracle(&oracle, 2, &cfg);
        let stats = simulate_per_branch(&mut live, &trace);
        let xor_branch = stats.get(0x30).expect("xor branch present");
        assert!(
            xor_branch.accuracy() > 0.95,
            "xor branch accuracy {}",
            xor_branch.accuracy()
        );
        assert_eq!(live.tags(0x30).map(<[InstanceTag]>::len), Some(2));
    }

    #[test]
    fn manual_assignment_and_unassigned_fallback() {
        let tags = vec![InstanceTag::occurrence(0x10, 0)];
        let mut p = SelectivePredictor::with_assignments(
            [(0x20u64, tags)],
            8,
            SaturatingCounter::two_bit(),
        );
        // Unassigned branch predicts the counter-init direction.
        assert!(p.predict(BranchSite::new(0x99, 0x100)));
        // Copy branch: 0x20 repeats 0x10.
        let mut correct = 0;
        let mut total = 0;
        for i in 0..300u64 {
            let d = (i / 7) % 2 == 0;
            for (pc, taken) in [(0x10u64, d), (0x20u64, d)] {
                let site = BranchSite::new(pc, pc + 4);
                let pred = p.predict(site);
                if pc == 0x20 {
                    total += 1;
                    if pred == taken {
                        correct += 1;
                    }
                }
                p.update(site, taken);
            }
        }
        assert!(correct as f64 / total as f64 > 0.95);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_manual_tags_rejected() {
        let tags = (0..4).map(|i| InstanceTag::occurrence(i, 0)).collect();
        let _ =
            SelectivePredictor::with_assignments([(0x1u64, tags)], 8, SaturatingCounter::two_bit());
    }
}

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use bp_predictors::{PerBranchStats, PredictionStats, SaturatingCounter};
use bp_trace::{InstanceTag, Pc, Trace};

use crate::candidates::TagCandidates;
use crate::matrix::{BranchMatrix, OutcomeMatrix};

/// Largest selective-history size the paper studies (1, 2 or 3 branches).
pub const MAX_SELECTIVE_TAGS: usize = 3;

/// How the oracle searches for the best tag subset per branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Forward selection: fix the best single tag, then the best partner,
    /// then the best third. Linear in candidates per size step.
    Greedy,
    /// Try every subset of sizes 2 and 3 when a branch has at most
    /// `max_candidates` candidates (falling back to greedy above that).
    /// The paper's "oracle mechanism" is unspecified; exhaustive search is
    /// the reference the greedy approximation is ablated against.
    Exhaustive {
        /// Candidate-list size above which the search falls back to greedy.
        max_candidates: usize,
    },
}

/// Configuration of the §3.4 oracle selective-history analysis.
///
/// `Hash`/`Eq` cover every field, so the config doubles as its own
/// memoization fingerprint in the evaluation-engine cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OracleConfig {
    /// Path-window length *n* — how many prior branches are examined
    /// (the paper uses 16 by default, 8–32 in the figure 5 sweep).
    pub window: usize,
    /// Maximum candidate tags retained per branch (visibility-ranked).
    pub candidate_cap: usize,
    /// Counter used in the selective pattern tables.
    pub counter: SaturatingCounter,
    /// Subset search strategy.
    pub search: SearchStrategy,
}

impl Default for OracleConfig {
    /// Window 16, 48 candidates (both schemes can name up to 2×16 = 32
    /// instances per execution, plus headroom for cross-execution variety),
    /// 2-bit counters, greedy search.
    fn default() -> Self {
        OracleConfig {
            window: 16,
            candidate_cap: 48,
            counter: SaturatingCounter::two_bit(),
            search: SearchStrategy::Greedy,
        }
    }
}

/// A scored tag set: the chosen correlated instances and how many of the
/// branch's executions the selective-history predictor built on them got
/// right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagSetScore {
    /// The chosen instance tags (possibly fewer than requested when the
    /// branch has few candidates or a smaller set scores higher).
    pub tags: Vec<InstanceTag>,
    /// Correct predictions over the branch's executions.
    pub correct: u64,
}

/// Per-branch oracle outcome: the best selective histories of sizes 1..=3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchSelection {
    /// Dynamic executions of the branch.
    pub executions: u64,
    /// `best[k-1]` is the best selective history using at most `k` tags.
    pub best: [TagSetScore; MAX_SELECTIVE_TAGS],
}

/// Result of the oracle selective-history analysis over one trace.
#[derive(Debug, Clone, Default)]
pub struct OracleResult {
    per_branch: HashMap<Pc, BranchSelection>,
}

impl OracleResult {
    /// The selection for one branch, if it executed.
    pub fn selection(&self, pc: Pc) -> Option<&BranchSelection> {
        self.per_branch.get(&pc)
    }

    /// Iterates `(pc, selection)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &BranchSelection)> {
        self.per_branch.iter().map(|(pc, s)| (*pc, s))
    }

    /// Per-branch stats of the `k`-tag selective-history predictor
    /// (`k` in 1..=3) — comparable with any
    /// [`bp_predictors::simulate_per_branch`] result.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not in `1..=`[`MAX_SELECTIVE_TAGS`].
    pub fn selective_stats(&self, k: usize) -> PerBranchStats {
        assert!(
            (1..=MAX_SELECTIVE_TAGS).contains(&k),
            "selective history size must be 1..={MAX_SELECTIVE_TAGS}"
        );
        self.per_branch
            .iter()
            .map(|(pc, sel)| {
                (
                    *pc,
                    PredictionStats {
                        predictions: sel.executions,
                        correct: sel.best[k - 1].correct,
                    },
                )
            })
            .collect()
    }

    /// Overall accuracy of the `k`-tag selective-history predictor.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not in `1..=`[`MAX_SELECTIVE_TAGS`].
    pub fn accuracy(&self, k: usize) -> f64 {
        self.selective_stats(k).total().accuracy()
    }

    /// Number of static branches analyzed.
    pub fn branch_count(&self) -> usize {
        self.per_branch.len()
    }
}

impl FromIterator<(Pc, BranchSelection)> for OracleResult {
    /// Assembles a result from per-branch selections — the merge step of
    /// the engine's branch-sharded oracle scheduler.
    fn from_iter<I: IntoIterator<Item = (Pc, BranchSelection)>>(iter: I) -> Self {
        OracleResult {
            per_branch: iter.into_iter().collect(),
        }
    }
}

/// The §3.4 oracle: for every static branch, finds the 1, 2 and 3 most
/// important prior branch instances and scores the selective-history
/// predictor built on them.
///
/// "Most important" means the set whose 3-outcome-per-tag
/// (taken / not-taken / not-in-path) pattern table, driven by adaptive
/// counters, yields the most correct predictions for that branch — an
/// a-posteriori per-branch choice, which is what makes it an oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleSelector;

impl OracleSelector {
    /// Runs the full analysis: candidate collection, outcome-matrix
    /// construction, and subset search.
    pub fn analyze(trace: &Trace, cfg: &OracleConfig) -> OracleResult {
        let candidates = TagCandidates::collect(trace, cfg.window, cfg.candidate_cap);
        let matrix = OutcomeMatrix::build(trace, &candidates, cfg.window);
        Self::analyze_matrix(&matrix, cfg)
    }

    /// Runs the subset search over a pre-built matrix (lets callers reuse a
    /// matrix across strategies, e.g. for the greedy-vs-exhaustive
    /// ablation).
    pub fn analyze_matrix(matrix: &OutcomeMatrix, cfg: &OracleConfig) -> OracleResult {
        matrix
            .iter()
            .map(|(pc, bm)| (pc, Self::select_branch(bm, cfg)))
            .collect()
    }

    /// Runs the subset search for a single branch — the unit of work the
    /// engine shards across its thread pool. Collect `(pc, selection)`
    /// pairs back into an [`OracleResult`] via `FromIterator`.
    pub fn select_branch(bm: &BranchMatrix, cfg: &OracleConfig) -> BranchSelection {
        select_for_branch(bm, cfg)
    }

    /// As [`OracleSelector::analyze_matrix`], searching branches on up to
    /// `jobs` threads. [`OracleSelector::select_branch`] is pure per
    /// branch and the merge is keyed by PC, so the result is identical to
    /// the serial kernel for every `jobs` value. Branches are claimed in
    /// small PC-sorted chunks off a shared cursor (the `sharded_select`
    /// pattern) so a few candidate-heavy branches cannot serialize the
    /// run.
    pub fn analyze_matrix_parallel(
        matrix: &OutcomeMatrix,
        cfg: &OracleConfig,
        jobs: usize,
    ) -> OracleResult {
        let threads = jobs.max(1).min(matrix.branch_count().max(1));
        if threads <= 1 {
            return Self::analyze_matrix(matrix, cfg);
        }
        let mut branches: Vec<(Pc, &BranchMatrix)> = matrix.iter().collect();
        branches.sort_unstable_by_key(|&(pc, _)| pc);
        let chunk = branches.len().div_ceil(threads * 8).max(1);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let collected: std::sync::Mutex<HashMap<Pc, BranchSelection>> =
            std::sync::Mutex::new(HashMap::with_capacity(branches.len()));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local: Vec<(Pc, BranchSelection)> = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                        if start >= branches.len() {
                            break;
                        }
                        let end = (start + chunk).min(branches.len());
                        for &(pc, bm) in &branches[start..end] {
                            local.push((pc, Self::select_branch(bm, cfg)));
                        }
                    }
                    collected
                        .lock()
                        .expect("oracle worker poisoned")
                        .extend(local);
                });
            }
        });
        let per_branch = collected.into_inner().expect("oracle workers poisoned");
        OracleResult { per_branch }
    }
}

/// Largest selective pattern table: `3^MAX_SELECTIVE_TAGS` counters. Small
/// enough to live on the stack for every scoring call.
pub(crate) const MAX_PATTERNS: usize = 27;

/// Valid-bit mask of a plane's final word.
#[inline]
pub(crate) fn tail_mask(executions: usize) -> u64 {
    match executions % 64 {
        0 => !0,
        r => (1u64 << r) - 1,
    }
}

/// One column's per-word ternary-outcome masks, indexed by digit:
/// `[taken, not-taken, not-in-path]`. The planes carry no bits past the
/// last execution, so only the complemented terms need `valid` masking.
#[inline]
pub(crate) fn ternary_masks(ip: u64, dir: u64, valid: u64) -> [u64; 3] {
    [ip & dir, ip & !dir & valid, !ip & valid]
}

/// Replays one pattern's executions within one 64-execution word: `m`
/// masks the executions selecting this counter, `t` is the branch-outcome
/// word.
///
/// Counters of different patterns are independent, so a word can be
/// processed pattern-by-pattern; within a pattern the executions run in
/// trace order (LSB first). When the masked outcomes are uniform — by far
/// the common case for strongly biased branches — the whole run collapses
/// into one O(1) [`SaturatingCounter::train_run`] jump; mixed words fall
/// back to bit-serial replay.
#[inline]
pub(crate) fn tally_word(slot: &mut SaturatingCounter, m: u64, t: u64, correct: &mut u64) {
    if m == 0 {
        return;
    }
    let tm = t & m;
    if tm == 0 {
        *correct += slot.train_run(u64::from(m.count_ones()), false);
    } else if tm == m {
        *correct += slot.train_run(u64::from(m.count_ones()), true);
    } else {
        let mut rem = m;
        while rem != 0 {
            let b = rem.trailing_zeros();
            rem &= rem - 1;
            let taken = tm >> b & 1 == 1;
            if slot.predict_taken() == taken {
                *correct += 1;
            }
            slot.train(taken);
        }
    }
}

/// Scores the selective-history predictor for one tag set (given as column
/// indices into the branch matrix): a table of `3^cols` counters, pattern
/// selected by the tags' ternary outcomes, predicted by the counter's high
/// bit, trained with the branch outcome.
///
/// This is the innermost loop of the whole oracle analysis. It walks the
/// packed bit-planes a 64-execution word at a time: each word is split into
/// per-pattern masks with a handful of AND/ANDNOT ops, and every mask is
/// replayed through its counter via [`tally_word`]'s uniform-run jump.
/// Exactly equivalent to the digit-at-a-time reference scorer
/// (`crate::reference`), which the property tests hold it to.
#[doc(hidden)]
pub fn score_tag_set(bm: &BranchMatrix, cols: &[usize], init: SaturatingCounter) -> u64 {
    if crate::simd::use_avx2(bm.words()) {
        return crate::simd::score_tag_set_avx2(bm, cols, init);
    }
    score_tag_set_scalar(bm, cols, init)
}

/// The portable word-at-a-time scorer — the fallback path of
/// [`score_tag_set`] and the reference side of the conformance SIMD
/// differential suite.
#[doc(hidden)]
pub fn score_tag_set_scalar(bm: &BranchMatrix, cols: &[usize], init: SaturatingCounter) -> u64 {
    let words = bm.words();
    let taken = bm.taken_plane();
    let tail = tail_mask(bm.executions());
    let valid_at = |w: usize| if w + 1 == words { tail } else { !0 };
    let mut correct = 0u64;
    match *cols {
        [] => {
            let mut counter = init;
            for (w, &t) in taken.iter().enumerate() {
                tally_word(&mut counter, valid_at(w), t, &mut correct);
            }
        }
        [a] => {
            let (ipa, da) = (bm.inpath_plane(a), bm.dir_plane(a));
            let mut counters = [init; 3];
            for w in 0..words {
                let t = taken[w];
                let ma = ternary_masks(ipa[w], da[w], valid_at(w));
                for (slot, &m) in counters.iter_mut().zip(&ma) {
                    tally_word(slot, m, t, &mut correct);
                }
            }
        }
        [a, b] => {
            let (ipa, da) = (bm.inpath_plane(a), bm.dir_plane(a));
            let (ipb, db) = (bm.inpath_plane(b), bm.dir_plane(b));
            let mut counters = [init; 9];
            for w in 0..words {
                let t = taken[w];
                let valid = valid_at(w);
                let ma = ternary_masks(ipa[w], da[w], valid);
                let mb = ternary_masks(ipb[w], db[w], valid);
                for (i, &ma) in ma.iter().enumerate() {
                    if ma == 0 {
                        continue;
                    }
                    for (j, &mb) in mb.iter().enumerate() {
                        tally_word(&mut counters[i * 3 + j], ma & mb, t, &mut correct);
                    }
                }
            }
        }
        [a, b, c] => {
            let (ipa, da) = (bm.inpath_plane(a), bm.dir_plane(a));
            let (ipb, db) = (bm.inpath_plane(b), bm.dir_plane(b));
            let (ipc, dc) = (bm.inpath_plane(c), bm.dir_plane(c));
            let mut counters = [init; MAX_PATTERNS];
            for w in 0..words {
                let t = taken[w];
                let valid = valid_at(w);
                let ma = ternary_masks(ipa[w], da[w], valid);
                let mb = ternary_masks(ipb[w], db[w], valid);
                let mc = ternary_masks(ipc[w], dc[w], valid);
                for (i, &ma) in ma.iter().enumerate() {
                    if ma == 0 {
                        continue;
                    }
                    for (j, &mb) in mb.iter().enumerate() {
                        let mab = ma & mb;
                        if mab == 0 {
                            continue;
                        }
                        for (k, &mc) in mc.iter().enumerate() {
                            let slot = &mut counters[(i * 3 + j) * 3 + k];
                            tally_word(slot, mab & mc, t, &mut correct);
                        }
                    }
                }
            }
        }
        _ => unreachable!("selective histories use at most {MAX_SELECTIVE_TAGS} tags"),
    }
    correct
}

/// Scores a tag set using only *presence* information: each tag
/// contributes in-path / not-in-path (a `2^k` pattern), with the
/// direction of the correlated branch discarded.
///
/// This isolates §3.1's **in-path correlation** — what knowing merely
/// *that* a branch was on the path (figure 2) predicts, as opposed to
/// which way it went. Same word-wise plane walk as [`score_tag_set`], over
/// in-path planes only.
#[doc(hidden)]
pub fn score_columns_presence(bm: &BranchMatrix, cols: &[usize], init: SaturatingCounter) -> u64 {
    debug_assert!(cols.len() <= MAX_SELECTIVE_TAGS);
    let words = bm.words();
    let taken = bm.taken_plane();
    let tail = tail_mask(bm.executions());
    let mut counters = [init; 1 << MAX_SELECTIVE_TAGS];
    let mut correct = 0u64;
    let n_patterns = 1usize << cols.len();
    for (w, &t) in taken.iter().enumerate() {
        let valid = if w + 1 == words { tail } else { !0 };
        // Pattern index composes in-path bits MSB-first over `cols`.
        for (p, slot) in counters.iter_mut().enumerate().take(n_patterns) {
            let mut m = valid;
            for (i, &c) in cols.iter().enumerate() {
                let ip = bm.inpath_plane(c)[w];
                m &= if p >> (cols.len() - 1 - i) & 1 == 1 {
                    ip
                } else {
                    !ip
                };
            }
            tally_word(slot, m, t, &mut correct);
        }
    }
    correct
}

/// Per-branch stats of a *presence-only* selective history: the oracle's
/// chosen `k`-tag sets re-scored with direction information removed
/// (§3.1's in-path correlation, isolated).
///
/// The gap between [`OracleResult::selective_stats`] and this is the value
/// of knowing the correlated branches' *directions*; the gap between this
/// and ideal static is the value of knowing they were *on the path* at
/// all.
///
/// Branches whose chosen tags are missing from `matrix` (i.e. a matrix
/// built with a different configuration) fall back to the degenerate
/// single-counter score.
///
/// # Panics
///
/// Panics if `k` is not in `1..=`[`MAX_SELECTIVE_TAGS`].
pub fn presence_stats(
    matrix: &OutcomeMatrix,
    oracle: &OracleResult,
    k: usize,
    init: SaturatingCounter,
) -> PerBranchStats {
    assert!(
        (1..=MAX_SELECTIVE_TAGS).contains(&k),
        "selective history size must be 1..={MAX_SELECTIVE_TAGS}"
    );
    let mut out = PerBranchStats::new();
    for (pc, sel) in oracle.iter() {
        let Some(bm) = matrix.branch(pc) else {
            continue;
        };
        let cols: Vec<usize> = sel.best[k - 1]
            .tags
            .iter()
            .filter_map(|tag| bm.tags().iter().position(|t| t == tag))
            .collect();
        let correct = score_columns_presence(bm, &cols, init);
        out.insert(
            pc,
            PredictionStats {
                predictions: sel.executions,
                correct,
            },
        );
    }
    out
}

fn select_for_branch(bm: &BranchMatrix, cfg: &OracleConfig) -> BranchSelection {
    let n_cands = bm.tags().len();
    let executions = bm.executions() as u64;

    // Size 1: always exhaustive (linear).
    let mut best1_cols: Vec<usize> = Vec::new();
    let mut best1 = score_tag_set(bm, &[], cfg.counter);
    for c in 0..n_cands {
        let s = score_tag_set(bm, &[c], cfg.counter);
        if s > best1 {
            best1 = s;
            best1_cols = vec![c];
        }
    }

    let exhaustive = match cfg.search {
        SearchStrategy::Exhaustive { max_candidates } => n_cands <= max_candidates,
        SearchStrategy::Greedy => false,
    };

    let (best2_cols, best2) = if exhaustive {
        best_exhaustive(bm, n_cands, 2, cfg.counter)
    } else {
        best_greedy_step(bm, &best1_cols, best1, n_cands, cfg.counter)
    };
    let (best2_cols, best2) = keep_better((best1_cols.clone(), best1), (best2_cols, best2));

    let (best3_cols, best3) = if exhaustive {
        best_exhaustive(bm, n_cands, 3, cfg.counter)
    } else {
        best_greedy_step(bm, &best2_cols, best2, n_cands, cfg.counter)
    };
    let (best3_cols, best3) = keep_better((best2_cols.clone(), best2), (best3_cols, best3));

    let to_score = |cols: &[usize], correct: u64| TagSetScore {
        tags: cols.iter().map(|&c| bm.tags()[c]).collect(),
        correct,
    };
    BranchSelection {
        executions,
        best: [
            to_score(&best1_cols, best1),
            to_score(&best2_cols, best2),
            to_score(&best3_cols, best3),
        ],
    }
}

/// Greedy forward step: extend `base` with the single column that improves
/// its score most.
fn best_greedy_step(
    bm: &BranchMatrix,
    base: &[usize],
    base_score: u64,
    n_cands: usize,
    init: SaturatingCounter,
) -> (Vec<usize>, u64) {
    let mut best_cols = base.to_vec();
    let mut best = base_score;
    let mut trial = base.to_vec();
    trial.push(0);
    for c in 0..n_cands {
        if base.contains(&c) {
            continue;
        }
        *trial.last_mut().expect("trial set is non-empty") = c;
        let s = score_tag_set(bm, &trial, init);
        if s > best {
            best = s;
            best_cols = trial.clone();
        }
    }
    (best_cols, best)
}

/// Exhaustive search over all subsets of exactly `size` columns.
fn best_exhaustive(
    bm: &BranchMatrix,
    n_cands: usize,
    size: usize,
    init: SaturatingCounter,
) -> (Vec<usize>, u64) {
    let mut best_cols: Vec<usize> = Vec::new();
    let mut best = 0u64;
    let mut combo = vec![0usize; size];
    if n_cands < size {
        return (Vec::new(), 0);
    }
    // Iterative k-combination enumeration.
    for (i, slot) in combo.iter_mut().enumerate() {
        *slot = i;
    }
    loop {
        let s = score_tag_set(bm, &combo, init);
        if s > best {
            best = s;
            best_cols = combo.clone();
        }
        // Advance to the next combination.
        let mut i = size;
        loop {
            if i == 0 {
                return (best_cols, best);
            }
            i -= 1;
            if combo[i] < n_cands - (size - i) {
                combo[i] += 1;
                for j in i + 1..size {
                    combo[j] = combo[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Picks the higher-scoring of two scored sets; the smaller set wins ties
/// (adding an uninformative tag cannot beat leaving it out).
fn keep_better(a: (Vec<usize>, u64), b: (Vec<usize>, u64)) -> (Vec<usize>, u64) {
    if b.1 > a.1 {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{BranchRecord, TagScheme};

    /// X (0x300) = Y (0x100) AND Z (0x200); Y and Z pseudo-random.
    fn and_trace(n: usize) -> Trace {
        let mut recs = Vec::new();
        let mut state = 0x12345678u64;
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = (state >> 33) & 1 == 1;
            let z = (state >> 34) & 1 == 1;
            recs.push(BranchRecord::conditional(0x100, y));
            recs.push(BranchRecord::conditional(0x200, z));
            recs.push(BranchRecord::conditional(0x300, y && z));
        }
        Trace::from_records(recs)
    }

    #[test]
    fn one_tag_captures_half_of_and_correlation() {
        let oracle = OracleSelector::analyze(&and_trace(800), &OracleConfig::default());
        let sel = oracle.selection(0x300).expect("0x300 analyzed");
        // One tag (Y or Z): when that tag is not-taken X is not-taken
        // (100%); when taken, X follows the other ~50/50 branch, and the
        // counter settles on not-taken (P(taken)=0.5... biased play). The
        // 1-tag accuracy must clearly beat the 75% static floor... at least
        // exceed it.
        let acc1 = sel.best[0].correct as f64 / sel.executions as f64;
        assert!(acc1 > 0.70, "1-tag accuracy {acc1}");
    }

    #[test]
    fn two_tags_nail_the_and() {
        let oracle = OracleSelector::analyze(&and_trace(800), &OracleConfig::default());
        let sel = oracle.selection(0x300).expect("0x300 analyzed");
        let acc2 = sel.best[1].correct as f64 / sel.executions as f64;
        // Y and Z together determine X exactly; only counter warmup misses.
        assert!(acc2 > 0.97, "2-tag accuracy {acc2}");
        // And the chosen tags are recent instances of Y and Z.
        let pcs: Vec<Pc> = sel.best[1].tags.iter().map(|t| t.pc).collect();
        assert!(pcs.contains(&0x100) && pcs.contains(&0x200), "tags {pcs:?}");
    }

    #[test]
    fn scores_monotone_in_k() {
        let oracle = OracleSelector::analyze(&and_trace(500), &OracleConfig::default());
        for (_, sel) in oracle.iter() {
            assert!(sel.best[1].correct >= sel.best[0].correct);
            assert!(sel.best[2].correct >= sel.best[1].correct);
        }
        assert!(oracle.accuracy(3) >= oracle.accuracy(1));
    }

    #[test]
    fn exhaustive_at_least_matches_greedy() {
        let trace = and_trace(400);
        let cfg_g = OracleConfig::default();
        let cfg_e = OracleConfig {
            search: SearchStrategy::Exhaustive { max_candidates: 24 },
            candidate_cap: 16,
            ..OracleConfig::default()
        };
        let cands = TagCandidates::collect(&trace, 16, 16);
        let matrix = OutcomeMatrix::build(&trace, &cands, 16);
        let greedy = OracleSelector::analyze_matrix(&matrix, &cfg_g);
        let exhaustive = OracleSelector::analyze_matrix(&matrix, &cfg_e);
        for (pc, g) in greedy.iter() {
            let e = exhaustive.selection(pc).unwrap();
            assert!(e.best[2].correct >= g.best[2].correct, "branch {pc:#x}");
        }
    }

    #[test]
    fn parallel_analysis_is_identical_for_every_jobs_count() {
        let trace = and_trace(400);
        let cfg = OracleConfig::default();
        let cands = TagCandidates::collect(&trace, cfg.window, cfg.candidate_cap);
        let matrix = OutcomeMatrix::build(&trace, &cands, cfg.window);
        let serial = OracleSelector::analyze_matrix(&matrix, &cfg);
        for jobs in [1, 2, 7, 64] {
            let par = OracleSelector::analyze_matrix_parallel(&matrix, &cfg, jobs);
            assert_eq!(par.branch_count(), serial.branch_count(), "jobs {jobs}");
            for (pc, s) in serial.iter() {
                let p = par.selection(pc).expect("branch present");
                assert_eq!(p.executions, s.executions, "jobs {jobs} pc {pc:#x}");
                for k in 0..MAX_SELECTIVE_TAGS {
                    assert_eq!(p.best[k], s.best[k], "jobs {jobs} pc {pc:#x} k {k}");
                }
            }
        }
    }

    #[test]
    fn selective_stats_totals() {
        let oracle = OracleSelector::analyze(&and_trace(300), &OracleConfig::default());
        let stats = oracle.selective_stats(2);
        assert_eq!(stats.total().predictions, 900);
        assert_eq!(stats.static_count(), 3);
        assert_eq!(oracle.branch_count(), 3);
    }

    #[test]
    #[should_panic(expected = "selective history size")]
    fn zero_k_rejected() {
        let oracle = OracleSelector::analyze(&and_trace(10), &OracleConfig::default());
        let _ = oracle.selective_stats(0);
    }

    #[test]
    fn presence_only_loses_direction_information() {
        // X copies Y, and Y is always in the path: presence carries no
        // information, direction carries everything.
        let trace = and_trace(600);
        let cfg = OracleConfig::default();
        let cands = crate::TagCandidates::collect(&trace, cfg.window, cfg.candidate_cap);
        let matrix = OutcomeMatrix::build(&trace, &cands, cfg.window);
        let oracle = OracleSelector::analyze_matrix(&matrix, &cfg);
        let full = oracle.selective_stats(2);
        let presence = presence_stats(&matrix, &oracle, 2, cfg.counter);
        // Same coverage...
        assert_eq!(full.total().predictions, presence.total().predictions);
        // ...but the AND branch needs directions.
        let x_full = full.get(0x300).unwrap();
        let x_presence = presence.get(0x300).unwrap();
        assert!(
            x_full.correct > x_presence.correct,
            "full {} vs presence {}",
            x_full.correct,
            x_presence.correct
        );
    }

    #[test]
    fn presence_captures_in_path_correlation() {
        // Figure 2 in its purest form: control routes to subroutine A or B
        // via a *call* (not a conditional branch), so no prior branch's
        // direction encodes the condition — only which branch was on the
        // path. Branch X at the join repeats the condition; the back-edge
        // lets the iteration scheme name "V executed this iteration".
        use bp_trace::Recorder;
        let mut rec = Recorder::new();
        let mut state = 3u64;
        for _ in 0..600 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let cond = (state >> 39) & 1 == 1;
            let noise = state & 4 != 0;
            if cond {
                rec.call(0x50, 0x1000);
                rec.cond(0x200, noise); // branch V, direction pure noise
                rec.ret(0x1010);
            } else {
                rec.call(0x50, 0x2000);
                rec.cond(0x250, noise); // branch W, direction pure noise
                rec.ret(0x2010);
            }
            rec.cond(0x300, cond); // X: decided by *which* path ran
            rec.loop_back(0x310, true);
        }
        let trace = rec.into_trace();
        let cfg = OracleConfig::default();
        let cands = crate::TagCandidates::collect(&trace, cfg.window, cfg.candidate_cap);
        let matrix = OutcomeMatrix::build(&trace, &cands, cfg.window);
        let oracle = OracleSelector::analyze_matrix(&matrix, &cfg);

        // The ternary oracle finds the in-path tag (score ≈ perfect)...
        let sel = oracle.selection(0x300).unwrap();
        let full_acc = sel.best[0].correct as f64 / sel.executions as f64;
        assert!(full_acc > 0.95, "full accuracy {full_acc}");
        // ...and presence alone preserves it: the chosen tag's direction
        // carries no information, its presence carries all of it.
        let presence = presence_stats(&matrix, &oracle, 1, cfg.counter);
        let x = presence.get(0x300).unwrap();
        assert!(x.accuracy() > 0.95, "presence accuracy {}", x.accuracy());
    }

    #[test]
    fn iteration_tags_useful_for_loop_carried_correlation() {
        // A 3-iteration loop: the branch in iteration i copies what a
        // header branch decided in that same iteration... construct: header
        // H decides d, then body branch B repeats d, with a back-edge
        // between iterations.
        let mut recs = Vec::new();
        let mut state = 7u64;
        for _ in 0..400 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let d = (state >> 40) & 1 == 1;
            recs.push(BranchRecord::conditional(0x100, d));
            recs.push(BranchRecord::conditional(0x200, d));
            recs.push(BranchRecord::conditional(0x300, true).with_target(0x100));
            // back-edge
        }
        let trace = Trace::from_records(recs);
        let oracle = OracleSelector::analyze(&trace, &OracleConfig::default());
        let sel = oracle.selection(0x200).unwrap();
        let acc = sel.best[0].correct as f64 / sel.executions as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        // Both tagging schemes can name the header; just verify the scheme
        // field is populated sanely.
        assert!(sel.best[0]
            .tags
            .iter()
            .all(|t| matches!(t.scheme, TagScheme::Occurrence | TagScheme::Iteration)));
    }
}

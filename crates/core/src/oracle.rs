use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use bp_predictors::{PerBranchStats, PredictionStats, SaturatingCounter};
use bp_trace::{InstanceTag, Pc, TagOutcome, Trace};

use crate::candidates::TagCandidates;
use crate::matrix::{BranchMatrix, OutcomeMatrix};

/// Largest selective-history size the paper studies (1, 2 or 3 branches).
pub const MAX_SELECTIVE_TAGS: usize = 3;

/// How the oracle searches for the best tag subset per branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Forward selection: fix the best single tag, then the best partner,
    /// then the best third. Linear in candidates per size step.
    Greedy,
    /// Try every subset of sizes 2 and 3 when a branch has at most
    /// `max_candidates` candidates (falling back to greedy above that).
    /// The paper's "oracle mechanism" is unspecified; exhaustive search is
    /// the reference the greedy approximation is ablated against.
    Exhaustive {
        /// Candidate-list size above which the search falls back to greedy.
        max_candidates: usize,
    },
}

/// Configuration of the §3.4 oracle selective-history analysis.
///
/// `Hash`/`Eq` cover every field, so the config doubles as its own
/// memoization fingerprint in the evaluation-engine cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OracleConfig {
    /// Path-window length *n* — how many prior branches are examined
    /// (the paper uses 16 by default, 8–32 in the figure 5 sweep).
    pub window: usize,
    /// Maximum candidate tags retained per branch (visibility-ranked).
    pub candidate_cap: usize,
    /// Counter used in the selective pattern tables.
    pub counter: SaturatingCounter,
    /// Subset search strategy.
    pub search: SearchStrategy,
}

impl Default for OracleConfig {
    /// Window 16, 48 candidates (both schemes can name up to 2×16 = 32
    /// instances per execution, plus headroom for cross-execution variety),
    /// 2-bit counters, greedy search.
    fn default() -> Self {
        OracleConfig {
            window: 16,
            candidate_cap: 48,
            counter: SaturatingCounter::two_bit(),
            search: SearchStrategy::Greedy,
        }
    }
}

/// A scored tag set: the chosen correlated instances and how many of the
/// branch's executions the selective-history predictor built on them got
/// right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagSetScore {
    /// The chosen instance tags (possibly fewer than requested when the
    /// branch has few candidates or a smaller set scores higher).
    pub tags: Vec<InstanceTag>,
    /// Correct predictions over the branch's executions.
    pub correct: u64,
}

/// Per-branch oracle outcome: the best selective histories of sizes 1..=3.
#[derive(Debug, Clone)]
pub struct BranchSelection {
    /// Dynamic executions of the branch.
    pub executions: u64,
    /// `best[k-1]` is the best selective history using at most `k` tags.
    pub best: [TagSetScore; MAX_SELECTIVE_TAGS],
}

/// Result of the oracle selective-history analysis over one trace.
#[derive(Debug, Clone, Default)]
pub struct OracleResult {
    per_branch: HashMap<Pc, BranchSelection>,
}

impl OracleResult {
    /// The selection for one branch, if it executed.
    pub fn selection(&self, pc: Pc) -> Option<&BranchSelection> {
        self.per_branch.get(&pc)
    }

    /// Iterates `(pc, selection)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &BranchSelection)> {
        self.per_branch.iter().map(|(pc, s)| (*pc, s))
    }

    /// Per-branch stats of the `k`-tag selective-history predictor
    /// (`k` in 1..=3) — comparable with any
    /// [`bp_predictors::simulate_per_branch`] result.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not in `1..=`[`MAX_SELECTIVE_TAGS`].
    pub fn selective_stats(&self, k: usize) -> PerBranchStats {
        assert!(
            (1..=MAX_SELECTIVE_TAGS).contains(&k),
            "selective history size must be 1..={MAX_SELECTIVE_TAGS}"
        );
        self.per_branch
            .iter()
            .map(|(pc, sel)| {
                (
                    *pc,
                    PredictionStats {
                        predictions: sel.executions,
                        correct: sel.best[k - 1].correct,
                    },
                )
            })
            .collect()
    }

    /// Overall accuracy of the `k`-tag selective-history predictor.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not in `1..=`[`MAX_SELECTIVE_TAGS`].
    pub fn accuracy(&self, k: usize) -> f64 {
        self.selective_stats(k).total().accuracy()
    }

    /// Number of static branches analyzed.
    pub fn branch_count(&self) -> usize {
        self.per_branch.len()
    }
}

/// The §3.4 oracle: for every static branch, finds the 1, 2 and 3 most
/// important prior branch instances and scores the selective-history
/// predictor built on them.
///
/// "Most important" means the set whose 3-outcome-per-tag
/// (taken / not-taken / not-in-path) pattern table, driven by adaptive
/// counters, yields the most correct predictions for that branch — an
/// a-posteriori per-branch choice, which is what makes it an oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleSelector;

impl OracleSelector {
    /// Runs the full analysis: candidate collection, outcome-matrix
    /// construction, and subset search.
    pub fn analyze(trace: &Trace, cfg: &OracleConfig) -> OracleResult {
        let candidates = TagCandidates::collect(trace, cfg.window, cfg.candidate_cap);
        let matrix = OutcomeMatrix::build(trace, &candidates, cfg.window);
        Self::analyze_matrix(&matrix, cfg)
    }

    /// Runs the subset search over a pre-built matrix (lets callers reuse a
    /// matrix across strategies, e.g. for the greedy-vs-exhaustive
    /// ablation).
    pub fn analyze_matrix(matrix: &OutcomeMatrix, cfg: &OracleConfig) -> OracleResult {
        let per_branch = matrix
            .iter()
            .map(|(pc, bm)| (pc, select_for_branch(bm, cfg)))
            .collect();
        OracleResult { per_branch }
    }
}

/// Largest selective pattern table: `3^MAX_SELECTIVE_TAGS` counters. Small
/// enough to live on the stack for every scoring call.
const MAX_PATTERNS: usize = 27;

/// Column-major copy of one branch's outcome matrix.
///
/// [`BranchMatrix`] is row-major, which suits its streaming construction,
/// but the subset search reads whole *columns* — roughly `3 × candidates`
/// full passes per branch. One transpose up front turns every scoring pass
/// into contiguous scans, and its cost is that of a single pass.
struct ColumnView<'a> {
    /// `tags × executions` digits; column `c` at `[c * rows .. (c+1) * rows]`.
    columns: Vec<u8>,
    taken: &'a [bool],
}

impl<'a> ColumnView<'a> {
    fn new(bm: &'a BranchMatrix) -> Self {
        let rows = bm.executions();
        let mut columns = vec![0u8; bm.tags().len() * rows];
        for e in 0..rows {
            for (c, &digit) in bm.row(e).iter().enumerate() {
                columns[c * rows + e] = digit;
            }
        }
        ColumnView {
            columns,
            taken: bm.outcomes(),
        }
    }

    #[inline]
    fn column(&self, c: usize) -> &[u8] {
        let rows = self.taken.len();
        &self.columns[c * rows..(c + 1) * rows]
    }
}

/// Scores the selective-history predictor for one tag set (given as column
/// indices into the branch matrix): a table of `3^cols` counters, pattern
/// selected by the tags' ternary outcomes, predicted by the counter's high
/// bit, trained with the branch outcome.
///
/// The loop is specialized per set size — this is the innermost loop of the
/// whole oracle analysis, so the counter table stays on the stack and each
/// column is walked as one contiguous slice.
fn score_columns(view: &ColumnView<'_>, cols: &[usize], init: SaturatingCounter) -> u64 {
    let mut counters = [init; MAX_PATTERNS];
    let mut correct = 0u64;
    let mut tally = |slot: &mut SaturatingCounter, taken: bool| {
        if slot.predict_taken() == taken {
            correct += 1;
        }
        slot.train(taken);
    };
    match *cols {
        [] => {
            let slot = &mut counters[0];
            for &taken in view.taken {
                tally(slot, taken);
            }
        }
        [a] => {
            for (&da, &taken) in view.column(a).iter().zip(view.taken) {
                tally(&mut counters[da as usize], taken);
            }
        }
        [a, b] => {
            let zipped = view.column(a).iter().zip(view.column(b)).zip(view.taken);
            for ((&da, &db), &taken) in zipped {
                tally(&mut counters[da as usize * 3 + db as usize], taken);
            }
        }
        [a, b, c] => {
            let zipped = view
                .column(a)
                .iter()
                .zip(view.column(b))
                .zip(view.column(c))
                .zip(view.taken);
            for (((&da, &db), &dc), &taken) in zipped {
                let idx = (da as usize * 3 + db as usize) * 3 + dc as usize;
                tally(&mut counters[idx], taken);
            }
        }
        _ => unreachable!("selective histories use at most {MAX_SELECTIVE_TAGS} tags"),
    }
    correct
}

/// Scores a tag set using only *presence* information: each tag
/// contributes in-path / not-in-path (a `2^k` pattern), with the
/// direction of the correlated branch discarded.
///
/// This isolates §3.1's **in-path correlation** — what knowing merely
/// *that* a branch was on the path (figure 2) predicts, as opposed to
/// which way it went.
fn score_columns_presence(bm: &BranchMatrix, cols: &[usize], init: SaturatingCounter) -> u64 {
    debug_assert!(cols.len() <= MAX_SELECTIVE_TAGS);
    let mut counters = [init; 1 << MAX_SELECTIVE_TAGS];
    let mut correct = 0u64;
    let not_in_path = TagOutcome::NotInPath.digit() as u8;
    for e in 0..bm.executions() {
        let row = bm.row(e);
        let mut idx = 0usize;
        for &c in cols {
            idx = (idx << 1) | usize::from(row[c] != not_in_path);
        }
        let taken = bm.taken(e);
        if counters[idx].predict_taken() == taken {
            correct += 1;
        }
        counters[idx].train(taken);
    }
    correct
}

/// Per-branch stats of a *presence-only* selective history: the oracle's
/// chosen `k`-tag sets re-scored with direction information removed
/// (§3.1's in-path correlation, isolated).
///
/// The gap between [`OracleResult::selective_stats`] and this is the value
/// of knowing the correlated branches' *directions*; the gap between this
/// and ideal static is the value of knowing they were *on the path* at
/// all.
///
/// Branches whose chosen tags are missing from `matrix` (i.e. a matrix
/// built with a different configuration) fall back to the degenerate
/// single-counter score.
///
/// # Panics
///
/// Panics if `k` is not in `1..=`[`MAX_SELECTIVE_TAGS`].
pub fn presence_stats(
    matrix: &OutcomeMatrix,
    oracle: &OracleResult,
    k: usize,
    init: SaturatingCounter,
) -> PerBranchStats {
    assert!(
        (1..=MAX_SELECTIVE_TAGS).contains(&k),
        "selective history size must be 1..={MAX_SELECTIVE_TAGS}"
    );
    let mut out = PerBranchStats::new();
    for (pc, sel) in oracle.iter() {
        let Some(bm) = matrix.branch(pc) else {
            continue;
        };
        let cols: Vec<usize> = sel.best[k - 1]
            .tags
            .iter()
            .filter_map(|tag| bm.tags().iter().position(|t| t == tag))
            .collect();
        let correct = score_columns_presence(bm, &cols, init);
        out.insert(
            pc,
            PredictionStats {
                predictions: sel.executions,
                correct,
            },
        );
    }
    out
}

fn select_for_branch(bm: &BranchMatrix, cfg: &OracleConfig) -> BranchSelection {
    let n_cands = bm.tags().len();
    let executions = bm.executions() as u64;
    let view = ColumnView::new(bm);

    // Size 1: always exhaustive (linear).
    let mut best1_cols: Vec<usize> = Vec::new();
    let mut best1 = score_columns(&view, &[], cfg.counter);
    for c in 0..n_cands {
        let s = score_columns(&view, &[c], cfg.counter);
        if s > best1 {
            best1 = s;
            best1_cols = vec![c];
        }
    }

    let exhaustive = match cfg.search {
        SearchStrategy::Exhaustive { max_candidates } => n_cands <= max_candidates,
        SearchStrategy::Greedy => false,
    };

    let (best2_cols, best2) = if exhaustive {
        best_exhaustive(&view, n_cands, 2, cfg.counter)
    } else {
        best_greedy_step(&view, &best1_cols, best1, n_cands, cfg.counter)
    };
    let (best2_cols, best2) = keep_better((best1_cols.clone(), best1), (best2_cols, best2));

    let (best3_cols, best3) = if exhaustive {
        best_exhaustive(&view, n_cands, 3, cfg.counter)
    } else {
        best_greedy_step(&view, &best2_cols, best2, n_cands, cfg.counter)
    };
    let (best3_cols, best3) = keep_better((best2_cols.clone(), best2), (best3_cols, best3));

    let to_score = |cols: &[usize], correct: u64| TagSetScore {
        tags: cols.iter().map(|&c| bm.tags()[c]).collect(),
        correct,
    };
    BranchSelection {
        executions,
        best: [
            to_score(&best1_cols, best1),
            to_score(&best2_cols, best2),
            to_score(&best3_cols, best3),
        ],
    }
}

/// Greedy forward step: extend `base` with the single column that improves
/// its score most.
fn best_greedy_step(
    view: &ColumnView<'_>,
    base: &[usize],
    base_score: u64,
    n_cands: usize,
    init: SaturatingCounter,
) -> (Vec<usize>, u64) {
    let mut best_cols = base.to_vec();
    let mut best = base_score;
    let mut trial = base.to_vec();
    trial.push(0);
    for c in 0..n_cands {
        if base.contains(&c) {
            continue;
        }
        *trial.last_mut().expect("trial set is non-empty") = c;
        let s = score_columns(view, &trial, init);
        if s > best {
            best = s;
            best_cols = trial.clone();
        }
    }
    (best_cols, best)
}

/// Exhaustive search over all subsets of exactly `size` columns.
fn best_exhaustive(
    view: &ColumnView<'_>,
    n_cands: usize,
    size: usize,
    init: SaturatingCounter,
) -> (Vec<usize>, u64) {
    let mut best_cols: Vec<usize> = Vec::new();
    let mut best = 0u64;
    let mut combo = vec![0usize; size];
    if n_cands < size {
        return (Vec::new(), 0);
    }
    // Iterative k-combination enumeration.
    for (i, slot) in combo.iter_mut().enumerate() {
        *slot = i;
    }
    loop {
        let s = score_columns(view, &combo, init);
        if s > best {
            best = s;
            best_cols = combo.clone();
        }
        // Advance to the next combination.
        let mut i = size;
        loop {
            if i == 0 {
                return (best_cols, best);
            }
            i -= 1;
            if combo[i] < n_cands - (size - i) {
                combo[i] += 1;
                for j in i + 1..size {
                    combo[j] = combo[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Picks the higher-scoring of two scored sets; the smaller set wins ties
/// (adding an uninformative tag cannot beat leaving it out).
fn keep_better(a: (Vec<usize>, u64), b: (Vec<usize>, u64)) -> (Vec<usize>, u64) {
    if b.1 > a.1 {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{BranchRecord, TagScheme};

    /// X (0x300) = Y (0x100) AND Z (0x200); Y and Z pseudo-random.
    fn and_trace(n: usize) -> Trace {
        let mut recs = Vec::new();
        let mut state = 0x12345678u64;
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = (state >> 33) & 1 == 1;
            let z = (state >> 34) & 1 == 1;
            recs.push(BranchRecord::conditional(0x100, y));
            recs.push(BranchRecord::conditional(0x200, z));
            recs.push(BranchRecord::conditional(0x300, y && z));
        }
        Trace::from_records(recs)
    }

    #[test]
    fn one_tag_captures_half_of_and_correlation() {
        let oracle = OracleSelector::analyze(&and_trace(800), &OracleConfig::default());
        let sel = oracle.selection(0x300).expect("0x300 analyzed");
        // One tag (Y or Z): when that tag is not-taken X is not-taken
        // (100%); when taken, X follows the other ~50/50 branch, and the
        // counter settles on not-taken (P(taken)=0.5... biased play). The
        // 1-tag accuracy must clearly beat the 75% static floor... at least
        // exceed it.
        let acc1 = sel.best[0].correct as f64 / sel.executions as f64;
        assert!(acc1 > 0.70, "1-tag accuracy {acc1}");
    }

    #[test]
    fn two_tags_nail_the_and() {
        let oracle = OracleSelector::analyze(&and_trace(800), &OracleConfig::default());
        let sel = oracle.selection(0x300).expect("0x300 analyzed");
        let acc2 = sel.best[1].correct as f64 / sel.executions as f64;
        // Y and Z together determine X exactly; only counter warmup misses.
        assert!(acc2 > 0.97, "2-tag accuracy {acc2}");
        // And the chosen tags are recent instances of Y and Z.
        let pcs: Vec<Pc> = sel.best[1].tags.iter().map(|t| t.pc).collect();
        assert!(pcs.contains(&0x100) && pcs.contains(&0x200), "tags {pcs:?}");
    }

    #[test]
    fn scores_monotone_in_k() {
        let oracle = OracleSelector::analyze(&and_trace(500), &OracleConfig::default());
        for (_, sel) in oracle.iter() {
            assert!(sel.best[1].correct >= sel.best[0].correct);
            assert!(sel.best[2].correct >= sel.best[1].correct);
        }
        assert!(oracle.accuracy(3) >= oracle.accuracy(1));
    }

    #[test]
    fn exhaustive_at_least_matches_greedy() {
        let trace = and_trace(400);
        let cfg_g = OracleConfig::default();
        let cfg_e = OracleConfig {
            search: SearchStrategy::Exhaustive { max_candidates: 24 },
            candidate_cap: 16,
            ..OracleConfig::default()
        };
        let cands = TagCandidates::collect(&trace, 16, 16);
        let matrix = OutcomeMatrix::build(&trace, &cands, 16);
        let greedy = OracleSelector::analyze_matrix(&matrix, &cfg_g);
        let exhaustive = OracleSelector::analyze_matrix(&matrix, &cfg_e);
        for (pc, g) in greedy.iter() {
            let e = exhaustive.selection(pc).unwrap();
            assert!(e.best[2].correct >= g.best[2].correct, "branch {pc:#x}");
        }
    }

    #[test]
    fn selective_stats_totals() {
        let oracle = OracleSelector::analyze(&and_trace(300), &OracleConfig::default());
        let stats = oracle.selective_stats(2);
        assert_eq!(stats.total().predictions, 900);
        assert_eq!(stats.static_count(), 3);
        assert_eq!(oracle.branch_count(), 3);
    }

    #[test]
    #[should_panic(expected = "selective history size")]
    fn zero_k_rejected() {
        let oracle = OracleSelector::analyze(&and_trace(10), &OracleConfig::default());
        let _ = oracle.selective_stats(0);
    }

    #[test]
    fn presence_only_loses_direction_information() {
        // X copies Y, and Y is always in the path: presence carries no
        // information, direction carries everything.
        let trace = and_trace(600);
        let cfg = OracleConfig::default();
        let cands = crate::TagCandidates::collect(&trace, cfg.window, cfg.candidate_cap);
        let matrix = OutcomeMatrix::build(&trace, &cands, cfg.window);
        let oracle = OracleSelector::analyze_matrix(&matrix, &cfg);
        let full = oracle.selective_stats(2);
        let presence = presence_stats(&matrix, &oracle, 2, cfg.counter);
        // Same coverage...
        assert_eq!(full.total().predictions, presence.total().predictions);
        // ...but the AND branch needs directions.
        let x_full = full.get(0x300).unwrap();
        let x_presence = presence.get(0x300).unwrap();
        assert!(
            x_full.correct > x_presence.correct,
            "full {} vs presence {}",
            x_full.correct,
            x_presence.correct
        );
    }

    #[test]
    fn presence_captures_in_path_correlation() {
        // Figure 2 in its purest form: control routes to subroutine A or B
        // via a *call* (not a conditional branch), so no prior branch's
        // direction encodes the condition — only which branch was on the
        // path. Branch X at the join repeats the condition; the back-edge
        // lets the iteration scheme name "V executed this iteration".
        use bp_trace::Recorder;
        let mut rec = Recorder::new();
        let mut state = 3u64;
        for _ in 0..600 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let cond = (state >> 39) & 1 == 1;
            let noise = state & 4 != 0;
            if cond {
                rec.call(0x50, 0x1000);
                rec.cond(0x200, noise); // branch V, direction pure noise
                rec.ret(0x1010);
            } else {
                rec.call(0x50, 0x2000);
                rec.cond(0x250, noise); // branch W, direction pure noise
                rec.ret(0x2010);
            }
            rec.cond(0x300, cond); // X: decided by *which* path ran
            rec.loop_back(0x310, true);
        }
        let trace = rec.into_trace();
        let cfg = OracleConfig::default();
        let cands = crate::TagCandidates::collect(&trace, cfg.window, cfg.candidate_cap);
        let matrix = OutcomeMatrix::build(&trace, &cands, cfg.window);
        let oracle = OracleSelector::analyze_matrix(&matrix, &cfg);

        // The ternary oracle finds the in-path tag (score ≈ perfect)...
        let sel = oracle.selection(0x300).unwrap();
        let full_acc = sel.best[0].correct as f64 / sel.executions as f64;
        assert!(full_acc > 0.95, "full accuracy {full_acc}");
        // ...and presence alone preserves it: the chosen tag's direction
        // carries no information, its presence carries all of it.
        let presence = presence_stats(&matrix, &oracle, 1, cfg.counter);
        let x = presence.get(0x300).unwrap();
        assert!(x.accuracy() > 0.95, "presence accuracy {}", x.accuracy());
    }

    #[test]
    fn iteration_tags_useful_for_loop_carried_correlation() {
        // A 3-iteration loop: the branch in iteration i copies what a
        // header branch decided in that same iteration... construct: header
        // H decides d, then body branch B repeats d, with a back-edge
        // between iterations.
        let mut recs = Vec::new();
        let mut state = 7u64;
        for _ in 0..400 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let d = (state >> 40) & 1 == 1;
            recs.push(BranchRecord::conditional(0x100, d));
            recs.push(BranchRecord::conditional(0x200, d));
            recs.push(BranchRecord::conditional(0x300, true).with_target(0x100));
            // back-edge
        }
        let trace = Trace::from_records(recs);
        let oracle = OracleSelector::analyze(&trace, &OracleConfig::default());
        let sel = oracle.selection(0x200).unwrap();
        let acc = sel.best[0].correct as f64 / sel.executions as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        // Both tagging schemes can name the header; just verify the scheme
        // field is populated sanely.
        assert!(sel.best[0]
            .tags
            .iter()
            .all(|t| matches!(t.scheme, TagScheme::Occurrence | TagScheme::Iteration)));
    }
}

use bp_predictors::{BranchSite, Predictor};
use bp_trace::Trace;

use serde::{Deserialize, Serialize};

/// Distribution of gaps between consecutive mispredictions, plus accuracy
/// over trace deciles.
///
/// Two predictors with the same accuracy can cost very differently: evenly
/// scattered mispredictions keep a pipeline in a permanent stutter, while
/// *bursty* mispredictions (long clean runs, clustered misses) overlap
/// their penalties. The decile series doubles as a warmup curve — a
/// predictor still training shows a rising accuracy trend across deciles,
/// which is exactly the effect EXPERIMENTS.md blames for the reproduction's
/// compressed "w/ Corr" gains.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MispredictProfile {
    /// Gap lengths between consecutive mispredictions (first gap measured
    /// from trace start), in predictions.
    gaps: Vec<u64>,
    /// (correct, total) per trace decile.
    deciles: [(u64, u64); 10],
    total: u64,
    correct: u64,
}

impl MispredictProfile {
    /// Runs `predictor` over `trace` (predict-then-train, like
    /// [`bp_predictors::simulate`]) and records the misprediction
    /// structure.
    pub fn measure<P: Predictor + ?Sized>(predictor: &mut P, trace: &Trace) -> Self {
        let n = trace.conditional_count() as u64;
        let mut profile = MispredictProfile {
            total: n,
            ..MispredictProfile::default()
        };
        let mut since_last_miss = 0u64;
        for (index, rec) in trace.conditionals().enumerate() {
            let site = BranchSite::from(rec);
            let hit = predictor.predict(site) == rec.taken;
            predictor.update(site, rec.taken);

            let decile = (index as u64 * 10).checked_div(n).unwrap_or(0).min(9) as usize;
            profile.deciles[decile].1 += 1;
            if hit {
                profile.deciles[decile].0 += 1;
                profile.correct += 1;
                since_last_miss += 1;
            } else {
                profile.gaps.push(since_last_miss);
                since_last_miss = 0;
            }
        }
        profile
    }

    /// Overall accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Number of mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.gaps.len() as u64
    }

    /// Mean clean run length between mispredictions (predictions per miss);
    /// zero with no mispredictions.
    pub fn mean_gap(&self) -> f64 {
        if self.gaps.is_empty() {
            0.0
        } else {
            self.gaps.iter().sum::<u64>() as f64 / self.gaps.len() as f64
        }
    }

    /// Fraction of mispredictions arriving within `burst` predictions of
    /// the previous one — the burstiness measure.
    pub fn burst_fraction(&self, burst: u64) -> f64 {
        if self.gaps.is_empty() {
            return 0.0;
        }
        self.gaps.iter().filter(|&&g| g < burst).count() as f64 / self.gaps.len() as f64
    }

    /// Accuracy within decile `d` (0..=9) of the trace.
    ///
    /// # Panics
    ///
    /// Panics if `d > 9`.
    pub fn decile_accuracy(&self, d: usize) -> f64 {
        let (correct, total) = self.deciles[d];
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Accuracy of the last decile minus the first — positive values mean
    /// the predictor was still warming up early in the trace.
    pub fn warmup_gain(&self) -> f64 {
        self.decile_accuracy(9) - self.decile_accuracy(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_predictors::{Gshare, Smith, StaticTaken};
    use bp_trace::BranchRecord;

    #[test]
    fn decile_counts_cover_the_trace() {
        let trace: Trace = (0..1000)
            .map(|i| BranchRecord::conditional(0x10 + (i % 7) * 4, i % 3 != 0))
            .collect();
        let p = MispredictProfile::measure(&mut Gshare::new(8), &trace);
        let total: u64 = (0..10).map(|d| p.deciles[d].1).sum();
        assert_eq!(total, 1000);
        let correct: u64 = (0..10).map(|d| p.deciles[d].0).sum();
        assert_eq!(correct, p.correct);
        assert!((p.accuracy() - correct as f64 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_visible_for_learnable_pattern() {
        // A period-63 LFSR stream: 63 distinct history contexts to train,
        // so the first decile (~200 branches) pays heavily and the tail is
        // near-perfect.
        let mut lfsr = 0x2Au8;
        let trace: Trace = (0..2000)
            .map(|_| {
                let bit = lfsr & 1 != 0;
                lfsr >>= 1;
                if bit {
                    lfsr ^= 0x30;
                }
                BranchRecord::conditional(0x40, bit)
            })
            .collect();
        let p = MispredictProfile::measure(&mut Gshare::new(12), &trace);
        assert!(p.warmup_gain() > 0.1, "warmup gain {}", p.warmup_gain());
        assert!(
            p.decile_accuracy(9) > 0.95,
            "late accuracy {}",
            p.decile_accuracy(9)
        );
    }

    #[test]
    fn gaps_reflect_miss_spacing() {
        // StaticTaken on a strict 4-periodic branch (TTTN): one miss every
        // 4 predictions, gap always 3.
        let trace: Trace = (0..400)
            .map(|i| BranchRecord::conditional(0x10, i % 4 != 3))
            .collect();
        let p = MispredictProfile::measure(&mut StaticTaken, &trace);
        assert_eq!(p.mispredictions(), 100);
        assert!((p.mean_gap() - 3.0).abs() < 0.01);
        assert_eq!(p.burst_fraction(3), 0.0);
        assert_eq!(p.burst_fraction(4), 1.0);
    }

    #[test]
    fn perfect_prediction_has_no_gaps() {
        let trace: Trace = (0..100)
            .map(|_| BranchRecord::conditional(0x10, true))
            .collect();
        // Warm a Smith counter first? Initial weakly-taken already predicts
        // taken, so zero misses.
        let p = MispredictProfile::measure(&mut Smith::default(), &trace);
        assert_eq!(p.mispredictions(), 0);
        assert_eq!(p.mean_gap(), 0.0);
        assert_eq!(p.burst_fraction(10), 0.0);
        assert_eq!(p.warmup_gain(), 0.0);
    }
}

use std::collections::HashMap;

use bp_trace::fx::FxHashMap;
use bp_trace::io::TraceIoError;
use bp_trace::{InstanceTag, PathWindow, Pc, TagScheme, Trace, TraceSource};

/// The candidate correlated-branch instances considered for each static
/// branch.
///
/// For every dynamic execution of a branch *X*, the instances visible in the
/// path window (under both tagging schemes of §3.2) are potential correlated
/// branches. A tag can only carry information when it is actually in the
/// path, so candidates are ranked by how often they were visible across
/// *X*'s executions and the list is capped — the paper's oracle has
/// unspecified scope, and an explicit visibility-ranked cap keeps the search
/// tractable while retaining every frequently-available instance (see
/// DESIGN.md §2).
#[derive(Debug, Clone, Default)]
pub struct TagCandidates {
    per_branch: HashMap<Pc, Vec<InstanceTag>>,
}

impl TagCandidates {
    /// Scans `trace` with a path window of `window` branches and keeps, for
    /// each static branch, the `cap` most-often-visible candidate tags.
    ///
    /// Ties in visibility break deterministically (by tag order) so results
    /// are reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `cap` is zero.
    pub fn collect(trace: &Trace, window: usize, cap: usize) -> Self {
        TagCandidates::collect_with_schemes(trace, window, cap, &TagScheme::ALL)
    }

    /// As [`TagCandidates::collect`], restricted to the given tagging
    /// schemes — the §3.2 ablation: the paper argues both schemes are
    /// needed because each fails to name some instances.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `cap` is zero, or `schemes` is empty.
    pub fn collect_with_schemes(
        trace: &Trace,
        window: usize,
        cap: usize,
        schemes: &[TagScheme],
    ) -> Self {
        TagCandidates::collect_from_source(trace, window, cap, schemes)
            .expect("in-memory traces cannot fail to scan")
    }

    /// As [`TagCandidates::collect_with_schemes`], consuming any
    /// [`TraceSource`] in one streaming scan — identical output to the
    /// in-memory path on the same record sequence.
    ///
    /// # Errors
    ///
    /// Propagates the source's scan error.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `cap` is zero, or `schemes` is empty.
    pub fn collect_from_source<T: TraceSource + ?Sized>(
        source: &T,
        window: usize,
        cap: usize,
        schemes: &[TagScheme],
    ) -> Result<Self, TraceIoError> {
        assert!(cap > 0, "candidate cap must be positive");
        assert!(!schemes.is_empty(), "need at least one tagging scheme");
        let mut counts: FxHashMap<Pc, FxHashMap<InstanceTag, u64>> = FxHashMap::default();
        let mut path = PathWindow::new(window);
        let mut visible = Vec::new();
        source.scan(&mut |chunk| {
            for rec in chunk {
                if rec.is_conditional() {
                    path.visible_tags(&mut visible);
                    let branch_counts = counts.entry(rec.pc).or_default();
                    for (tag, _) in &visible {
                        if schemes.contains(&tag.scheme) {
                            *branch_counts.entry(*tag).or_insert(0) += 1;
                        }
                    }
                }
                path.push(rec);
            }
        })?;

        Ok(TagCandidates {
            per_branch: rank_counts(counts, cap).collect(),
        })
    }

    /// As [`TagCandidates::collect_from_source`], built with the
    /// pipelined chunk executor: `shards` workers each replicate the
    /// [`PathWindow`] over the full record sequence but count visibility
    /// only for the branches their shard owns, and every partial count
    /// map is ranked by the one shared ranking function — so the merged
    /// result is identical to the serial build for every shard count.
    ///
    /// # Errors
    ///
    /// Propagates the source's scan error.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `cap` is zero, or `schemes` is empty.
    pub fn collect_from_source_sharded<T: TraceSource + Sync + ?Sized>(
        source: &T,
        window: usize,
        cap: usize,
        schemes: &[TagScheme],
        shards: usize,
    ) -> Result<Self, TraceIoError> {
        assert!(cap > 0, "candidate cap must be positive");
        assert!(!schemes.is_empty(), "need at least one tagging scheme");
        let shards = shards.max(1);
        let parts = bp_trace::scan_sharded(source, shards, |shard, chunks| {
            let mut counts: FxHashMap<Pc, FxHashMap<InstanceTag, u64>> = FxHashMap::default();
            let mut path = PathWindow::new(window);
            let mut visible = Vec::new();
            for chunk in chunks {
                for rec in chunk.iter() {
                    if rec.is_conditional() && bp_trace::shard_of(rec.pc, shards) == shard {
                        path.visible_tags(&mut visible);
                        let branch_counts = counts.entry(rec.pc).or_default();
                        for (tag, _) in &visible {
                            if schemes.contains(&tag.scheme) {
                                *branch_counts.entry(*tag).or_insert(0) += 1;
                            }
                        }
                    }
                    path.push(rec);
                }
            }
            counts
        })?;
        let mut per_branch = HashMap::new();
        for counts in parts {
            per_branch.extend(rank_counts(counts, cap));
        }
        Ok(TagCandidates { per_branch })
    }

    /// Candidate tags for `pc`, most-visible first; empty if the branch
    /// never executed.
    pub fn tags(&self, pc: Pc) -> &[InstanceTag] {
        self.per_branch.get(&pc).map_or(&[], Vec::as_slice)
    }

    /// Number of static branches with candidate lists.
    pub fn branch_count(&self) -> usize {
        self.per_branch.len()
    }

    /// Iterates `(pc, candidate tags)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &[InstanceTag])> {
        self.per_branch.iter().map(|(pc, v)| (*pc, v.as_slice()))
    }
}

/// Ranks raw visibility counts into capped candidate lists — the one
/// place the (count desc, tag asc) ordering lives, shared by the serial
/// and sharded builders so their outputs cannot drift.
fn rank_counts(
    counts: FxHashMap<Pc, FxHashMap<InstanceTag, u64>>,
    cap: usize,
) -> impl Iterator<Item = (Pc, Vec<InstanceTag>)> {
    counts.into_iter().map(move |(pc, tag_counts)| {
        let mut ranked: Vec<(InstanceTag, u64)> = tag_counts.into_iter().collect();
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(cap);
        (pc, ranked.into_iter().map(|(tag, _)| tag).collect())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{BranchRecord, TagScheme};

    fn pair_trace(n: usize) -> Trace {
        let mut recs = Vec::new();
        for i in 0..n {
            recs.push(BranchRecord::conditional(0x100, i % 2 == 0));
            recs.push(BranchRecord::conditional(0x200, i % 2 == 0));
        }
        Trace::from_records(recs)
    }

    #[test]
    fn first_branch_of_pair_sees_prior_instances() {
        let c = TagCandidates::collect(&pair_trace(50), 8, 16);
        assert_eq!(c.branch_count(), 2);
        // 0x200 always has the most recent 0x100 visible.
        let tags = c.tags(0x200);
        assert!(tags.contains(&InstanceTag::occurrence(0x100, 0)));
        // Both schemes are represented.
        assert!(tags.iter().any(|t| t.scheme == TagScheme::Iteration));
    }

    #[test]
    fn cap_limits_list_and_keeps_most_visible() {
        let full = TagCandidates::collect(&pair_trace(50), 8, 64);
        let capped = TagCandidates::collect(&pair_trace(50), 8, 2);
        assert!(full.tags(0x200).len() > 2);
        assert_eq!(capped.tags(0x200).len(), 2);
        // The capped list is a prefix of the full ranking.
        assert_eq!(&full.tags(0x200)[..2], capped.tags(0x200));
    }

    #[test]
    fn sharded_collection_is_identical_for_every_shard_count() {
        let trace = pair_trace(200);
        let serial = TagCandidates::collect(&trace, 8, 6);
        for shards in [1, 2, 7, 64] {
            let sharded =
                TagCandidates::collect_from_source_sharded(&trace, 8, 6, &TagScheme::ALL, shards)
                    .expect("in-memory scan");
            assert_eq!(
                sharded.branch_count(),
                serial.branch_count(),
                "{shards} shards"
            );
            for (pc, tags) in serial.iter() {
                assert_eq!(sharded.tags(pc), tags, "{shards} shards pc {pc:#x}");
            }
        }
    }

    #[test]
    fn unknown_branch_has_no_tags() {
        let c = TagCandidates::collect(&pair_trace(5), 8, 4);
        assert!(c.tags(0xdead).is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let a = TagCandidates::collect(&pair_trace(40), 16, 8);
        let b = TagCandidates::collect(&pair_trace(40), 16, 8);
        assert_eq!(a.tags(0x100), b.tags(0x100));
        assert_eq!(a.tags(0x200), b.tags(0x200));
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn zero_cap_rejected() {
        let _ = TagCandidates::collect(&Trace::new(), 8, 0);
    }

    #[test]
    #[should_panic(expected = "scheme")]
    fn empty_schemes_rejected() {
        let _ = TagCandidates::collect_with_schemes(&Trace::new(), 8, 4, &[]);
    }

    #[test]
    fn scheme_restriction_filters_tags() {
        let trace = pair_trace(30);
        let occ = TagCandidates::collect_with_schemes(&trace, 8, 32, &[TagScheme::Occurrence]);
        let iter = TagCandidates::collect_with_schemes(&trace, 8, 32, &[TagScheme::Iteration]);
        assert!(occ
            .tags(0x200)
            .iter()
            .all(|t| t.scheme == TagScheme::Occurrence));
        assert!(iter
            .tags(0x200)
            .iter()
            .all(|t| t.scheme == TagScheme::Iteration));
        assert!(!occ.tags(0x200).is_empty());
        assert!(!iter.tags(0x200).is_empty());
        // Both-schemes collection is the union, pre-cap.
        let both = TagCandidates::collect_with_schemes(&trace, 8, 64, &TagScheme::ALL);
        for t in occ.tags(0x200) {
            assert!(both.tags(0x200).contains(t));
        }
    }
}

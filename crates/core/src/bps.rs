//! `.bps` codec for the oracle's [`OutcomeMatrix`] (kind 2).
//!
//! The matrix is the expensive artifact of the whole analysis — one
//! streaming pass over the trace per (window, cap) configuration — so it
//! is the one most worth persisting. The codec reuses the common `.bps`
//! machinery from [`bp_trace::bps`] (magic/kind header, declared length,
//! fingerprint sidecar, [`BpsBytes`] mmap-or-read backing) and adds the
//! kind-specific layout:
//!
//! ```text
//! word 0   magic "BPS1" + kind byte 2 + 3 zero bytes
//! word 1   total file length in BYTES
//! word 2   static branch count B
//! word 3   path-window length
//! word 4   total dynamic conditional executions
//! 4 words per branch, sorted by pc:
//!          [pc, executions, candidate tag count t, word offset]
//! then per branch, at its word offset:
//!          2 words per tag          [tag pc, index | scheme << 32]
//!          taken plane              W = executions.div_ceil(64) words
//!          t in-path planes         t × W words
//!          t direction planes       t × W words
//! ```
//!
//! The sidecar's content fingerprint covers the header, the index, and
//! every branch's tag words — everything that gives the planes *meaning*
//! — while the planes themselves ride on the declared-length, offset and
//! padding checks, exactly like the streams codec. All structure is
//! validated before any plane view is constructed, so re-opening a
//! 100M-branch matrix is a header walk plus one `mmap(2)`.

use std::fs::File;
use std::io::Write;
use std::path::Path;

use bp_trace::bps::{fnv_words, header_word, BpsBytes, BpsError, Words, MATRIX_KIND};
use bp_trace::fx::FxHashMap;
use bp_trace::sidecar::{Sidecar, CONTENT_OFFSET};
use bp_trace::{InstanceTag, Pc, TagScheme};

use crate::matrix::{BranchMatrix, OutcomeMatrix};

const HEADER_WORDS: u64 = 5;
const INDEX_WORDS: u64 = 4;

fn scheme_code(scheme: TagScheme) -> u64 {
    match scheme {
        TagScheme::Occurrence => 0,
        TagScheme::Iteration => 1,
    }
}

/// An [`OutcomeMatrix`] re-opened from a `.bps` artifact.
#[derive(Debug)]
pub struct OpenedMatrix {
    /// The matrix, its planes viewing the opened file.
    pub matrix: OutcomeMatrix,
    /// Whether the planes are kernel-mapped (vs decoded into memory).
    pub mapped: bool,
}

/// Writes `matrix` as a `.bps` artifact at `path` (tmp + rename, then the
/// fingerprint sidecar), so a crash never leaves a half-written file
/// under the real name.
///
/// # Errors
///
/// Filesystem errors from the write or rename.
pub fn write_matrix(path: &Path, matrix: &OutcomeMatrix, config: u64) -> std::io::Result<()> {
    let mut branches: Vec<(Pc, &BranchMatrix)> = matrix.iter().collect();
    branches.sort_unstable_by_key(|&(pc, _)| pc);

    let index_base = HEADER_WORDS + INDEX_WORDS * branches.len() as u64;
    let mut meta: Vec<u64> = Vec::with_capacity(index_base as usize);
    meta.extend([
        header_word(MATRIX_KIND),
        0,
        branches.len() as u64,
        matrix.window() as u64,
        matrix.dynamic_count(),
    ]);
    let mut off = index_base;
    for &(pc, bm) in &branches {
        let t = bm.tags().len() as u64;
        let w = bm.words() as u64;
        meta.extend([pc, bm.executions() as u64, t, off]);
        off += 2 * t + w * (1 + 2 * t);
    }
    meta[1] = off * 8; // total file length in bytes

    let tmp = path.with_extension("bps.tmp");
    let mut out = std::io::BufWriter::new(File::create(&tmp)?);
    for w in &meta {
        out.write_all(&w.to_le_bytes())?;
    }
    let mut content = fnv_words(CONTENT_OFFSET, &meta);
    let mut tag_words: Vec<u64> = Vec::new();
    for &(_, bm) in &branches {
        tag_words.clear();
        for tag in bm.tags() {
            tag_words.push(tag.pc);
            tag_words.push(u64::from(tag.index) | scheme_code(tag.scheme) << 32);
        }
        content = fnv_words(content, &tag_words);
        for w in &tag_words {
            out.write_all(&w.to_le_bytes())?;
        }
        for w in bm.taken_plane() {
            out.write_all(&w.to_le_bytes())?;
        }
        for c in 0..bm.tags().len() {
            for w in bm.inpath_plane(c) {
                out.write_all(&w.to_le_bytes())?;
            }
        }
        for c in 0..bm.tags().len() {
            for w in bm.dir_plane(c) {
                out.write_all(&w.to_le_bytes())?;
            }
        }
    }
    out.into_inner().map_err(|e| e.into_error())?.sync_all()?;
    std::fs::rename(&tmp, path)?;

    Sidecar { config, content }.write(path)
}

/// Re-opens a matrix artifact written by [`write_matrix`], validating
/// sidecar fingerprints and the whole index (sorted pcs, every region
/// offset and extent, tail-padding bits, the dynamic total, tag
/// encodings) before any plane view is constructed.
///
/// # Errors
///
/// Every rot mode is a distinct [`BpsError`]; see [`bp_trace::bps`].
pub fn open_matrix(path: &Path, config: u64) -> Result<OpenedMatrix, BpsError> {
    let sidecar = Sidecar::load(path)?;
    if sidecar.config != config {
        return Err(BpsError::ConfigMismatch);
    }
    let bytes = BpsBytes::open(path, MATRIX_KIND)?;
    let words = bytes.words();
    let total_words = words.len() as u64;
    if total_words < HEADER_WORDS {
        return Err(BpsError::Truncated("missing matrix header"));
    }
    let branch_count = words[2];
    let window = usize::try_from(words[3])
        .map_err(|_| BpsError::Corrupt("window length overflows memory"))?;
    let total_dynamic = words[4];
    let index_end = branch_count
        .checked_mul(INDEX_WORDS)
        .and_then(|iw| iw.checked_add(HEADER_WORDS))
        .ok_or(BpsError::Corrupt("branch count overflows the index"))?;
    if index_end > total_words {
        return Err(BpsError::Truncated("index past end of file"));
    }

    // Structural walk: offsets, extents and padding, accumulating the
    // content fingerprint over the header, index and tag words as the
    // regions are visited (their positions fall out of the walk).
    let mut content = fnv_words(CONTENT_OFFSET, &words[..index_end as usize]);
    let mut expected_off = index_end;
    let mut dynamic_sum = 0u64;
    let mut prev_pc: Option<Pc> = None;
    for i in 0..branch_count as usize {
        let at = HEADER_WORDS as usize + INDEX_WORDS as usize * i;
        let pc = words[at];
        let executions = words[at + 1];
        let tag_count = words[at + 2];
        let off = words[at + 3];
        if prev_pc.is_some_and(|p| p >= pc) {
            return Err(BpsError::Corrupt("index not sorted by pc"));
        }
        prev_pc = Some(pc);
        if off != expected_off {
            return Err(BpsError::Corrupt(
                "branch region offset does not match index",
            ));
        }
        usize::try_from(executions)
            .map_err(|_| BpsError::Corrupt("execution count overflows memory"))?;
        let plane_words = executions.div_ceil(64);
        let region = (|| {
            let tw = tag_count.checked_mul(2)?;
            let planes = tw.checked_add(1)?.checked_mul(plane_words)?;
            tw.checked_add(planes)
        })()
        .ok_or(BpsError::Corrupt("branch region overflows the file"))?;
        expected_off = expected_off
            .checked_add(region)
            .ok_or(BpsError::Corrupt("branch region overflows the file"))?;
        if expected_off > total_words {
            return Err(BpsError::Truncated("branch region past end of file"));
        }
        dynamic_sum = dynamic_sum
            .checked_add(executions)
            .ok_or(BpsError::Corrupt("dynamic count overflows"))?;
        let tag_end = (off + tag_count * 2) as usize;
        content = fnv_words(content, &words[off as usize..tag_end]);
        // Bits past the declared execution count must be zero in every
        // plane, as the builders guarantee — a lying count would silently
        // corrupt popcounts and run-length replays.
        let tail_bits = executions % 64;
        if tail_bits != 0 {
            let mask = !((1u64 << tail_bits) - 1);
            for p in 0..1 + 2 * tag_count {
                let last = words[(off + 2 * tag_count + (p + 1) * plane_words - 1) as usize];
                if last & mask != 0 {
                    return Err(BpsError::Corrupt("padding bits set past execution count"));
                }
            }
        }
    }
    if expected_off != total_words {
        return Err(BpsError::Corrupt("file length does not match the regions"));
    }
    if dynamic_sum != total_dynamic {
        return Err(BpsError::Corrupt(
            "dynamic total does not match the branches",
        ));
    }
    if content != sidecar.content {
        return Err(BpsError::ContentMismatch);
    }

    let mapped = bytes.is_mapped();
    let mut branches: FxHashMap<Pc, BranchMatrix> =
        FxHashMap::with_capacity_and_hasher(branch_count as usize, Default::default());
    for i in 0..branch_count as usize {
        let at = HEADER_WORDS as usize + INDEX_WORDS as usize * i;
        let pc = words[at];
        let executions = words[at + 1] as usize;
        let tag_count = words[at + 2] as usize;
        let off = words[at + 3] as usize;
        let w = executions.div_ceil(64);
        let mut tags = Vec::with_capacity(tag_count);
        for t in 0..tag_count {
            let tag_pc = words[off + 2 * t];
            let packed = words[off + 2 * t + 1];
            let index = u16::try_from(packed & 0xffff_ffff)
                .map_err(|_| BpsError::Corrupt("tag index out of range"))?;
            let scheme = match packed >> 32 {
                0 => TagScheme::Occurrence,
                1 => TagScheme::Iteration,
                _ => return Err(BpsError::Corrupt("unknown tag scheme")),
            };
            tags.push(InstanceTag {
                pc: tag_pc,
                index,
                scheme,
            });
        }
        let plane_base = off + 2 * tag_count;
        let taken = Words::mapped(bytes.clone(), plane_base, w);
        let inpath = (0..tag_count)
            .map(|c| Words::mapped(bytes.clone(), plane_base + w * (1 + c), w))
            .collect();
        let dir = (0..tag_count)
            .map(|c| Words::mapped(bytes.clone(), plane_base + w * (1 + tag_count + c), w))
            .collect();
        branches.insert(
            pc,
            BranchMatrix::from_words(tags, executions, inpath, dir, taken),
        );
    }
    Ok(OpenedMatrix {
        matrix: OutcomeMatrix::from_parts(branches, window),
        mapped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::TagCandidates;
    use bp_trace::{BranchRecord, Trace};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bp-matrix-bps-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn sample_matrix() -> OutcomeMatrix {
        let mut recs = Vec::new();
        let mut state = 0xdead_beefu64;
        for _ in 0..700 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (state >> 33) & 1 == 1;
            let b = (state >> 34) & 1 == 1;
            recs.push(BranchRecord::conditional(0x100, a));
            recs.push(BranchRecord::conditional(0x200, b));
            recs.push(BranchRecord::conditional(0x300, a && b));
        }
        let trace = Trace::from_records(recs);
        let cands = TagCandidates::collect(&trace, 16, 12);
        OutcomeMatrix::build(&trace, &cands, 16)
    }

    #[test]
    fn matrix_round_trips_through_bps() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("m.matrix.bps");
        let built = sample_matrix();
        write_matrix(&path, &built, 0xfeed).expect("write");
        let opened = open_matrix(&path, 0xfeed).expect("open");
        assert_eq!(opened.matrix, built);
        assert_eq!(opened.mapped, bp_trace::mmap::mmap_supported());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopened_matrix_scores_identically() {
        use crate::oracle::{OracleConfig, OracleSelector};
        let dir = temp_dir("score");
        let path = dir.join("m.matrix.bps");
        let built = sample_matrix();
        write_matrix(&path, &built, 1).expect("write");
        let opened = open_matrix(&path, 1).expect("open");
        let cfg = OracleConfig::default();
        let a = OracleSelector::analyze_matrix(&built, &cfg);
        let b = OracleSelector::analyze_matrix(&opened.matrix, &cfg);
        for (pc, sa) in a.iter() {
            let sb = b.selection(pc).expect("branch present");
            for k in 0..3 {
                assert_eq!(
                    sa.best[k].correct, sb.best[k].correct,
                    "branch {pc:#x} k {k}"
                );
                assert_eq!(sa.best[k].tags, sb.best[k].tags, "branch {pc:#x} k {k}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_mismatch_is_typed() {
        let dir = temp_dir("config");
        let path = dir.join("m.matrix.bps");
        write_matrix(&path, &sample_matrix(), 1).expect("write");
        assert!(matches!(
            open_matrix(&path, 2),
            Err(BpsError::ConfigMismatch)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_boundary_is_a_typed_error() {
        let dir = temp_dir("truncation");
        let path = dir.join("m.matrix.bps");
        write_matrix(&path, &sample_matrix(), 3).expect("write");
        let bytes = std::fs::read(&path).expect("read back");
        // Word-strided cuts keep the test fast; the byte-level boundary
        // behavior is shared with the streams codec and covered there.
        for cut in (0..bytes.len()).step_by(8) {
            std::fs::write(&path, &bytes[..cut]).expect("write truncated");
            let err = open_matrix(&path, 3).expect_err("truncated artifact must not open");
            assert!(
                matches!(
                    err,
                    BpsError::Truncated(_) | BpsError::Corrupt(_) | BpsError::Io(_)
                ),
                "cut at {cut} gave {err:?}"
            );
        }
        std::fs::write(&path, &bytes).expect("restore");
        assert!(open_matrix(&path, 3).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_tag_words_are_content_mismatch() {
        let dir = temp_dir("tagflip");
        let path = dir.join("m.matrix.bps");
        write_matrix(&path, &sample_matrix(), 4).expect("write");
        let bytes = std::fs::read(&path).expect("read back");
        let branch_count = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        // First branch's first tag word sits right after the index.
        let tag_at = (HEADER_WORDS as usize + INDEX_WORDS as usize * branch_count) * 8;
        let mut bad = bytes.clone();
        bad[tag_at] ^= 0xff;
        std::fs::write(&path, &bad).expect("write");
        assert!(matches!(
            open_matrix(&path, 4),
            Err(BpsError::ContentMismatch)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_matrix_round_trips() {
        let dir = temp_dir("empty");
        let path = dir.join("empty.matrix.bps");
        let built = OutcomeMatrix::build(&Trace::new(), &TagCandidates::default(), 16);
        write_matrix(&path, &built, 9).expect("write");
        let opened = open_matrix(&path, 9).expect("open");
        assert_eq!(opened.matrix, built);
        std::fs::remove_dir_all(&dir).ok();
    }
}

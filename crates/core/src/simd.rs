//! Runtime-dispatched AVX2 variants of the two hot kernels: the shifted-
//! XNOR k-ago agreement sweep (`classify.rs`) and the plane-wise
//! saturating-counter replay (`oracle.rs`).
//!
//! Both kernels walk packed 64-execution words; the AVX2 paths walk four
//! words (256 executions) per iteration. Popcounts batch through the
//! `vpshufb` nibble-LUT + `vpsadbw` reduction, and the counter replay
//! tests whole 4-word blocks for outcome uniformity with `vptest` so the
//! common strongly-biased case collapses into a single O(1)
//! [`SaturatingCounter::train_run`] jump spanning 256 executions.
//!
//! Dispatch is by `is_x86_feature_detected!("avx2")` plus a minimum word
//! count ([`use_avx2`]); everything here is bit-exact against the portable
//! scalar kernels, which remain the only path on non-x86 targets and the
//! reference side of the conformance SIMD differential suite. This module
//! is the workspace's sole `unsafe` island — the intrinsics never touch
//! memory beyond the slices handed in, and every unsafe fn's caller checks
//! the AVX2 cpuid bit first.

use bp_predictors::SaturatingCounter;

use crate::matrix::BranchMatrix;
use crate::oracle::{tail_mask, tally_word, ternary_masks, MAX_PATTERNS};

/// Fewest plane words for which the AVX2 paths are worth their setup; below
/// this the scalar kernels win on latency anyway.
const MIN_WORDS: usize = 8;

/// `true` when the AVX2 kernels should handle a `words`-word plane walk.
#[inline]
pub(crate) fn use_avx2(words: usize) -> bool {
    words >= MIN_WORDS && avx2_available()
}

/// Whether the running CPU has AVX2 (always `false` off x86-64).
#[doc(hidden)]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// AVX2 k-ago agreement count over executions `[k, n)` — the vector twin
/// of `classify::kth_ago_body_scalar`, bit-exact by construction.
///
/// # Panics
///
/// Panics (via the x86 module's dispatch guard) if AVX2 is unavailable;
/// callers must check [`use_avx2`] first. Off x86-64 this is unreachable
/// because [`use_avx2`] is constant `false`.
#[doc(hidden)]
pub fn kth_ago_body_avx2(words: &[u64], n: usize, k: usize) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        assert!(avx2_available(), "AVX2 kernel called without AVX2");
        // SAFETY: the cpuid check above proves the target feature is
        // present at runtime.
        unsafe { x86::kth_ago_body(words, n, k) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (words, n, k);
        unreachable!("AVX2 kernel on a non-x86 target")
    }
}

/// AVX2 selective-history scorer — the vector twin of
/// `oracle::score_tag_set_scalar`, bit-exact by construction.
///
/// # Panics
///
/// As [`kth_ago_body_avx2`]: callers must check [`use_avx2`] first.
#[doc(hidden)]
pub fn score_tag_set_avx2(bm: &BranchMatrix, cols: &[usize], init: SaturatingCounter) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        assert!(avx2_available(), "AVX2 kernel called without AVX2");
        // SAFETY: the cpuid check above proves the target feature is
        // present at runtime.
        unsafe { x86::score_tag_set(bm, cols, init) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (bm, cols, init);
        unreachable!("AVX2 kernel on a non-x86 target")
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_andnot_si256,
        _mm256_extract_epi64, _mm256_loadu_si256, _mm256_or_si256, _mm256_set1_epi8,
        _mm256_setr_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_sll_epi64,
        _mm256_srl_epi64, _mm256_srli_epi16, _mm256_storeu_si256, _mm256_testc_si256,
        _mm256_testz_si256, _mm256_xor_si256, _mm_cvtsi32_si128, _pext_u64,
    };

    use bp_predictors::SaturatingCounter;

    use super::{tail_mask, tally_word, ternary_masks, MAX_PATTERNS};
    use crate::matrix::BranchMatrix;

    /// Unaligned 4-word load starting at `words[i]`.
    ///
    /// # Safety
    ///
    /// `i + 4 <= words.len()`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load4(words: &[u64], i: usize) -> __m256i {
        debug_assert!(i + 4 <= words.len());
        _mm256_loadu_si256(words.as_ptr().add(i).cast())
    }

    /// Per-lane popcount via the `vpshufb` nibble LUT, reduced per lane by
    /// `vpsadbw` against zero; returns the 4-lane vector of u64 counts.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_lanes(v: __m256i) -> __m256i {
        // Nibble LUT: popcount of 0x0..=0xF, repeated per 128-bit half.
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
        let nib = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        // Sum of absolute differences vs zero: horizontal byte sums into
        // each lane's low 16 bits.
        std::arch::x86_64::_mm256_sad_epu8(nib, _mm256_setzero_si256())
    }

    /// Sum of the four u64 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn lane_sum(v: __m256i) -> u64 {
        (_mm256_extract_epi64(v, 0) as u64)
            .wrapping_add(_mm256_extract_epi64(v, 1) as u64)
            .wrapping_add(_mm256_extract_epi64(v, 2) as u64)
            .wrapping_add(_mm256_extract_epi64(v, 3) as u64)
    }

    /// Total popcount of a 4-word vector.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_sum(v: __m256i) -> u64 {
        lane_sum(popcount_lanes(v))
    }

    /// K-ago agreement count over executions `[k, n)`.
    ///
    /// The valid vector region is the words that are (a) entirely at or
    /// past execution `k`, (b) entirely below `n`, and (c) — when the shift
    /// has a cross-word carry — preceded by a source word. Everything
    /// outside that region (at most one leading word and four trailing)
    /// replays through the same masked scalar step the portable kernel
    /// uses.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (enforced by the caller's cpuid check) and `k < n`,
    /// with `words` holding at least `n.div_ceil(64)` words.
    #[target_feature(enable = "avx2")]
    pub unsafe fn kth_ago_body(words: &[u64], n: usize, k: usize) -> u64 {
        debug_assert!(k < n);
        let (q, r) = (k / 64, (k % 64) as u32);
        let last = (n - 1) / 64;
        let scalar_word = |i: usize| -> u64 {
            let shifted = if r == 0 {
                words[i - q]
            } else {
                let carry = if i > q {
                    words[i - q - 1] >> (64 - r)
                } else {
                    0
                };
                (words[i - q] << r) | carry
            };
            let base = i * 64;
            let mut mask = !0u64;
            if k > base {
                mask &= !0u64 << (k - base);
            }
            if n < base + 64 {
                mask &= !0u64 >> (64 - (n - base));
            }
            u64::from((!(words[i] ^ shifted) & mask).count_ones())
        };

        let mut correct = 0u64;
        // First fully-valid word: for r > 0 word q straddles execution k
        // (and lacks a carry source), so the vector region starts at q+1.
        let full_start = if r == 0 { q } else { q + 1 };
        // One past the last word with all 64 executions below n.
        let full_end = n / 64;

        for i in q..full_start.min(last + 1) {
            correct += scalar_word(i);
        }

        let mut i = full_start;
        if full_start + 4 <= full_end {
            let ones = _mm256_set1_epi8(-1);
            let shl = _mm_cvtsi32_si128(r as i32);
            let shr = _mm_cvtsi32_si128(64 - r as i32);
            let mut acc = _mm256_setzero_si256();
            while i + 4 <= full_end {
                let cur = load4(words, i);
                let shifted = if r == 0 {
                    load4(words, i - q)
                } else {
                    let lo = load4(words, i - q);
                    let hi = load4(words, i - q - 1);
                    _mm256_or_si256(_mm256_sll_epi64(lo, shl), _mm256_srl_epi64(hi, shr))
                };
                let agree = _mm256_xor_si256(_mm256_xor_si256(cur, shifted), ones);
                acc = _mm256_add_epi64(acc, popcount_lanes(agree));
                i += 4;
            }
            correct += lane_sum(acc);
        }

        for j in i..=last {
            correct += scalar_word(j);
        }
        correct
    }

    /// Replays one pattern's executions within a 4-word block: `m` masks
    /// the executions selecting this counter, `t` is the branch-outcome
    /// block. A block whose masked outcomes are uniform — the dominant
    /// case for biased branches — collapses into one
    /// [`SaturatingCounter::train_run`] jump covering up to 256
    /// executions; mixed blocks drop to per-lane replay, where each word
    /// is again collapse-checked and a genuinely mixed word goes through
    /// the packed [`TWO_BIT_FSM`] replay when `fsm` is set (two-bit
    /// counters on a BMI2 host) or bit-serial [`tally_word`] otherwise.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn tally_block(
        slot: &mut SaturatingCounter,
        m: __m256i,
        t: __m256i,
        fsm: bool,
        correct: &mut u64,
    ) {
        if _mm256_testz_si256(m, m) != 0 {
            return;
        }
        if _mm256_testz_si256(m, t) != 0 {
            // t & m == 0 across all four lanes: a uniform not-taken run.
            *correct += slot.train_run(popcount_sum(m), false);
        } else if _mm256_testc_si256(t, m) != 0 {
            // !t & m == 0: a uniform taken run.
            *correct += slot.train_run(popcount_sum(m), true);
        } else {
            let mut ml = [0u64; 4];
            let mut tl = [0u64; 4];
            _mm256_storeu_si256(ml.as_mut_ptr().cast(), m);
            _mm256_storeu_si256(tl.as_mut_ptr().cast(), t);
            for lane in 0..4 {
                let m = ml[lane];
                if m == 0 {
                    continue;
                }
                let tm = tl[lane] & m;
                if fsm && tm != 0 && tm != m {
                    // SAFETY: `fsm` asserts BMI2 and a two-bit counter.
                    tally_word_two_bit(slot, m, tl[lane], correct);
                } else {
                    tally_word(slot, m, tl[lane], correct);
                }
            }
        }
    }

    /// Whether the running CPU has BMI2 (`pext`), gating the packed
    /// two-bit-counter replay table.
    #[inline]
    fn bmi2_available() -> bool {
        std::arch::is_x86_feature_detected!("bmi2")
    }

    /// Eight predict-then-train steps of the two-bit counter, precomputed
    /// for every (state, outcome-byte) pair: entry = `next_state << 4 |
    /// corrects`. Outcome bits replay LSB-first, matching trace order.
    static TWO_BIT_FSM: [[u8; 256]; 4] = build_two_bit_fsm();

    const fn build_two_bit_fsm() -> [[u8; 256]; 4] {
        let mut table = [[0u8; 256]; 4];
        let mut state = 0usize;
        while state < 4 {
            let mut byte = 0usize;
            while byte < 256 {
                let mut value = state as u8;
                let mut corrects = 0u8;
                let mut bit = 0;
                while bit < 8 {
                    let taken = (byte >> bit) & 1 == 1;
                    if (value >= 2) == taken {
                        corrects += 1;
                    }
                    value = if taken {
                        if value < 3 {
                            value + 1
                        } else {
                            value
                        }
                    } else {
                        value.saturating_sub(1)
                    };
                    bit += 1;
                }
                table[state][byte] = (value << 4) | corrects;
                byte += 1;
            }
            state += 1;
        }
        table
    }

    /// Replays one mixed word's masked outcomes through a two-bit counter
    /// via `pext` compaction and [`TWO_BIT_FSM`]: the masked outcome bits
    /// pack into a contiguous stream, then each table lookup advances the
    /// counter eight executions at once — bit-exact with serial replay,
    /// at an eighth of the steps.
    ///
    /// # Safety
    ///
    /// Requires BMI2 (enforced by the caller's cpuid check); `slot` must
    /// be a two-bit counter (`max_value() == 3`).
    #[target_feature(enable = "bmi2")]
    unsafe fn tally_word_two_bit(slot: &mut SaturatingCounter, m: u64, t: u64, correct: &mut u64) {
        let mut packed = _pext_u64(t, m);
        let mut n = m.count_ones();
        let mut state = slot.value();
        while n >= 8 {
            let entry = TWO_BIT_FSM[state as usize][(packed & 0xff) as usize];
            *correct += u64::from(entry & 0x0f);
            state = entry >> 4;
            packed >>= 8;
            n -= 8;
        }
        for bit in 0..n {
            let taken = packed >> bit & 1 == 1;
            if (state >= 2) == taken {
                *correct += 1;
            }
            state = if taken {
                (state + 1).min(3)
            } else {
                state.saturating_sub(1)
            };
        }
        *slot = SaturatingCounter::new(2, state);
    }

    /// One column's ternary-outcome masks for a full-valid 4-word block:
    /// `[taken, not-taken, not-in-path]`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn ternary_blocks(ip: __m256i, dir: __m256i) -> [__m256i; 3] {
        let ones = _mm256_set1_epi8(-1);
        [
            _mm256_and_si256(ip, dir),
            _mm256_andnot_si256(dir, ip),
            _mm256_andnot_si256(ip, ones),
        ]
    }

    /// Selective-history scorer over packed planes, 4 words per step.
    ///
    /// Blocks of four words whose executions are all valid go through
    /// [`tally_block`]; the remaining at-most-four trailing words (full
    /// remainder plus the partial tail word) replay through the scalar
    /// word step with the same counters, so state carries over exactly.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (enforced by the caller's cpuid check).
    #[target_feature(enable = "avx2")]
    pub unsafe fn score_tag_set(bm: &BranchMatrix, cols: &[usize], init: SaturatingCounter) -> u64 {
        let words = bm.words();
        let taken = bm.taken_plane();
        let tail = tail_mask(bm.executions());
        let valid_at = |w: usize| if w + 1 == words { tail } else { !0 };
        // Only whole words of valid executions can skip the valid mask.
        let n_full = bm.executions() / 64;
        let vec_end = n_full - n_full % 4;
        let ones = _mm256_set1_epi8(-1);
        // Packed FSM replay applies to two-bit counters on BMI2 hosts;
        // the counter's width never changes during scoring.
        let fsm = init.max_value() == 3 && bmi2_available();
        let mut correct = 0u64;
        match *cols {
            [] => {
                let mut counter = init;
                let mut w = 0;
                while w < vec_end {
                    tally_block(&mut counter, ones, load4(taken, w), fsm, &mut correct);
                    w += 4;
                }
                for (w, &t) in taken.iter().enumerate().take(words).skip(vec_end) {
                    tally_word(&mut counter, valid_at(w), t, &mut correct);
                }
            }
            [a] => {
                let (ipa, da) = (bm.inpath_plane(a), bm.dir_plane(a));
                let mut counters = [init; 3];
                let mut w = 0;
                while w < vec_end {
                    let t = load4(taken, w);
                    let ma = ternary_blocks(load4(ipa, w), load4(da, w));
                    for (slot, &m) in counters.iter_mut().zip(&ma) {
                        tally_block(slot, m, t, fsm, &mut correct);
                    }
                    w += 4;
                }
                for w in vec_end..words {
                    let t = taken[w];
                    let ma = ternary_masks(ipa[w], da[w], valid_at(w));
                    for (slot, &m) in counters.iter_mut().zip(&ma) {
                        tally_word(slot, m, t, &mut correct);
                    }
                }
            }
            [a, b] => {
                let (ipa, da) = (bm.inpath_plane(a), bm.dir_plane(a));
                let (ipb, db) = (bm.inpath_plane(b), bm.dir_plane(b));
                let mut counters = [init; 9];
                let mut w = 0;
                while w < vec_end {
                    let t = load4(taken, w);
                    let ma = ternary_blocks(load4(ipa, w), load4(da, w));
                    let mb = ternary_blocks(load4(ipb, w), load4(db, w));
                    for (i, &ma) in ma.iter().enumerate() {
                        if _mm256_testz_si256(ma, ma) != 0 {
                            continue;
                        }
                        for (j, &mb) in mb.iter().enumerate() {
                            tally_block(
                                &mut counters[i * 3 + j],
                                _mm256_and_si256(ma, mb),
                                t,
                                fsm,
                                &mut correct,
                            );
                        }
                    }
                    w += 4;
                }
                for w in vec_end..words {
                    let t = taken[w];
                    let valid = valid_at(w);
                    let ma = ternary_masks(ipa[w], da[w], valid);
                    let mb = ternary_masks(ipb[w], db[w], valid);
                    for (i, &ma) in ma.iter().enumerate() {
                        if ma == 0 {
                            continue;
                        }
                        for (j, &mb) in mb.iter().enumerate() {
                            tally_word(&mut counters[i * 3 + j], ma & mb, t, &mut correct);
                        }
                    }
                }
            }
            [a, b, c] => {
                let (ipa, da) = (bm.inpath_plane(a), bm.dir_plane(a));
                let (ipb, db) = (bm.inpath_plane(b), bm.dir_plane(b));
                let (ipc, dc) = (bm.inpath_plane(c), bm.dir_plane(c));
                let mut counters = [init; MAX_PATTERNS];
                let mut w = 0;
                while w < vec_end {
                    let t = load4(taken, w);
                    let ma = ternary_blocks(load4(ipa, w), load4(da, w));
                    let mb = ternary_blocks(load4(ipb, w), load4(db, w));
                    let mc = ternary_blocks(load4(ipc, w), load4(dc, w));
                    for (i, &ma) in ma.iter().enumerate() {
                        if _mm256_testz_si256(ma, ma) != 0 {
                            continue;
                        }
                        for (j, &mb) in mb.iter().enumerate() {
                            let mab = _mm256_and_si256(ma, mb);
                            if _mm256_testz_si256(mab, mab) != 0 {
                                continue;
                            }
                            for (k, &mc) in mc.iter().enumerate() {
                                tally_block(
                                    &mut counters[(i * 3 + j) * 3 + k],
                                    _mm256_and_si256(mab, mc),
                                    t,
                                    fsm,
                                    &mut correct,
                                );
                            }
                        }
                    }
                    w += 4;
                }
                for w in vec_end..words {
                    let t = taken[w];
                    let valid = valid_at(w);
                    let ma = ternary_masks(ipa[w], da[w], valid);
                    let mb = ternary_masks(ipb[w], db[w], valid);
                    let mc = ternary_masks(ipc[w], dc[w], valid);
                    for (i, &ma) in ma.iter().enumerate() {
                        if ma == 0 {
                            continue;
                        }
                        for (j, &mb) in mb.iter().enumerate() {
                            let mab = ma & mb;
                            if mab == 0 {
                                continue;
                            }
                            for (k, &mc) in mc.iter().enumerate() {
                                let slot = &mut counters[(i * 3 + j) * 3 + k];
                                tally_word(slot, mab & mc, t, &mut correct);
                            }
                        }
                    }
                }
            }
            _ => unreachable!(
                "selective histories use at most {} tags",
                crate::oracle::MAX_SELECTIVE_TAGS
            ),
        }
        correct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{kth_ago_correct, kth_ago_correct_scalar};
    use crate::oracle::score_tag_set_scalar;
    use crate::{score_tag_set, OutcomeMatrix, TagCandidates};
    use bp_trace::{BranchRecord, OutcomeStream, Trace};

    fn pseudo_stream(n: usize, seed: u64) -> OutcomeStream {
        let mut s = OutcomeStream::default();
        let mut x = seed | 1;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s.push((x >> 60) & 3 != 0);
        }
        s
    }

    #[test]
    fn kth_ago_avx2_matches_scalar_everywhere() {
        if !avx2_available() {
            eprintln!("skipping: no AVX2 on this host");
            return;
        }
        for n in [512usize, 577, 64 * 12, 64 * 12 + 1, 2048] {
            for seed in [3u64, 99] {
                let s = pseudo_stream(n, seed);
                for k in (1..=64).chain([65, 100, 127, 128, 129, 200, n - 1, n, n + 5]) {
                    let capped = k.clamp(1, n - 1);
                    assert_eq!(
                        kth_ago_body_avx2(s.words(), n, capped),
                        crate::classify::kth_ago_body_scalar(s.words(), n, capped),
                        "n={n} k={k}"
                    );
                    assert_eq!(kth_ago_correct(&s, k), kth_ago_correct_scalar(&s, k));
                }
            }
        }
    }

    #[test]
    fn score_tag_set_avx2_matches_scalar() {
        if !avx2_available() {
            eprintln!("skipping: no AVX2 on this host");
            return;
        }
        // A correlated trace long enough to have vector blocks and a
        // ragged tail.
        let mut recs = Vec::new();
        let mut x = 7u64;
        for _ in 0..700 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 61) & 1 == 1;
            let b = (x >> 62) & 1 == 1;
            recs.push(BranchRecord::conditional(0x100, a));
            recs.push(BranchRecord::conditional(0x200, b));
            recs.push(BranchRecord::conditional(0x300, a && b));
        }
        let trace = Trace::from_records(recs);
        let cands = TagCandidates::collect(&trace, 8, 12);
        let m = OutcomeMatrix::build(&trace, &cands, 8);
        let init = SaturatingCounter::two_bit();
        for (_, bm) in m.iter() {
            let ncols = bm.tags().len();
            let mut sets: Vec<Vec<usize>> = vec![vec![]];
            sets.extend((0..ncols).map(|c| vec![c]));
            if ncols >= 2 {
                sets.push(vec![0, 1]);
                sets.push(vec![0, ncols - 1]);
            }
            if ncols >= 3 {
                sets.push(vec![0, 1, 2]);
                sets.push(vec![0, ncols / 2, ncols - 1]);
            }
            for cols in &sets {
                assert_eq!(
                    score_tag_set_avx2(bm, cols, init),
                    score_tag_set_scalar(bm, cols, init),
                    "cols {cols:?}"
                );
                assert_eq!(
                    score_tag_set(bm, cols, init),
                    score_tag_set_scalar(bm, cols, init)
                );
            }
        }
    }
}

//! The correlation-and-predictability analysis of Evers, Patel, Chappell &
//! Patt (ISCA 1998) — the paper's primary contribution.
//!
//! Built on [`bp_trace`] (traces, path windows, instance tags) and
//! [`bp_predictors`] (every predictor the paper uses), this crate implements
//! the paper's three analyses:
//!
//! * **§3 Branch correlation** — [`TagCandidates`], [`OutcomeMatrix`], and
//!   [`OracleSelector`] find, for every static branch, the 1/2/3 prior
//!   branch instances whose outcomes best predict it, and evaluate the
//!   resulting *selective history* predictor (figures 4 and 5, table 2).
//! * **§4 Per-address predictability** — [`Classifier`] scores every branch
//!   with the loop, fixed-length-pattern, block-pattern, and
//!   interference-free PAs predictors and assigns it a [`PaClass`]
//!   (figure 6, table 3).
//! * **§5 Global vs per-address** — [`best_of`] distributions, the
//!   [`combined_correct`] hypothetical predictors ("gshare w/ Corr",
//!   "PAs w/ Loop"), and [`PercentileCurve`] accuracy-difference curves
//!   (figures 7–9).
//!
//! # Quickstart
//!
//! ```
//! use bp_core::{OracleConfig, OracleSelector};
//! use bp_trace::{BranchRecord, Trace};
//!
//! // Branch 0x200 copies the outcome of branch 0x100 (perfect correlation).
//! let mut recs = Vec::new();
//! for i in 0..500u64 {
//!     let dir = (i / 3) % 2 == 0;
//!     recs.push(BranchRecord::conditional(0x100, dir));
//!     recs.push(BranchRecord::conditional(0x200, dir));
//! }
//! let trace = Trace::from_records(recs);
//!
//! let oracle = OracleSelector::analyze(&trace, &OracleConfig::default());
//! let stats = oracle.selective_stats(1); // 1-tag selective history
//! assert!(stats.total().accuracy() > 0.95);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bestof;
mod bps;
mod candidates;
mod classify;
mod cost;
mod distance;
mod gaps;
mod matrix;
mod oracle;
mod percentile;
#[doc(hidden)]
#[allow(missing_docs)]
pub mod reference;
mod selective;
// The workspace's only unsafe: runtime-dispatched AVX2 kernels, each one
// differentially tested bit-exact against its scalar twin.
#[allow(unsafe_code)]
mod simd;
mod sweep;

pub use bestof::{
    best_of, combined_correct, per_branch_max, BestOfDistribution, Contender, IDEAL_STATIC_NAME,
};
pub use bps::{open_matrix, write_matrix, OpenedMatrix};
pub use candidates::TagCandidates;
#[doc(hidden)]
pub use classify::{kth_ago_correct, kth_ago_correct_scalar};
pub use classify::{
    BranchClassScores, Classification, Classifier, ClassifierConfig, ClassifyPhases, PaClass,
};
pub use cost::CostModel;
pub use distance::DistanceHistogram;
pub use gaps::MispredictProfile;
pub use matrix::{BranchMatrix, OutcomeMatrix};
pub use oracle::{
    presence_stats, BranchSelection, OracleConfig, OracleResult, OracleSelector, SearchStrategy,
    TagSetScore, MAX_SELECTIVE_TAGS,
};
#[doc(hidden)]
pub use oracle::{score_columns_presence, score_tag_set, score_tag_set_scalar};
pub use percentile::PercentileCurve;
pub use selective::SelectivePredictor;
#[doc(hidden)]
pub use simd::{avx2_available, kth_ago_body_avx2, score_tag_set_avx2};
pub use sweep::{SweepMatrix, MAX_SWEEP_WINDOWS};

use serde::{Deserialize, Serialize};

use bp_trace::{PathWindow, Trace};

use crate::oracle::OracleResult;

/// Distribution of distances from branches to their oracle-chosen
/// correlated instances — the quantity behind §3.6.2's finding that "the
/// most correlated branches are close together".
///
/// For every dynamic execution of every branch, each of the branch's
/// chosen tags resolves either at some distance `d` (the instance was the
/// `d`-th most recent branch) or to not-in-path. The histogram is weighted
/// by dynamic executions, so it answers: *how much history does a real
/// predictor need to reach the correlation the oracle found?*
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceHistogram {
    /// `counts[d-1]` = tag resolutions at distance `d`.
    counts: Vec<u64>,
    /// Tag lookups that found the instance absent from the path.
    not_in_path: u64,
}

impl DistanceHistogram {
    /// Measures the distance distribution of the oracle's chosen `k`-tag
    /// selective histories over `trace`, using a window of `window`
    /// branches (use the oracle's own window).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not in `1..=`[`crate::MAX_SELECTIVE_TAGS`].
    pub fn measure(trace: &Trace, oracle: &OracleResult, k: usize, window: usize) -> Self {
        assert!(
            (1..=crate::MAX_SELECTIVE_TAGS).contains(&k),
            "selective history size must be 1..={}",
            crate::MAX_SELECTIVE_TAGS
        );
        let mut hist = DistanceHistogram {
            counts: vec![0; window],
            not_in_path: 0,
        };
        let mut path = PathWindow::new(window);
        for rec in trace.iter() {
            if rec.is_conditional() {
                if let Some(sel) = oracle.selection(rec.pc) {
                    for tag in &sel.best[k - 1].tags {
                        match path.distance(*tag) {
                            Some(d) => hist.counts[d - 1] += 1,
                            None => hist.not_in_path += 1,
                        }
                    }
                }
            }
            path.push(rec);
        }
        hist
    }

    /// Total tag resolutions (in-path + not-in-path).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.not_in_path
    }

    /// Fraction of resolutions where the instance was absent.
    pub fn not_in_path_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.not_in_path as f64 / t as f64
        }
    }

    /// Fraction of *in-path* resolutions at distance ≤ `d`.
    pub fn fraction_within(&self, d: usize) -> f64 {
        let in_path: u64 = self.counts.iter().sum();
        if in_path == 0 {
            return 0.0;
        }
        let within: u64 = self.counts.iter().take(d).sum();
        within as f64 / in_path as f64
    }

    /// Mean in-path distance; zero when nothing resolved in path.
    pub fn mean_distance(&self) -> f64 {
        let in_path: u64 = self.counts.iter().sum();
        if in_path == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        weighted as f64 / in_path as f64
    }

    /// The raw per-distance counts (`[0]` = distance 1).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OracleConfig, OracleSelector};
    use bp_trace::BranchRecord;

    /// Y at distance exactly 3 from X (two constant fillers between), X
    /// copies Y; every branch's best correlation is only a few branches
    /// back by construction.
    fn spaced_trace(n: usize) -> Trace {
        let mut recs = Vec::new();
        for i in 0..n {
            let y = i % 2 == 0;
            recs.push(BranchRecord::conditional(0x100, y));
            recs.push(BranchRecord::conditional(0x200, true));
            recs.push(BranchRecord::conditional(0x300, true));
            recs.push(BranchRecord::conditional(0x400, y));
        }
        Trace::from_records(recs)
    }

    #[test]
    fn chosen_correlation_sits_at_the_constructed_distance() {
        let trace = spaced_trace(600);
        let cfg = OracleConfig::default();
        let oracle = OracleSelector::analyze(&trace, &cfg);
        let hist = DistanceHistogram::measure(&trace, &oracle, 1, cfg.window);
        assert!(hist.total() > 0);
        // X's chosen tag (most recent 0x100) resolves at distance 3 for
        // every X execution; other branches' best tags sit nearby too, so
        // nearly everything is within a handful of branches.
        assert!(
            hist.fraction_within(6) > 0.8,
            "within 6: {}",
            hist.fraction_within(6)
        );
        assert!(hist.mean_distance() >= 1.0);
        assert!(hist.mean_distance() < 8.0, "mean {}", hist.mean_distance());
        assert!(hist.not_in_path_fraction() < 0.2);
        assert_eq!(hist.counts().len(), cfg.window);
    }

    #[test]
    fn empty_trace_yields_empty_histogram() {
        let oracle = OracleSelector::analyze(&Trace::new(), &OracleConfig::default());
        let hist = DistanceHistogram::measure(&Trace::new(), &oracle, 1, 16);
        assert_eq!(hist.total(), 0);
        assert_eq!(hist.mean_distance(), 0.0);
        assert_eq!(hist.fraction_within(5), 0.0);
        assert_eq!(hist.not_in_path_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "selective history size")]
    fn zero_k_rejected() {
        let oracle = OracleSelector::analyze(&Trace::new(), &OracleConfig::default());
        let _ = DistanceHistogram::measure(&Trace::new(), &oracle, 0, 16);
    }
}

use serde::{Deserialize, Serialize};

use bp_predictors::PerBranchStats;

/// The figure 9 curve: per-branch accuracy difference between two
/// predictors, as a function of the percentile of dynamic branches.
///
/// Each static branch contributes a point `(accuracy_a − accuracy_b)` in
/// percentage points, weighted by its dynamic execution count; the curve is
/// that distribution sorted ascending. The left tail shows branches where
/// `b` is much better, the right tail where `a` is much better, and the
/// areas on each side of zero quantify the accuracy lost by dropping either
/// predictor — the paper's argument for hybrids.
/// # Example
///
/// ```
/// use bp_core::PercentileCurve;
/// use bp_predictors::{PerBranchStats, PredictionStats};
///
/// let a: PerBranchStats = [(1u64, PredictionStats { predictions: 100, correct: 90 })]
///     .into_iter().collect();
/// let b: PerBranchStats = [(1u64, PredictionStats { predictions: 100, correct: 70 })]
///     .into_iter().collect();
/// let curve = PercentileCurve::accuracy_difference(&a, &b);
/// assert!((curve.value_at(50.0) - 20.0).abs() < 1e-9); // a is 20pp better
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PercentileCurve {
    /// `(diff_pp, dynamic_weight)` sorted ascending by diff.
    points: Vec<(f64, u64)>,
    total_weight: u64,
}

impl PercentileCurve {
    /// Builds the accuracy-difference curve of `a` minus `b`.
    ///
    /// Branches present in only one input are skipped (both predictors must
    /// have predicted a branch for the difference to mean anything); in the
    /// intended use both inputs come from full-trace runs and cover the
    /// same branches.
    pub fn accuracy_difference(a: &PerBranchStats, b: &PerBranchStats) -> Self {
        let mut points: Vec<(f64, u64)> = a
            .iter()
            .filter_map(|(pc, sa)| {
                b.get(pc).map(|sb| {
                    let diff = (sa.accuracy() - sb.accuracy()) * 100.0;
                    (diff, sa.predictions)
                })
            })
            .collect();
        points.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("accuracy diffs are finite"));
        let total_weight = points.iter().map(|p| p.1).sum();
        PercentileCurve {
            points,
            total_weight,
        }
    }

    /// The difference value at dynamic-branch percentile `p` (0–100): the
    /// smallest diff such that at least `p`% of the dynamic weight lies at
    /// or below it. Zero for an empty curve.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `0.0..=100.0`.
    pub fn value_at(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be 0..=100");
        if self.total_weight == 0 {
            return 0.0;
        }
        let threshold = (p / 100.0 * self.total_weight as f64).ceil() as u64;
        let mut acc = 0u64;
        for &(diff, w) in &self.points {
            acc += w;
            if acc >= threshold {
                return diff;
            }
        }
        self.points.last().map_or(0.0, |p| p.0)
    }

    /// Samples the curve at `steps + 1` evenly spaced percentiles
    /// (0, 100/steps, …, 100) — the series plotted in figure 9.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn sample(&self, steps: usize) -> Vec<(f64, f64)> {
        assert!(steps > 0, "need at least one step");
        (0..=steps)
            .map(|i| {
                let p = 100.0 * i as f64 / steps as f64;
                (p, self.value_at(p))
            })
            .collect()
    }

    /// Dynamic-weighted mean of `max(0, −diff)`: the accuracy (in
    /// percentage points) lost by using only predictor `a` on the branches
    /// where `b` is better — the area of the "B better" region.
    pub fn loss_if_only_first(&self) -> f64 {
        self.weighted_mean(|d| (-d).max(0.0))
    }

    /// Dynamic-weighted mean of `max(0, diff)`: the accuracy lost by using
    /// only predictor `b`.
    pub fn loss_if_only_second(&self) -> f64 {
        self.weighted_mean(|d| d.max(0.0))
    }

    /// Fraction of dynamic weight where the difference is at or beyond
    /// `threshold` percentage points in `a`'s favor (positive threshold) or
    /// `b`'s favor (negative threshold).
    pub fn fraction_beyond(&self, threshold: f64) -> f64 {
        if self.total_weight == 0 {
            return 0.0;
        }
        let w: u64 = self
            .points
            .iter()
            .filter(|&&(d, _)| {
                if threshold >= 0.0 {
                    d >= threshold
                } else {
                    d <= threshold
                }
            })
            .map(|&(_, w)| w)
            .sum();
        w as f64 / self.total_weight as f64
    }

    fn weighted_mean(&self, f: impl Fn(f64) -> f64) -> f64 {
        if self.total_weight == 0 {
            return 0.0;
        }
        let sum: f64 = self.points.iter().map(|&(d, w)| f(d) * w as f64).sum();
        sum / self.total_weight as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_predictors::PredictionStats;

    fn stats_of(entries: &[(u64, u64, u64)]) -> PerBranchStats {
        entries
            .iter()
            .map(|&(pc, predictions, correct)| {
                (
                    pc,
                    PredictionStats {
                        predictions,
                        correct,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn curve_orders_and_samples() {
        // Branch 1: a 90%, b 50% -> diff +40 (weight 100)
        // Branch 2: a 50%, b 80% -> diff -30 (weight 100)
        // Branch 3: equal -> 0 (weight 200)
        let a = stats_of(&[(1, 100, 90), (2, 100, 50), (3, 200, 140)]);
        let b = stats_of(&[(1, 100, 50), (2, 100, 80), (3, 200, 140)]);
        let c = PercentileCurve::accuracy_difference(&a, &b);
        assert!((c.value_at(10.0) - -30.0).abs() < 1e-9);
        assert!((c.value_at(50.0) - 0.0).abs() < 1e-9);
        assert!((c.value_at(100.0) - 40.0).abs() < 1e-9);
        let samples = c.sample(20);
        assert_eq!(samples.len(), 21);
        assert!(samples.windows(2).all(|w| w[0].1 <= w[1].1), "monotone");
    }

    #[test]
    fn losses_are_one_sided_areas() {
        let a = stats_of(&[(1, 100, 90), (2, 100, 50)]);
        let b = stats_of(&[(1, 100, 50), (2, 100, 80)]);
        let c = PercentileCurve::accuracy_difference(&a, &b);
        // Only-a loses 30pp on half the weight; only-b loses 40pp on half.
        assert!((c.loss_if_only_first() - 15.0).abs() < 1e-9);
        assert!((c.loss_if_only_second() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_beyond_thresholds() {
        let a = stats_of(&[(1, 100, 90), (2, 100, 50), (3, 200, 100)]);
        let b = stats_of(&[(1, 100, 50), (2, 100, 80), (3, 200, 100)]);
        let c = PercentileCurve::accuracy_difference(&a, &b);
        assert!((c.fraction_beyond(40.0) - 0.25).abs() < 1e-12);
        assert!((c.fraction_beyond(-30.0) - 0.25).abs() < 1e-12);
        assert!((c.fraction_beyond(0.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn disjoint_branches_skipped() {
        let a = stats_of(&[(1, 10, 9)]);
        let b = stats_of(&[(2, 10, 9)]);
        let c = PercentileCurve::accuracy_difference(&a, &b);
        assert_eq!(c.value_at(50.0), 0.0);
        assert_eq!(c.loss_if_only_first(), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn out_of_range_percentile_panics() {
        let c = PercentileCurve::default();
        let _ = c.value_at(101.0);
    }
}

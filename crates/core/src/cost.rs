use serde::{Deserialize, Serialize};

use bp_predictors::PredictionStats;

/// A simple pipeline cost model: translates prediction accuracy into the
/// performance terms the paper's introduction argues in ("pipeline flushes
/// due to branch mispredictions…").
///
/// The model is deliberately first-order — `CPI = base + penalty ×
/// mispredictions/instruction` — which is the standard back-of-envelope
/// used to compare predictors, not a microarchitectural simulator.
///
/// # Example
///
/// ```
/// use bp_core::CostModel;
/// use bp_predictors::PredictionStats;
///
/// let model = CostModel::default(); // 12-cycle flush, 0.2 branches/instr
/// let gshare = PredictionStats { predictions: 1000, correct: 920 };
/// let hybrid = PredictionStats { predictions: 1000, correct: 960 };
/// assert_eq!(CostModel::mpkb(&gshare), 80.0);
/// // Halving mispredictions buys a measurable speedup:
/// assert!(model.speedup(&hybrid, &gshare) > 1.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Pipeline flush penalty per misprediction, in cycles.
    pub mispredict_penalty: f64,
    /// Conditional branches per instruction (SPECint-class integer code
    /// runs around one branch in five instructions).
    pub branch_density: f64,
    /// CPI with perfect branch prediction.
    pub base_cpi: f64,
}

impl Default for CostModel {
    /// A mid-1990s deep pipeline: 12-cycle flush, 0.2 branches per
    /// instruction, base CPI 1.0.
    fn default() -> Self {
        CostModel {
            mispredict_penalty: 12.0,
            branch_density: 0.2,
            base_cpi: 1.0,
        }
    }
}

impl CostModel {
    /// Mispredictions per thousand branches — model-free, comparable
    /// across predictors on the same trace.
    pub fn mpkb(stats: &PredictionStats) -> f64 {
        if stats.predictions == 0 {
            0.0
        } else {
            stats.mispredictions() as f64 * 1000.0 / stats.predictions as f64
        }
    }

    /// Mispredictions per thousand instructions, via the model's branch
    /// density.
    pub fn mpki(&self, stats: &PredictionStats) -> f64 {
        Self::mpkb(stats) * self.branch_density
    }

    /// Estimated cycles per instruction under this predictor.
    pub fn cpi(&self, stats: &PredictionStats) -> f64 {
        self.base_cpi + self.mispredict_penalty * self.mpki(stats) / 1000.0
    }

    /// Speedup of predictor `a` over predictor `b` (> 1 means `a` is
    /// faster).
    pub fn speedup(&self, a: &PredictionStats, b: &PredictionStats) -> f64 {
        self.cpi(b) / self.cpi(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(predictions: u64, correct: u64) -> PredictionStats {
        PredictionStats {
            predictions,
            correct,
        }
    }

    #[test]
    fn mpkb_and_mpki() {
        let s = stats(10_000, 9_500);
        assert_eq!(CostModel::mpkb(&s), 50.0);
        let m = CostModel::default();
        assert!((m.mpki(&s) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn cpi_grows_with_misses() {
        let m = CostModel::default();
        let good = stats(1000, 990);
        let bad = stats(1000, 900);
        assert!(m.cpi(&bad) > m.cpi(&good));
        assert!(m.cpi(&good) > m.base_cpi);
        // Perfect prediction collapses to the base CPI.
        assert!((m.cpi(&stats(1000, 1000)) - m.base_cpi).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_reciprocal() {
        let m = CostModel::default();
        let a = stats(1000, 980);
        let b = stats(1000, 920);
        let s = m.speedup(&a, &b);
        assert!(s > 1.0);
        assert!((m.speedup(&b, &a) - 1.0 / s).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let m = CostModel::default();
        let empty = stats(0, 0);
        assert_eq!(CostModel::mpkb(&empty), 0.0);
        assert!((m.cpi(&empty) - m.base_cpi).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_sanity() {
        // go at 84% vs a hybrid at 90%: the model should say the hybrid
        // is several percent faster — the magnitude that justified hybrid
        // hardware.
        let m = CostModel::default();
        let gshare = stats(100_000, 84_000);
        let hybrid = stats(100_000, 90_000);
        let s = m.speedup(&hybrid, &gshare);
        assert!(s > 1.05 && s < 1.25, "speedup {s}");
    }
}

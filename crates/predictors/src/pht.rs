use bp_trace::fx::FxHashMap;

use crate::counter::SaturatingCounter;

/// A fixed-size pattern history table: `2^index_bits` saturating counters.
///
/// Indexing wraps via masking, so any `u64` index is accepted — the aliasing
/// that masking introduces is exactly the PHT interference the paper
/// discusses (§2.2, §3.3).
#[derive(Debug, Clone)]
pub struct PatternHistoryTable {
    counters: Vec<SaturatingCounter>,
    mask: u64,
}

impl PatternHistoryTable {
    /// Creates a table of `2^index_bits` copies of `init`.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is not in `1..=28` (2^28 counters ≈ 256 MiB is
    /// the sanity ceiling).
    pub fn new(index_bits: u32, init: SaturatingCounter) -> Self {
        assert!(
            (1..=28).contains(&index_bits),
            "PHT index width must be 1..=28 bits"
        );
        PatternHistoryTable {
            counters: vec![init; 1 << index_bits],
            mask: (1u64 << index_bits) - 1,
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Always `false`: a PHT has at least two counters.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The counter selected by `index` (masked).
    #[inline]
    pub fn counter(&self, index: u64) -> &SaturatingCounter {
        &self.counters[(index & self.mask) as usize]
    }

    /// Mutable access to the counter selected by `index` (masked).
    #[inline]
    pub fn counter_mut(&mut self, index: u64) -> &mut SaturatingCounter {
        &mut self.counters[(index & self.mask) as usize]
    }

    /// Convenience: the prediction of the selected counter.
    #[inline]
    pub fn predict(&self, index: u64) -> bool {
        self.counter(index).predict_taken()
    }

    /// Convenience: trains the selected counter.
    #[inline]
    pub fn train(&mut self, index: u64, taken: bool) {
        self.counter_mut(index).train(taken);
    }
}

/// An unbounded counter store keyed by `(branch, pattern)` — the
/// *interference-free* PHT idealization: one logical table per static
/// branch, no aliasing, no capacity limit (the "prohibitively large" but
/// analytically clean structure of §2.2).
#[derive(Debug, Clone, Default)]
pub struct KeyedCounters {
    counters: FxHashMap<(u64, u64), SaturatingCounter>,
    init: SaturatingCounter,
}

impl KeyedCounters {
    /// Creates an empty store whose counters start as `init`.
    pub fn new(init: SaturatingCounter) -> Self {
        KeyedCounters {
            counters: FxHashMap::default(),
            init,
        }
    }

    /// Number of materialized counters (those actually touched).
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` when no counter has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Prediction of the counter for `(key, pattern)`; untouched counters
    /// predict from the initial value.
    #[inline]
    pub fn predict(&self, key: u64, pattern: u64) -> bool {
        self.counters
            .get(&(key, pattern))
            .unwrap_or(&self.init)
            .predict_taken()
    }

    /// Trains the counter for `(key, pattern)`, materializing it on first
    /// touch.
    #[inline]
    pub fn train(&mut self, key: u64, pattern: u64, taken: bool) {
        self.counters
            .entry((key, pattern))
            .or_insert(self.init)
            .train(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pht_masks_index() {
        let mut pht = PatternHistoryTable::new(2, SaturatingCounter::two_bit());
        assert_eq!(pht.len(), 4);
        assert!(!pht.is_empty());
        pht.train(5, false); // aliases with index 1
        pht.train(1, false);
        assert!(!pht.predict(1));
        assert!(!pht.predict(5));
        assert!(pht.predict(0)); // untouched, init weakly taken
    }

    #[test]
    #[should_panic(expected = "index width")]
    fn pht_rejects_huge_width() {
        let _ = PatternHistoryTable::new(29, SaturatingCounter::two_bit());
    }

    #[test]
    fn keyed_counters_no_interference() {
        let mut kc = KeyedCounters::new(SaturatingCounter::two_bit());
        assert!(kc.is_empty());
        kc.train(1, 7, false);
        kc.train(1, 7, false);
        // Same pattern, different branch: untouched.
        assert!(!kc.predict(1, 7));
        assert!(kc.predict(2, 7));
        assert!(kc.predict(1, 8));
        assert_eq!(kc.len(), 1);
    }
}

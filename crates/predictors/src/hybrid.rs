use crate::counter::SaturatingCounter;
use crate::pht::PatternHistoryTable;
use crate::{BranchSite, Predictor};

/// McFarling's combining (hybrid) predictor (§2.1): two component
/// predictors plus a table of 2-bit selector counters indexed by branch
/// address.
///
/// The selector counter's high bit picks which component's prediction to
/// use. Both components train on every branch; the selector trains toward
/// the component that was right when exactly one of them was.
///
/// The paper's §5 explains *why* this structure wins: there is a large set
/// of branches where the global component is much better and a large set
/// where the per-address component is much better (figure 9).
///
/// # Example
///
/// ```
/// use bp_predictors::{simulate, Gshare, Hybrid, Pas};
/// use bp_trace::{BranchRecord, Trace};
///
/// let trace: Trace = (0..2000)
///     .map(|i| BranchRecord::conditional(0x40 + (i % 7) * 4, i % 3 != 0))
///     .collect();
/// let mut hybrid = Hybrid::new(Gshare::default(), Pas::default(), 12);
/// let stats = simulate(&mut hybrid, &trace);
/// assert!(stats.predictions == 2000);
/// ```
#[derive(Debug, Clone)]
pub struct Hybrid<A, B> {
    first: A,
    second: B,
    selector: PatternHistoryTable,
}

impl<A: Predictor, B: Predictor> Hybrid<A, B> {
    /// Combines two predictors with a `2^selector_bits`-entry selector
    /// table. Selector counters start weakly biased toward `first`.
    ///
    /// # Panics
    ///
    /// Panics if `selector_bits` is not in `1..=28`.
    pub fn new(first: A, second: B, selector_bits: u32) -> Self {
        Hybrid {
            first,
            second,
            // predict_taken() == true means "use `first`".
            selector: PatternHistoryTable::new(selector_bits, SaturatingCounter::two_bit()),
        }
    }

    /// The first (selector-favored-at-reset) component.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second component.
    pub fn second(&self) -> &B {
        &self.second
    }

    #[inline]
    fn index(site: BranchSite) -> u64 {
        site.pc >> 2
    }
}

impl<A: Predictor, B: Predictor> Predictor for Hybrid<A, B> {
    fn name(&self) -> String {
        format!("hybrid({}+{})", self.first.name(), self.second.name())
    }

    fn predict(&self, site: BranchSite) -> bool {
        if self.selector.predict(Self::index(site)) {
            self.first.predict(site)
        } else {
            self.second.predict(site)
        }
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let first_pred = self.first.predict(site);
        let second_pred = self.second.predict(site);
        if first_pred != second_pred {
            self.selector.train(Self::index(site), first_pred == taken);
        }
        self.first.update(site, taken);
        self.second.update(site, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statics::{StaticNotTaken, StaticTaken};
    use crate::{simulate, Gshare, LoopPredictor, Pas};
    use bp_trace::{BranchRecord, Trace};

    #[test]
    fn selector_learns_per_branch_winner() {
        // Branch A always taken, branch B always not-taken; components are
        // the two opposite static predictors. The selector must route each
        // branch to the right one.
        let mut recs = Vec::new();
        for _ in 0..200 {
            recs.push(BranchRecord::conditional(0x00, true));
            recs.push(BranchRecord::conditional(0x40, false));
        }
        let trace = Trace::from_records(recs);
        let mut hybrid = Hybrid::new(StaticTaken, StaticNotTaken, 8);
        let stats = simulate(&mut hybrid, &trace);
        assert!(stats.accuracy() > 0.97, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn hybrid_at_least_matches_worse_component() {
        // Loop of trip 40 (gshare-hostile, loop-predictor-trivial) mixed
        // with an alternating branch (trivial for gshare).
        let mut recs = Vec::new();
        for i in 0..60u64 {
            for _ in 0..40 {
                recs.push(BranchRecord::conditional(0x100, true));
            }
            recs.push(BranchRecord::conditional(0x100, false));
            recs.push(BranchRecord::conditional(0x200, i % 2 == 0));
        }
        let trace = Trace::from_records(recs);
        let g = simulate(&mut Gshare::new(10), &trace);
        let l = simulate(&mut LoopPredictor::new(), &trace);
        let h = simulate(
            &mut Hybrid::new(Gshare::new(10), LoopPredictor::new(), 10),
            &trace,
        );
        assert!(
            h.correct + 5 >= g.correct.max(l.correct),
            "hybrid should rival the best component"
        );
    }

    #[test]
    fn name_composes() {
        let h = Hybrid::new(Gshare::default(), Pas::default(), 10);
        assert_eq!(h.name(), "hybrid(gshare(16)+pas(12,10,4))");
        let _ = h.first();
        let _ = h.second();
    }
}

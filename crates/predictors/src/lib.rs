//! Branch predictor implementations for the correlation-and-predictability
//! study (Evers, Patel, Chappell & Patt, ISCA 1998).
//!
//! Every predictor the paper simulates or references is implemented here,
//! behind one [`Predictor`] trait:
//!
//! | Predictor | Paper role |
//! |---|---|
//! | [`StaticTaken`], [`StaticNotTaken`], [`BackwardTaken`] | simple static baselines |
//! | [`IdealStatic`] | "ideal static" — per-branch predominant direction (§4.1) |
//! | [`Smith`] | 2-bit counter table \[Smith '81\] |
//! | [`Gas`] | global two-level GAs \[Yeh & Patt\] |
//! | [`Gshare`], [`GshareInterferenceFree`] | §3.3/§3.6 |
//! | [`Pas`], [`PasInterferenceFree`] | per-address two-level (§4.1.3) |
//! | [`PathBased`] | Nair-style path-history predictor (§2.1) |
//! | [`LoopPredictor`] | loop-type class predictor (§4.1.1) |
//! | [`KthAgo`] | fixed-length-pattern class predictor (§4.1.2) |
//! | [`BlockPattern`] | block-pattern class predictor (§4.1.2) |
//! | [`Hybrid`] | McFarling chooser hybrid (§2.1) |
//! | [`Tage`] | tagged geometric-history predictor (modern-zoo extension) |
//! | [`Perceptron`] | per-PC perceptron over global history (modern-zoo extension) |
//!
//! The interference-free variants keep one logical pattern-history table per
//! static branch (implemented as unbounded keyed counter maps), exactly the
//! idealization Talcott et al. and Young et al. used and the paper adopts.
//!
//! Drive a predictor over a trace with [`simulate`] or
//! [`simulate_per_branch`]:
//!
//! ```
//! use bp_predictors::{simulate, Gshare};
//! use bp_trace::{BranchRecord, Trace};
//!
//! let trace: Trace = (0..1000)
//!     .map(|i| BranchRecord::conditional(0x40, i % 4 != 3))
//!     .collect();
//! let mut gshare = Gshare::new(12);
//! let stats = simulate(&mut gshare, &trace);
//! assert!(stats.accuracy() > 0.9); // the 4-periodic pattern is learnable
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod class_hybrid;
mod counter;
mod gas;
mod gshare;
mod gskew;
mod history;
mod hybrid;
mod interference;
mod kth_ago;
mod loop_pred;
mod pas;
mod path;
mod perceptron;
mod pht;
mod site;
mod smith;
mod static_pht;
mod statics;
mod stats;
mod tage;
mod yeh_patt;

pub use block::BlockPattern;
pub use class_hybrid::ClassHybrid;
pub use counter::SaturatingCounter;
pub use gas::Gas;
pub use gshare::{Gshare, GshareInterferenceFree};
pub use gskew::Gskew;
pub use history::ShiftHistory;
pub use hybrid::Hybrid;
pub use interference::{InterferenceGshare, InterferenceStats};
pub use kth_ago::{KthAgo, MAX_PERIOD};
pub use loop_pred::{LoopPredictor, MAX_TRIP};
pub use pas::{Pas, PasInterferenceFree};
pub use path::PathBased;
pub use perceptron::Perceptron;
pub use pht::{KeyedCounters, PatternHistoryTable};
pub use site::BranchSite;
pub use smith::Smith;
pub use static_pht::{StaticPhtGshare, StaticPhtPas};
pub use statics::{BackwardTaken, IdealStatic, StaticNotTaken, StaticTaken};
pub use stats::{
    simulate, simulate_batch, simulate_batch_source, simulate_per_branch, PerBranchStats,
    PredictionStats,
};
pub use tage::Tage;
pub use yeh_patt::{global_family, per_address_family, Gag, Pag};

/// A dynamic branch direction predictor.
///
/// Predictors see the branch *site* (address and target) when predicting —
/// never the outcome — and are trained with the outcome afterwards, in trace
/// order, exactly like the paper's trace-driven simulator.
pub trait Predictor {
    /// Human-readable name including salient configuration, e.g.
    /// `"gshare(16)"`. Used in experiment output.
    fn name(&self) -> String;

    /// Predicts the direction of the upcoming branch at `site`
    /// (`true` = taken).
    fn predict(&self, site: BranchSite) -> bool;

    /// Trains the predictor with the resolved outcome of `site`.
    fn update(&mut self, site: BranchSite, taken: bool);
}

impl<P: Predictor + ?Sized> Predictor for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn predict(&self, site: BranchSite) -> bool {
        (**self).predict(site)
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        (**self).update(site, taken)
    }
}

use bp_trace::fx::FxHashMap;

use bp_trace::{BranchProfile, Pc, Trace};

use crate::{BranchSite, Predictor, ShiftHistory};

/// A *statically determined* interference-free gshare: the PHT contents
/// are fixed from a profiling run (each `(branch, history)` pattern is
/// pinned to the direction it took most often) instead of being adapted by
/// 2-bit counters.
///
/// This is the idealization Sechrest et al. \[5\] and Young et al. \[12\]
/// studied (paper §2.2): with the same profiling and testing set it
/// isolates what *adaptivity* contributes — any gap between this predictor
/// and the adaptive interference-free gshare is pure training-time /
/// nonstationarity cost, because neither suffers interference.
///
/// Build it with [`StaticPhtGshare::profile`] over a training trace, then
/// simulate over a test trace (use the same trace for the paper-style
/// self-profiled comparison).
#[derive(Debug, Clone)]
pub struct StaticPhtGshare {
    history_bits: u32,
    history: ShiftHistory,
    /// Majority direction per (pc, history pattern).
    table: FxHashMap<(Pc, u64), bool>,
    /// Per-branch fallback for patterns unseen in training.
    fallback: FxHashMap<Pc, bool>,
}

impl StaticPhtGshare {
    /// Profiles a trace and freezes the per-(branch, history) majority
    /// directions.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is not in `1..=64`.
    pub fn profile(trace: &Trace, history_bits: u32) -> Self {
        let mut counts: FxHashMap<(Pc, u64), (u64, u64)> = FxHashMap::default();
        let mut history = ShiftHistory::new(history_bits);
        for rec in trace.conditionals() {
            let e = counts.entry((rec.pc, history.value())).or_insert((0, 0));
            if rec.taken {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
            history.push(rec.taken);
        }
        let table = counts
            .into_iter()
            .map(|((pc, hist), (t, n))| ((pc, hist), t >= n))
            .collect();
        let profile = BranchProfile::of(trace);
        let fallback = profile
            .iter()
            .map(|(pc, e)| (pc, e.majority_direction()))
            .collect();
        StaticPhtGshare {
            history_bits,
            history: ShiftHistory::new(history_bits),
            table,
            fallback,
        }
    }

    /// Number of distinct (branch, pattern) entries frozen.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// History length in branches.
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }
}

impl Predictor for StaticPhtGshare {
    fn name(&self) -> String {
        format!("static-pht-gshare({})", self.history_bits)
    }

    fn predict(&self, site: BranchSite) -> bool {
        match self.table.get(&(site.pc, self.history.value())) {
            Some(&dir) => dir,
            None => self.fallback.get(&site.pc).copied().unwrap_or(true),
        }
    }

    fn update(&mut self, _site: BranchSite, taken: bool) {
        // The PHT is frozen; only the history register runs.
        self.history.push(taken);
    }
}

/// The per-address twin of [`StaticPhtGshare`]: frozen majority directions
/// per `(branch, self-history pattern)`, with exact per-branch histories —
/// a statically determined interference-free PAs.
#[derive(Debug, Clone)]
pub struct StaticPhtPas {
    history_bits: u32,
    histories: FxHashMap<Pc, u64>,
    table: FxHashMap<(Pc, u64), bool>,
    fallback: FxHashMap<Pc, bool>,
}

impl StaticPhtPas {
    /// Profiles a trace and freezes the per-(branch, self-history)
    /// majority directions.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is not in `1..=63`.
    pub fn profile(trace: &Trace, history_bits: u32) -> Self {
        assert!(
            (1..=63).contains(&history_bits),
            "history length must be 1..=63"
        );
        let mask = (1u64 << history_bits) - 1;
        let mut counts: FxHashMap<(Pc, u64), (u64, u64)> = FxHashMap::default();
        let mut histories: FxHashMap<Pc, u64> = FxHashMap::default();
        for rec in trace.conditionals() {
            let h = histories.entry(rec.pc).or_insert(0);
            let e = counts.entry((rec.pc, *h)).or_insert((0, 0));
            if rec.taken {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
            *h = ((*h << 1) | u64::from(rec.taken)) & mask;
        }
        let table = counts
            .into_iter()
            .map(|((pc, hist), (t, n))| ((pc, hist), t >= n))
            .collect();
        let profile = BranchProfile::of(trace);
        let fallback = profile
            .iter()
            .map(|(pc, e)| (pc, e.majority_direction()))
            .collect();
        StaticPhtPas {
            history_bits,
            histories: FxHashMap::default(),
            table,
            fallback,
        }
    }

    /// Number of distinct (branch, pattern) entries frozen.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl Predictor for StaticPhtPas {
    fn name(&self) -> String {
        format!("static-pht-pas({})", self.history_bits)
    }

    fn predict(&self, site: BranchSite) -> bool {
        let hist = self.histories.get(&site.pc).copied().unwrap_or(0);
        match self.table.get(&(site.pc, hist)) {
            Some(&dir) => dir,
            None => self.fallback.get(&site.pc).copied().unwrap_or(true),
        }
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let mask = (1u64 << self.history_bits) - 1;
        let h = self.histories.entry(site.pc).or_insert(0);
        *h = ((*h << 1) | u64::from(taken)) & mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, GshareInterferenceFree, PasInterferenceFree};
    use bp_trace::{BranchRecord, Trace};

    fn patterned_trace(n: usize) -> Trace {
        let mut recs = Vec::new();
        for i in 0..n {
            recs.push(BranchRecord::conditional(0x10, i % 5 != 2));
            recs.push(BranchRecord::conditional(0x20, i % 2 == 0));
        }
        Trace::from_records(recs)
    }

    #[test]
    fn static_pht_beats_adaptive_on_stationary_self_profiled_trace() {
        // The Young et al. observation: with profile == test set and
        // stationary behavior, frozen majority PHTs beat 2-bit counters
        // (no warmup, no hysteresis losses).
        let trace = patterned_trace(3000);
        let frozen = simulate(&mut StaticPhtGshare::profile(&trace, 10), &trace);
        let adaptive = simulate(&mut GshareInterferenceFree::new(10), &trace);
        assert!(
            frozen.correct >= adaptive.correct,
            "frozen {} vs adaptive {}",
            frozen.correct,
            adaptive.correct
        );
        assert!(frozen.accuracy() > 0.99);

        let frozen_pas = simulate(&mut StaticPhtPas::profile(&trace, 10), &trace);
        let adaptive_pas = simulate(&mut PasInterferenceFree::new(10), &trace);
        assert!(frozen_pas.correct >= adaptive_pas.correct);
    }

    #[test]
    fn adaptivity_wins_when_behavior_changes_mid_trace() {
        // A loop whose trip count changes halfway (9 -> 4): with a 4-bit
        // history the all-ones pattern precedes mostly-taken outcomes in
        // the first phase and always-not-taken outcomes in the second. The
        // frozen whole-run majority keeps predicting taken there; adaptive
        // counters retrain within a couple of occurrences.
        let mut recs = Vec::new();
        for _ in 0..60 {
            for i in 0..10 {
                recs.push(BranchRecord::conditional(0x10, i < 9));
            }
        }
        for _ in 0..120 {
            for i in 0..5 {
                recs.push(BranchRecord::conditional(0x10, i < 4));
            }
        }
        let trace = Trace::from_records(recs);
        let frozen = simulate(&mut StaticPhtGshare::profile(&trace, 4), &trace);
        let adaptive = simulate(&mut GshareInterferenceFree::new(4), &trace);
        assert!(
            adaptive.correct > frozen.correct,
            "adaptive {} vs frozen {}",
            adaptive.correct,
            frozen.correct
        );
    }

    #[test]
    fn unseen_patterns_fall_back_to_branch_majority() {
        let train: Trace = (0..100)
            .map(|_| BranchRecord::conditional(0x10, true))
            .collect();
        let mut p = StaticPhtGshare::profile(&train, 8);
        assert!(p.entries() >= 1);
        assert_eq!(p.history_bits(), 8);
        // Drive the history to a pattern never seen in training.
        for _ in 0..8 {
            p.update(BranchSite::new(0x10, 0x14), false);
        }
        assert!(p.predict(BranchSite::new(0x10, 0x14))); // majority taken
                                                         // A branch never profiled at all predicts taken.
        assert!(p.predict(BranchSite::new(0x999, 0x99d)));
    }

    #[test]
    fn static_pas_entries_bounded_by_patterns() {
        let trace = patterned_trace(500);
        let p = StaticPhtPas::profile(&trace, 6);
        assert!(p.entries() <= 2 * (1 << 6));
        assert!(p.entries() >= 2);
        assert!(p.name().contains("static-pht-pas"));
    }
}

use crate::counter::SaturatingCounter;
use crate::pht::PatternHistoryTable;
use crate::{BranchSite, Predictor};

/// Nair-style path-based global predictor (§2.1): the first-level history is
/// a *path* register — a few address bits from each of the last *p* branch
/// targets — instead of a pattern of outcomes.
///
/// Path history can represent *in-path correlation* (paper §3.1, figure 2)
/// directly: arriving at a branch along a particular route is visible even
/// when the route's branch outcomes alone would be ambiguous. The cost, as
/// the paper notes, is that fewer branches fit in the same number of history
/// bits.
#[derive(Debug, Clone)]
pub struct PathBased {
    /// Concatenated low target-address bits of the last `depth` branches.
    path: u64,
    depth: u32,
    bits_per_branch: u32,
    pht: PatternHistoryTable,
}

impl PathBased {
    /// Creates a path-based predictor remembering `depth` branches at
    /// `bits_per_branch` address bits each, indexing a PHT of
    /// `2^(depth*bits_per_branch)` counters (XORed with the branch address).
    ///
    /// # Panics
    ///
    /// Panics if `depth * bits_per_branch` is not in `1..=28`.
    pub fn new(depth: u32, bits_per_branch: u32) -> Self {
        PathBased::with_counter(depth, bits_per_branch, SaturatingCounter::two_bit())
    }

    /// As [`PathBased::new`] with a custom counter.
    pub fn with_counter(depth: u32, bits_per_branch: u32, init: SaturatingCounter) -> Self {
        let width = depth * bits_per_branch;
        PathBased {
            path: 0,
            depth,
            bits_per_branch,
            pht: PatternHistoryTable::new(width, init),
        }
    }

    #[inline]
    fn index(&self, site: BranchSite) -> u64 {
        self.path ^ (site.pc >> 2)
    }
}

impl Default for PathBased {
    /// Eight branches at two bits each (16-bit path register).
    fn default() -> Self {
        PathBased::new(8, 2)
    }
}

impl Predictor for PathBased {
    fn name(&self) -> String {
        format!("path({}x{})", self.depth, self.bits_per_branch)
    }

    fn predict(&self, site: BranchSite) -> bool {
        self.pht.predict(self.index(site))
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let idx = self.index(site);
        self.pht.train(idx, taken);
        // The executed-path element for this branch: where it actually went.
        let next = if taken {
            site.target
        } else {
            site.pc.wrapping_add(4)
        };
        let elem = (next >> 2) & ((1u64 << self.bits_per_branch) - 1);
        let width = self.depth * self.bits_per_branch;
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        self.path = ((self.path << self.bits_per_branch) | elem) & mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use bp_trace::{BranchRecord, Trace};

    #[test]
    fn captures_in_path_correlation() {
        // Branch X's outcome is determined by *which* of two predecessors
        // executed, both of which are always taken — outcome history can't
        // tell the paths apart, path history can.
        let mut recs = Vec::new();
        for i in 0..600u64 {
            if i % 2 == 0 {
                recs.push(BranchRecord::conditional(0x100, true).with_target(0x404));
            } else {
                recs.push(BranchRecord::conditional(0x200, true).with_target(0x808));
            }
            recs.push(BranchRecord::conditional(0x300, i % 2 == 0));
        }
        let trace = Trace::from_records(recs);
        let path = simulate(&mut PathBased::new(4, 4), &trace);
        assert!(path.accuracy() > 0.95, "path accuracy {}", path.accuracy());
    }

    #[test]
    fn name_mentions_shape() {
        assert_eq!(PathBased::default().name(), "path(8x2)");
    }
}

use bp_trace::fx::FxHashMap;

use crate::{BranchSite, Predictor};
use bp_trace::Pc;

/// Largest supported period for [`KthAgo`]; the paper sweeps `k` from 1
/// to 32 (§4.1.2).
pub const MAX_PERIOD: u32 = 64;

/// The fixed-length-pattern class predictor of §4.1.2: a branch repeating an
/// arbitrary pattern of period `k` has the same outcome it had `k`
/// executions ago, so the predictor simply replays each branch's outcome
/// from `k` ago.
///
/// Per-branch outcome rings live in a perfect (unbounded) table. Until a
/// branch has `k` recorded outcomes the predictor falls back to predicting
/// taken.
///
/// The paper simulates 32 of these (`k` = 1..=32) and scores each branch by
/// the best of them; see `bp-core`'s classifier for that sweep.
#[derive(Debug, Clone)]
pub struct KthAgo {
    k: u32,
    rings: FxHashMap<Pc, Ring>,
}

#[derive(Debug, Clone)]
struct Ring {
    bits: u64,
    len: u32,
}

impl KthAgo {
    /// Creates a predictor replaying outcomes from `k` executions ago.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not in `1..=`[`MAX_PERIOD`].
    pub fn new(k: u32) -> Self {
        assert!(
            (1..=MAX_PERIOD).contains(&k),
            "period must be 1..={MAX_PERIOD}"
        );
        KthAgo {
            k,
            rings: FxHashMap::default(),
        }
    }

    /// The period this predictor assumes.
    pub fn period(&self) -> u32 {
        self.k
    }
}

impl Predictor for KthAgo {
    fn name(&self) -> String {
        format!("kth-ago({})", self.k)
    }

    fn predict(&self, site: BranchSite) -> bool {
        match self.rings.get(&site.pc) {
            Some(r) if r.len >= self.k => (r.bits >> (self.k - 1)) & 1 == 1,
            _ => true,
        }
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let r = self
            .rings
            .entry(site.pc)
            .or_insert(Ring { bits: 0, len: 0 });
        r.bits = (r.bits << 1) | u64::from(taken);
        if r.len < MAX_PERIOD {
            r.len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use bp_trace::{BranchRecord, Trace};

    fn pattern_trace(pc: Pc, pattern: &[bool], reps: usize) -> Trace {
        let mut recs = Vec::new();
        for _ in 0..reps {
            for &t in pattern {
                recs.push(BranchRecord::conditional(pc, t));
            }
        }
        Trace::from_records(recs)
    }

    #[test]
    fn matching_period_is_perfect_after_warmup() {
        let pattern = [true, true, false, true, false];
        let trace = pattern_trace(0x30, &pattern, 100);
        let stats = simulate(&mut KthAgo::new(5), &trace);
        // Only the first 5 predictions (warmup) can miss.
        assert!(stats.mispredictions() <= 5);
    }

    #[test]
    fn multiple_of_period_also_works() {
        let pattern = [true, false];
        let trace = pattern_trace(0x30, &pattern, 100);
        let stats = simulate(&mut KthAgo::new(4), &trace);
        assert!(stats.mispredictions() <= 4);
    }

    #[test]
    fn wrong_period_is_poor() {
        let pattern = [true, false]; // period 2
        let trace = pattern_trace(0x30, &pattern, 100);
        let stats = simulate(&mut KthAgo::new(3), &trace);
        // k=3 against period 2 replays the inverse: ~0% after warmup.
        assert!(stats.accuracy() < 0.1);
    }

    #[test]
    fn per_branch_isolation() {
        let mut recs = Vec::new();
        for i in 0..100u64 {
            recs.push(BranchRecord::conditional(0x1, i % 2 == 0));
            recs.push(BranchRecord::conditional(0x2, i % 2 == 1));
        }
        let stats = simulate(&mut KthAgo::new(2), &Trace::from_records(recs));
        assert!(stats.mispredictions() <= 4);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_rejected() {
        let _ = KthAgo::new(0);
    }

    #[test]
    fn insufficient_history_predicts_taken() {
        let p = KthAgo::new(8);
        assert!(p.predict(BranchSite::new(5, 9)));
        assert_eq!(p.period(), 8);
    }
}

use bp_trace::fx::FxHashMap;

use bp_trace::{BranchProfile, Pc};

use crate::{BranchSite, Predictor};

/// Predicts every branch taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticTaken;

impl Predictor for StaticTaken {
    fn name(&self) -> String {
        "static-taken".to_owned()
    }

    fn predict(&self, _site: BranchSite) -> bool {
        true
    }

    fn update(&mut self, _site: BranchSite, _taken: bool) {}
}

/// Predicts every branch not-taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticNotTaken;

impl Predictor for StaticNotTaken {
    fn name(&self) -> String {
        "static-not-taken".to_owned()
    }

    fn predict(&self, _site: BranchSite) -> bool {
        false
    }

    fn update(&mut self, _site: BranchSite, _taken: bool) {}
}

/// Backward-taken / forward-not-taken (BTFNT): predicts loop back-edges
/// taken and forward branches not-taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackwardTaken;

impl Predictor for BackwardTaken {
    fn name(&self) -> String {
        "btfnt".to_owned()
    }

    fn predict(&self, site: BranchSite) -> bool {
        site.is_backward()
    }

    fn update(&mut self, _site: BranchSite, _taken: bool) {}
}

/// The paper's "ideal static" predictor (§4.1): each branch is statically
/// predicted in the direction it takes most often *over the whole run* — the
/// best any static predictor can do, computed a posteriori from the same
/// trace it is scored on.
///
/// Branches absent from the profile are predicted taken.
///
/// # Example
///
/// ```
/// use bp_predictors::{simulate, IdealStatic};
/// use bp_trace::{BranchProfile, BranchRecord, Trace};
///
/// let trace: Trace = (0..10)
///     .map(|i| BranchRecord::conditional(0x8, i % 10 < 7)) // 70% taken
///     .collect();
/// let profile = BranchProfile::of(&trace);
/// let mut ideal = IdealStatic::from_profile(&profile);
/// let stats = simulate(&mut ideal, &trace);
/// assert_eq!(stats.correct, 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdealStatic {
    directions: FxHashMap<Pc, bool>,
}

impl IdealStatic {
    /// Builds the ideal static predictor from a run profile.
    pub fn from_profile(profile: &BranchProfile) -> Self {
        IdealStatic {
            directions: profile
                .iter()
                .map(|(pc, e)| (pc, e.majority_direction()))
                .collect(),
        }
    }

    /// The fixed direction assigned to `pc`, if the branch was profiled.
    pub fn direction(&self, pc: Pc) -> Option<bool> {
        self.directions.get(&pc).copied()
    }
}

impl Predictor for IdealStatic {
    fn name(&self) -> String {
        "ideal-static".to_owned()
    }

    fn predict(&self, site: BranchSite) -> bool {
        self.directions.get(&site.pc).copied().unwrap_or(true)
    }

    fn update(&mut self, _site: BranchSite, _taken: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use bp_trace::{BranchRecord, Trace};

    fn site(pc: Pc) -> BranchSite {
        BranchSite::new(pc, pc + 4)
    }

    #[test]
    fn static_directions() {
        assert!(StaticTaken.predict(site(1)));
        assert!(!StaticNotTaken.predict(site(1)));
        assert!(!BackwardTaken.predict(site(1)));
        assert!(BackwardTaken.predict(BranchSite::new(100, 50)));
    }

    #[test]
    fn names_nonempty() {
        assert!(!StaticTaken.name().is_empty());
        assert!(!StaticNotTaken.name().is_empty());
        assert!(!BackwardTaken.name().is_empty());
        assert!(!IdealStatic::default().name().is_empty());
    }

    #[test]
    fn ideal_static_majority_per_branch() {
        // Branch 1: mostly taken. Branch 2: mostly not-taken.
        let trace: Trace = [
            (1, true),
            (1, true),
            (1, false),
            (2, false),
            (2, false),
            (2, true),
        ]
        .iter()
        .map(|&(pc, t)| BranchRecord::conditional(pc, t))
        .collect();
        let profile = BranchProfile::of(&trace);
        let ideal = IdealStatic::from_profile(&profile);
        assert_eq!(ideal.direction(1), Some(true));
        assert_eq!(ideal.direction(2), Some(false));
        assert_eq!(ideal.direction(3), None);
        let stats = simulate(&mut ideal.clone(), &trace);
        assert_eq!(stats.correct, 4);
        // Accuracy equals the profile's analytic ideal-static accuracy.
        assert!((stats.accuracy() - profile.ideal_static_accuracy()).abs() < 1e-12);
    }

    #[test]
    fn ideal_static_unknown_branch_defaults_taken() {
        let ideal = IdealStatic::default();
        assert!(ideal.predict(site(42)));
    }

    #[test]
    fn updates_are_noops() {
        let mut p = IdealStatic::default();
        p.update(site(1), false);
        assert!(p.predict(site(1)));
    }
}

use serde::{Deserialize, Serialize};

/// A *k*-bit branch history shift register — the first-level state of a
/// two-level predictor.
///
/// The most recent outcome occupies the least significant bit.
///
/// # Example
///
/// ```
/// use bp_predictors::ShiftHistory;
///
/// let mut h = ShiftHistory::new(4);
/// h.push(true);
/// h.push(false);
/// h.push(true);
/// assert_eq!(h.value(), 0b101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShiftHistory {
    bits: u64,
    mask: u64,
    len: u32,
}

impl ShiftHistory {
    /// Creates an all-zeros history of `len` bits.
    ///
    /// A zero-length register is allowed and degenerates to a constant:
    /// its value is always 0 and `push` is a no-op. Two-level predictors
    /// built on it collapse to their history-less (bimodal) form, which
    /// the conformance metamorphic laws exploit.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds 64.
    pub fn new(len: u32) -> Self {
        assert!(len <= 64, "history length must be 0..=64");
        let mask = if len == 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        };
        ShiftHistory { bits: 0, mask, len }
    }

    /// Number of outcomes the register remembers.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` only for the degenerate zero-length register.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shifts in an outcome (`true` = taken) as the new least significant
    /// bit.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        self.bits = ((self.bits << 1) | u64::from(taken)) & self.mask;
    }

    /// The packed history pattern.
    #[inline]
    pub fn value(&self) -> u64 {
        self.bits
    }

    /// Resets the register to all zeros.
    pub fn clear(&mut self) {
        self.bits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_order_lsb_most_recent() {
        let mut h = ShiftHistory::new(3);
        h.push(true);
        h.push(true);
        h.push(false);
        assert_eq!(h.value(), 0b110);
    }

    #[test]
    fn wraps_at_length() {
        let mut h = ShiftHistory::new(2);
        for _ in 0..5 {
            h.push(true);
        }
        assert_eq!(h.value(), 0b11);
        h.push(false);
        assert_eq!(h.value(), 0b10);
    }

    #[test]
    fn full_width_history() {
        let mut h = ShiftHistory::new(64);
        h.push(true);
        assert_eq!(h.value(), 1);
        for _ in 0..63 {
            h.push(false);
        }
        assert_eq!(h.value(), 1 << 63);
        h.push(false);
        assert_eq!(h.value(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut h = ShiftHistory::new(8);
        h.push(true);
        h.clear();
        assert_eq!(h.value(), 0);
        assert_eq!(h.len(), 8);
        assert!(!h.is_empty());
    }

    #[test]
    fn zero_length_is_constant_zero() {
        let mut h = ShiftHistory::new(0);
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        h.push(true);
        h.push(true);
        assert_eq!(h.value(), 0);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn oversize_length_rejected() {
        let _ = ShiftHistory::new(65);
    }
}

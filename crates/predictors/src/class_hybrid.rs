use bp_trace::fx::FxHashMap;

use bp_trace::{BranchProfile, Pc};

use crate::{BranchSite, Predictor};

/// Chang, Hao, Yeh & Patt's *branch classification* predictor (the paper's
/// reference \[1\], discussed in §2.2): branches are classified by taken
/// rate from a profile; strongly biased branches get a fixed static
/// prediction, and only the weakly biased ones are handed to a dynamic
/// predictor.
///
/// The static side is free and immune to interference; keeping the biased
/// branches out of the dynamic predictor also stops them polluting its
/// tables — the mechanism §5's "55% of branches are at least as well
/// predicted statically" motivates.
///
/// # Example
///
/// ```
/// use bp_predictors::{simulate, ClassHybrid, Gshare};
/// use bp_trace::{BranchProfile, BranchRecord, Trace};
///
/// let trace: Trace = (0..1000)
///     .map(|i| BranchRecord::conditional(0x40, i % 50 != 0))
///     .collect();
/// let profile = BranchProfile::of(&trace);
/// let mut p = ClassHybrid::new(Gshare::default(), &profile, 0.95);
/// let stats = simulate(&mut p, &trace);
/// assert!(stats.accuracy() > 0.97); // the biased branch is pinned static
/// ```
#[derive(Debug, Clone)]
pub struct ClassHybrid<D> {
    dynamic: D,
    static_directions: FxHashMap<Pc, bool>,
    threshold: f64,
}

impl<D: Predictor> ClassHybrid<D> {
    /// Classifies branches from `profile`: those biased above `threshold`
    /// are statically pinned to their predominant direction, the rest go
    /// to `dynamic`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `0.5..=1.0`.
    pub fn new(dynamic: D, profile: &BranchProfile, threshold: f64) -> Self {
        assert!(
            (0.5..=1.0).contains(&threshold),
            "bias threshold must be in 0.5..=1.0"
        );
        let static_directions = profile
            .iter()
            .filter(|(_, e)| e.bias() >= threshold)
            .map(|(pc, e)| (pc, e.majority_direction()))
            .collect();
        ClassHybrid {
            dynamic,
            static_directions,
            threshold,
        }
    }

    /// Number of branches pinned to a static prediction.
    pub fn static_count(&self) -> usize {
        self.static_directions.len()
    }

    /// The dynamic component.
    pub fn dynamic(&self) -> &D {
        &self.dynamic
    }
}

impl<D: Predictor> Predictor for ClassHybrid<D> {
    fn name(&self) -> String {
        format!(
            "class-hybrid({}, bias>={:.2})",
            self.dynamic.name(),
            self.threshold
        )
    }

    fn predict(&self, site: BranchSite) -> bool {
        match self.static_directions.get(&site.pc) {
            Some(&dir) => dir,
            None => self.dynamic.predict(site),
        }
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        // Statically classified branches bypass the dynamic predictor
        // entirely — including its history registers and tables — which is
        // the Chang et al. pollution-avoidance effect.
        if !self.static_directions.contains_key(&site.pc) {
            self.dynamic.update(site, taken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, Gshare, Smith};
    use bp_trace::{BranchRecord, Trace};

    /// One heavily biased branch + one weakly biased patterned branch.
    fn mixed_trace(n: usize) -> Trace {
        let mut recs = Vec::new();
        for i in 0..n {
            recs.push(BranchRecord::conditional(0x10, i % 100 != 7));
            recs.push(BranchRecord::conditional(0x20, i % 3 == 0));
        }
        Trace::from_records(recs)
    }

    #[test]
    fn statically_pins_only_biased_branches() {
        let trace = mixed_trace(2000);
        let profile = BranchProfile::of(&trace);
        let hybrid = ClassHybrid::new(Gshare::new(8), &profile, 0.95);
        assert_eq!(hybrid.static_count(), 1);
        assert!(hybrid.predict(BranchSite::new(0x10, 0x14)));
    }

    #[test]
    fn shields_dynamic_tables_from_biased_spam() {
        // A tiny Smith table hammered by 64 biased branches aliasing with
        // one weak branch: classification removes the spam.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut recs = Vec::new();
        for i in 0..20_000u64 {
            let j = i % 64;
            // Branch j: strongly biased, direction depends on j.
            recs.push(BranchRecord::conditional(
                0x1000 + j * 4,
                rng.gen_bool(if j % 2 == 0 { 0.98 } else { 0.02 }),
            ));
        }
        let trace = Trace::from_records(recs);
        let profile = BranchProfile::of(&trace);
        let plain = simulate(&mut Smith::new(3), &trace);
        let classed = simulate(&mut ClassHybrid::new(Smith::new(3), &profile, 0.9), &trace);
        assert!(
            classed.correct > plain.correct,
            "classed {} vs plain {}",
            classed.correct,
            plain.correct
        );
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn silly_threshold_rejected() {
        let profile = BranchProfile::of(&Trace::new());
        let _ = ClassHybrid::new(Gshare::new(4), &profile, 0.3);
    }

    #[test]
    fn name_and_accessors() {
        let profile = BranchProfile::of(&mixed_trace(100));
        let h = ClassHybrid::new(Gshare::new(8), &profile, 0.99);
        assert!(h.name().contains("class-hybrid"));
        assert_eq!(h.dynamic().name(), "gshare(8)");
    }
}

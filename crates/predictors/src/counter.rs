use serde::{Deserialize, Serialize};

/// An *n*-bit saturating up/down counter — the second-level state element of
/// every two-level predictor (Smith '81; Yeh & Patt).
///
/// The counter predicts taken when its most significant bit is set. Training
/// increments on taken and decrements on not-taken, saturating at the ends.
/// Width is parameterized (the paper uses 2-bit throughout; the counter
/// ablation bench varies it).
///
/// # Example
///
/// ```
/// use bp_predictors::SaturatingCounter;
///
/// let mut c = SaturatingCounter::two_bit();
/// assert!(c.predict_taken()); // initialized weakly taken
/// c.train(false);
/// c.train(false);
/// assert!(!c.predict_taken()); // driven to not-taken
/// c.train(false); // saturates at 0
/// assert_eq!(c.value(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates a counter of `bits` width starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=7` or `initial` exceeds the maximum
    /// value for the width.
    pub fn new(bits: u8, initial: u8) -> Self {
        assert!((1..=7).contains(&bits), "counter width must be 1..=7 bits");
        let max = (1u8 << bits) - 1;
        assert!(initial <= max, "initial value {initial} exceeds {max}");
        SaturatingCounter {
            value: initial,
            max,
        }
    }

    /// The conventional 2-bit counter initialized weakly taken (value 2).
    pub fn two_bit() -> Self {
        SaturatingCounter::new(2, 2)
    }

    /// A counter of `bits` width initialized weakly taken — the smallest
    /// value that still predicts taken.
    pub fn weakly_taken(bits: u8) -> Self {
        let threshold = 1u8 << (bits - 1);
        SaturatingCounter::new(bits, threshold)
    }

    /// A counter of `bits` width initialized weakly not-taken — the largest
    /// value that still predicts not-taken.
    pub fn weakly_not_taken(bits: u8) -> Self {
        let threshold = 1u8 << (bits - 1);
        SaturatingCounter::new(bits, threshold - 1)
    }

    /// Current raw value.
    #[inline]
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Largest representable value for this width.
    #[inline]
    pub fn max_value(&self) -> u8 {
        self.max
    }

    /// Predicts taken when the most significant bit is set.
    #[inline]
    pub fn predict_taken(&self) -> bool {
        self.value > self.max / 2
    }

    /// Trains toward the outcome: increment on taken, decrement on
    /// not-taken, saturating.
    #[inline]
    pub fn train(&mut self, taken: bool) {
        if taken {
            if self.value < self.max {
                self.value += 1;
            }
        } else if self.value > 0 {
            self.value -= 1;
        }
    }

    /// `true` when the counter is at either saturation point (a "strong"
    /// state).
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.value == 0 || self.value == self.max
    }

    /// Runs `n` consecutive predict-then-train steps against the *same*
    /// outcome, returning how many of the `n` predictions were correct.
    ///
    /// Exactly equivalent to `n` [`SaturatingCounter::predict_taken`] /
    /// [`SaturatingCounter::train`] pairs, but O(1): against a uniform
    /// outcome the counter moves monotonically, so the number of
    /// mispredictions is just the number of steps the value needs to cross
    /// the predict threshold. This is the state-jump behind the oracle
    /// kernel's word-wise fast path (bp-core), where whole 64-execution
    /// words of a single pattern often share one outcome.
    #[inline]
    pub fn train_run(&mut self, n: u64, taken: bool) -> u64 {
        if n == 0 {
            return 0;
        }
        let threshold = self.max / 2;
        let wrong = if taken {
            u64::from((threshold + 1).saturating_sub(self.value)).min(n)
        } else {
            u64::from(self.value.saturating_sub(threshold)).min(n)
        };
        // Enough steps to saturate; value and max are both < 128, so the
        // intermediate sum fits in u8.
        let step = n.min(u64::from(self.max)) as u8;
        self.value = if taken {
            (self.value + step).min(self.max)
        } else {
            self.value.saturating_sub(step)
        };
        n - wrong
    }
}

impl Default for SaturatingCounter {
    fn default() -> Self {
        SaturatingCounter::two_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_state_machine() {
        let mut c = SaturatingCounter::two_bit();
        assert_eq!(c.value(), 2);
        assert!(c.predict_taken());
        c.train(true);
        assert_eq!(c.value(), 3);
        assert!(c.is_saturated());
        c.train(true); // saturate high
        assert_eq!(c.value(), 3);
        c.train(false);
        c.train(false);
        assert_eq!(c.value(), 1);
        assert!(!c.predict_taken());
        c.train(false);
        c.train(false); // saturate low
        assert_eq!(c.value(), 0);
        assert!(c.is_saturated());
    }

    #[test]
    fn one_bit_counter_flips_immediately() {
        let mut c = SaturatingCounter::new(1, 1);
        assert!(c.predict_taken());
        c.train(false);
        assert!(!c.predict_taken());
        c.train(true);
        assert!(c.predict_taken());
    }

    #[test]
    fn three_bit_hysteresis() {
        let mut c = SaturatingCounter::weakly_taken(3);
        assert_eq!(c.value(), 4);
        assert!(c.predict_taken());
        c.train(false);
        assert!(!c.predict_taken()); // 3 < 4 threshold
        let w = SaturatingCounter::weakly_not_taken(3);
        assert_eq!(w.value(), 3);
        assert!(!w.predict_taken());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = SaturatingCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_initial_rejected() {
        let _ = SaturatingCounter::new(2, 4);
    }

    #[test]
    fn default_is_two_bit_weakly_taken() {
        let c = SaturatingCounter::default();
        assert_eq!(c.value(), 2);
        assert_eq!(c.max_value(), 3);
    }

    #[test]
    fn train_run_matches_stepwise_replay_exhaustively() {
        // Every width, every starting value, both outcomes, run lengths
        // crossing all saturation distances: the jump must agree with the
        // per-step loop in both correct count and final state.
        for bits in 1..=7u8 {
            let max = (1u16 << bits) - 1;
            for initial in 0..=max as u8 {
                for taken in [false, true] {
                    for n in 0..=(2 * max as u64 + 3) {
                        let mut jumped = SaturatingCounter::new(bits, initial);
                        let got = jumped.train_run(n, taken);
                        let mut stepped = SaturatingCounter::new(bits, initial);
                        let mut correct = 0u64;
                        for _ in 0..n {
                            if stepped.predict_taken() == taken {
                                correct += 1;
                            }
                            stepped.train(taken);
                        }
                        assert_eq!(got, correct, "bits={bits} v={initial} taken={taken} n={n}");
                        assert_eq!(
                            jumped, stepped,
                            "bits={bits} v={initial} taken={taken} n={n}"
                        );
                    }
                }
            }
        }
    }
}

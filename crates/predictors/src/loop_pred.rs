use bp_trace::fx::FxHashMap;

use crate::{BranchSite, Predictor};
use bp_trace::Pc;

/// Maximum trip count the loop predictor tracks (the paper assumes
/// `n < 256`, §4.1.1).
pub const MAX_TRIP: u32 = 255;

#[derive(Debug, Clone, Copy)]
struct LoopState {
    /// The loop's "body" direction: taken for for-type loops, not-taken for
    /// while-type loops.
    direction: bool,
    /// Length of the current run of `direction` outcomes.
    run: u32,
    /// Trip count observed at the last loop exit, if any.
    trip: Option<u32>,
    /// Set when the current run exceeded [`MAX_TRIP`]; the branch stops
    /// looking like a bounded loop until it exits again.
    overflowed: bool,
}

/// The loop-type class predictor of §4.1.1.
///
/// A *for-type* branch is taken `n` times then not-taken once; a
/// *while-type* branch is the mirror image. The predictor makes `n`
/// predictions of the body direction, then a single prediction of the exit
/// direction, with `n` learned from the previous run of consecutive
/// same-direction outcomes. A direction bit distinguishes the two loop
/// flavors, and the per-branch trip counts live in a perfect (unbounded)
/// BTB so classification is interference-free, exactly as in the paper.
///
/// # Example
///
/// ```
/// use bp_predictors::{simulate, LoopPredictor};
/// use bp_trace::{BranchRecord, Trace};
///
/// // for-type: taken 7 times, then not taken, repeatedly.
/// let trace: Trace = (0..400)
///     .map(|i| BranchRecord::conditional(0x20, i % 8 != 7))
///     .collect();
/// let stats = simulate(&mut LoopPredictor::new(), &trace);
/// // After the first two loops everything including exits is predicted.
/// assert!(stats.accuracy() > 0.95);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LoopPredictor {
    states: FxHashMap<Pc, LoopState>,
}

impl LoopPredictor {
    /// Creates an empty loop predictor.
    pub fn new() -> Self {
        LoopPredictor::default()
    }

    /// Number of branches being tracked.
    pub fn tracked(&self) -> usize {
        self.states.len()
    }
}

impl Predictor for LoopPredictor {
    fn name(&self) -> String {
        "loop".to_owned()
    }

    fn predict(&self, site: BranchSite) -> bool {
        match self.states.get(&site.pc) {
            None => true,
            Some(s) => match s.trip {
                // Trip known: predict the exit after exactly n body
                // iterations. If the loop runs past n the learned trip is
                // stale — fall back to the body direction until the real
                // exit re-trains it.
                Some(n) if !s.overflowed && s.run == n => !s.direction,
                // Trip unknown or overflowed: ride the body direction.
                _ => s.direction,
            },
        }
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let state = self.states.entry(site.pc).or_insert(LoopState {
            direction: taken,
            run: 0,
            trip: None,
            overflowed: false,
        });
        if taken == state.direction {
            state.run += 1;
            if state.run > MAX_TRIP {
                state.overflowed = true;
            }
        } else {
            if state.run == 0 {
                // Two consecutive non-body outcomes: the "body" direction we
                // latched is evidently wrong (e.g. a while-type loop whose
                // first observed outcome was the exit). Re-latch.
                state.direction = taken;
                state.run = 1;
                state.trip = None;
            } else {
                state.trip = if state.overflowed {
                    None
                } else {
                    Some(state.run)
                };
                state.run = 0;
            }
            state.overflowed = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use bp_trace::{BranchRecord, Trace};

    fn loop_trace(pc: Pc, body: bool, trip: usize, loops: usize) -> Trace {
        let mut recs = Vec::new();
        for _ in 0..loops {
            for _ in 0..trip {
                recs.push(BranchRecord::conditional(pc, body));
            }
            recs.push(BranchRecord::conditional(pc, !body));
        }
        Trace::from_records(recs)
    }

    #[test]
    fn for_type_perfect_after_warmup() {
        let trace = loop_trace(0x10, true, 9, 50);
        let stats = simulate(&mut LoopPredictor::new(), &trace);
        // First loop: exit unknown (1 miss). After that, perfect.
        assert!(
            stats.mispredictions() <= 2,
            "mispredictions {}",
            stats.mispredictions()
        );
    }

    #[test]
    fn while_type_perfect_after_warmup() {
        let trace = loop_trace(0x10, false, 5, 50);
        let stats = simulate(&mut LoopPredictor::new(), &trace);
        assert!(
            stats.mispredictions() <= 3,
            "mispredictions {}",
            stats.mispredictions()
        );
    }

    #[test]
    fn long_loops_beyond_any_history_length() {
        // Trip count 60: far beyond a 12-bit PAs history, trivial here.
        let trace = loop_trace(0x10, true, 60, 30);
        let stats = simulate(&mut LoopPredictor::new(), &trace);
        assert!(stats.mispredictions() <= 2);
    }

    #[test]
    fn trip_change_costs_one_miss() {
        let mut recs = Vec::new();
        for trip in [4usize, 4, 7, 7, 7] {
            for _ in 0..trip {
                recs.push(BranchRecord::conditional(0x10, true));
            }
            recs.push(BranchRecord::conditional(0x10, false));
        }
        let stats = simulate(&mut LoopPredictor::new(), &Trace::from_records(recs));
        // Misses: first exit (trip unknown), the 4->7 change costs two
        // (predicts exit at 4, then misses the real exit at 7).
        assert!(
            stats.mispredictions() <= 3,
            "mispredictions {}",
            stats.mispredictions()
        );
    }

    #[test]
    fn overflow_falls_back_to_body_direction() {
        // A branch taken 1000 times then not-taken: run overflows MAX_TRIP,
        // so the predictor just predicts taken (1 miss at the exit) rather
        // than guessing an exit.
        let trace = loop_trace(0x10, true, 1000, 3);
        let stats = simulate(&mut LoopPredictor::new(), &trace);
        assert_eq!(stats.mispredictions(), 3);
    }

    #[test]
    fn unknown_branch_predicts_taken() {
        let p = LoopPredictor::new();
        assert!(p.predict(BranchSite::new(1, 2)));
        assert_eq!(p.tracked(), 0);
    }
}

use bp_trace::fx::FxHashMap;

use crate::counter::SaturatingCounter;
use crate::pht::{KeyedCounters, PatternHistoryTable};
use crate::{BranchSite, Predictor};
use bp_trace::Pc;

/// PAs — the per-address two-level adaptive predictor of Yeh & Patt: each
/// branch keeps its own history register (in a branch history table indexed
/// by address bits), and the history pattern selects a counter in one of
/// several address-selected pattern history tables.
///
/// Captures self-history predictability (§4): loops with trip counts within
/// the history length, repeating patterns, and input-structured
/// ("non-repeating") patterns. Both first-level (BHT) and second-level (PHT)
/// structures are finite, so distinct branches can interfere in both.
///
/// # Example
///
/// ```
/// use bp_predictors::{simulate, Pas};
/// use bp_trace::{BranchRecord, Trace};
///
/// // A short loop: taken 6 times, not-taken once — self-history nails it.
/// let trace: Trace = (0..700)
///     .map(|i| BranchRecord::conditional(0x20, i % 7 != 6))
///     .collect();
/// let stats = simulate(&mut Pas::default(), &trace);
/// assert!(stats.accuracy() > 0.95);
/// ```
#[derive(Debug, Clone)]
pub struct Pas {
    history_bits: u32,
    bht_bits: u32,
    table_select_bits: u32,
    bht: Vec<u64>,
    tables: Vec<PatternHistoryTable>,
}

impl Pas {
    /// Creates a PAs with `history_bits` of per-address history, a
    /// `2^bht_bits`-entry branch history table, and `2^table_select_bits`
    /// PHTs of `2^history_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is not in `1..=28`, `bht_bits` exceeds 24,
    /// or `table_select_bits` exceeds 12.
    pub fn new(history_bits: u32, bht_bits: u32, table_select_bits: u32) -> Self {
        Pas::with_counter(
            history_bits,
            bht_bits,
            table_select_bits,
            SaturatingCounter::two_bit(),
        )
    }

    /// As [`Pas::new`] with a custom counter.
    pub fn with_counter(
        history_bits: u32,
        bht_bits: u32,
        table_select_bits: u32,
        init: SaturatingCounter,
    ) -> Self {
        assert!(bht_bits <= 24, "BHT at most 2^24 entries");
        assert!(table_select_bits <= 12, "at most 4096 PHTs");
        let tables = (0..(1usize << table_select_bits))
            .map(|_| PatternHistoryTable::new(history_bits, init))
            .collect();
        Pas {
            history_bits,
            bht_bits,
            table_select_bits,
            bht: vec![0; 1 << bht_bits],
            tables,
        }
    }

    /// Per-address history length.
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    #[inline]
    fn bht_index(&self, site: BranchSite) -> usize {
        ((site.pc >> 2) & ((1u64 << self.bht_bits) - 1)) as usize
    }

    #[inline]
    fn table_index(&self, site: BranchSite) -> usize {
        ((site.pc >> 2) & ((1u64 << self.table_select_bits) - 1)) as usize
    }

    #[inline]
    fn history_mask(&self) -> u64 {
        (1u64 << self.history_bits) - 1
    }
}

impl Default for Pas {
    /// PAs(12) with a 1024-entry BHT and 16 PHTs — the workspace reference
    /// configuration (see DESIGN.md §7).
    fn default() -> Self {
        Pas::new(12, 10, 4)
    }
}

impl Predictor for Pas {
    fn name(&self) -> String {
        format!(
            "pas({},{},{})",
            self.history_bits, self.bht_bits, self.table_select_bits
        )
    }

    fn predict(&self, site: BranchSite) -> bool {
        let hist = self.bht[self.bht_index(site)];
        self.tables[self.table_index(site)].predict(hist)
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let bi = self.bht_index(site);
        let ti = self.table_index(site);
        let hist = self.bht[bi];
        self.tables[ti].train(hist, taken);
        self.bht[bi] = ((hist << 1) | u64::from(taken)) & self.history_mask();
    }
}

/// Interference-free PAs: exact per-branch history registers (an unbounded
/// "very large BTB", §4.1.3) and one logical PHT per branch.
///
/// Used by the paper as the class predictor for *non-repeating patterns*,
/// and in Table 3 to separate interference effects from PAs's intrinsic
/// limits (it still cannot predict the exit of a loop longer than its
/// history).
#[derive(Debug, Clone)]
pub struct PasInterferenceFree {
    history_bits: u32,
    histories: FxHashMap<Pc, u64>,
    counters: KeyedCounters,
}

impl PasInterferenceFree {
    /// Creates an interference-free PAs with `history_bits` of exact
    /// per-branch history.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is not in `1..=63`.
    pub fn new(history_bits: u32) -> Self {
        PasInterferenceFree::with_counter(history_bits, SaturatingCounter::two_bit())
    }

    /// As [`PasInterferenceFree::new`] with a custom counter.
    pub fn with_counter(history_bits: u32, init: SaturatingCounter) -> Self {
        assert!(
            (1..=63).contains(&history_bits),
            "history length must be 1..=63"
        );
        PasInterferenceFree {
            history_bits,
            histories: FxHashMap::default(),
            counters: KeyedCounters::new(init),
        }
    }

    /// Per-address history length.
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    #[inline]
    fn mask(&self) -> u64 {
        (1u64 << self.history_bits) - 1
    }
}

impl Default for PasInterferenceFree {
    /// 12 bits of exact per-branch history.
    fn default() -> Self {
        PasInterferenceFree::new(12)
    }
}

impl Predictor for PasInterferenceFree {
    fn name(&self) -> String {
        format!("if-pas({})", self.history_bits)
    }

    fn predict(&self, site: BranchSite) -> bool {
        let hist = self.histories.get(&site.pc).copied().unwrap_or(0);
        self.counters.predict(site.pc, hist)
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let mask = self.mask();
        let entry = self.histories.entry(site.pc).or_insert(0);
        let hist = *entry;
        *entry = ((hist << 1) | u64::from(taken)) & mask;
        self.counters.train(site.pc, hist, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use bp_trace::{BranchRecord, Trace};

    /// A loop branch: taken `trip` times, then not-taken, repeated.
    fn loop_trace(pc: Pc, trip: usize, loops: usize) -> Trace {
        let mut recs = Vec::new();
        for _ in 0..loops {
            for _ in 0..trip {
                recs.push(BranchRecord::conditional(pc, true));
            }
            recs.push(BranchRecord::conditional(pc, false));
        }
        Trace::from_records(recs)
    }

    #[test]
    fn pas_predicts_short_loop_exits() {
        // Trip count 6 < 12-bit history: the all-ones-run pattern before the
        // exit is distinguishable and learnable.
        let trace = loop_trace(0x40, 6, 300);
        let stats = simulate(&mut Pas::default(), &trace);
        assert!(stats.accuracy() > 0.97, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn pas_cannot_predict_long_loop_exits() {
        // Trip count 40 >> 12-bit history: the history is all-ones both
        // mid-loop and at the exit; the exit is systematically missed.
        let trace = loop_trace(0x40, 40, 100);
        let stats = simulate(&mut PasInterferenceFree::new(12), &trace);
        // One unavoidable miss per 41 branches ≈ 2.4% floor.
        assert!(stats.accuracy() < 0.99);
        assert!(stats.accuracy() > 0.9);
    }

    #[test]
    fn if_pas_beats_aliased_pas_under_pressure() {
        // 32 branches with strong but *random* per-branch biases hammer an
        // 8-entry BHT and a single shared PHT: the shared history register
        // and counters see a scrambled mix of unrelated branches, while the
        // interference-free version keeps clean per-branch state.
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut recs = Vec::new();
        let mut order: Vec<u64> = (0..32).collect();
        for _ in 0..250 {
            // Shuffled order per round: no phase information survives in
            // the shared history registers.
            order.shuffle(&mut rng);
            for &j in &order {
                let pc = 0x1000 + j * 4;
                // Opposite biases for branches that alias in the 8-entry
                // BHT (j and j+8 share an entry): aliasing is destructive.
                let bias = if (j / 8) % 2 == 0 { 0.95 } else { 0.05 };
                recs.push(BranchRecord::conditional(pc, rng.gen_bool(bias)));
            }
        }
        let trace = Trace::from_records(recs);
        let cramped = simulate(&mut Pas::new(4, 3, 1), &trace);
        let ideal = simulate(&mut PasInterferenceFree::new(4), &trace);
        assert!(
            ideal.correct > cramped.correct,
            "if-pas {} vs pas {}",
            ideal.correct,
            cramped.correct
        );
        assert!(ideal.accuracy() > 0.85);
    }

    #[test]
    fn names() {
        assert_eq!(Pas::default().name(), "pas(12,10,4)");
        assert_eq!(PasInterferenceFree::default().name(), "if-pas(12)");
        assert_eq!(Pas::default().history_bits(), 12);
        assert_eq!(PasInterferenceFree::default().history_bits(), 12);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn if_pas_rejects_zero_history() {
        let _ = PasInterferenceFree::new(0);
    }
}

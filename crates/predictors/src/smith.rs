use crate::counter::SaturatingCounter;
use crate::pht::PatternHistoryTable;
use crate::{BranchSite, Predictor};

/// Smith's bimodal predictor \[Smith '81\]: a table of 2-bit saturating
/// counters indexed by branch address.
///
/// Each branch maps via its low address bits to one counter; the counter's
/// high bit is the prediction and the counter trains toward the outcome.
/// This is the baseline dynamic predictor the two-level schemes improve on.
#[derive(Debug, Clone)]
pub struct Smith {
    table: PatternHistoryTable,
    index_bits: u32,
}

impl Smith {
    /// Creates a bimodal predictor with `2^index_bits` two-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is not in `1..=28`.
    pub fn new(index_bits: u32) -> Self {
        Smith::with_counter(index_bits, SaturatingCounter::two_bit())
    }

    /// As [`Smith::new`] but with a custom counter (width/initialization).
    pub fn with_counter(index_bits: u32, init: SaturatingCounter) -> Self {
        Smith {
            table: PatternHistoryTable::new(index_bits, init),
            index_bits,
        }
    }

    fn index(&self, site: BranchSite) -> u64 {
        // Drop the low two bits: branch sites are word-ish aligned in the
        // synthetic workloads, and real ISAs align instructions too.
        site.pc >> 2
    }
}

impl Default for Smith {
    /// A 4096-entry table, the classic configuration.
    fn default() -> Self {
        Smith::new(12)
    }
}

impl Predictor for Smith {
    fn name(&self) -> String {
        format!("smith({})", self.index_bits)
    }

    fn predict(&self, site: BranchSite) -> bool {
        self.table.predict(self.index(site))
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let idx = self.index(site);
        self.table.train(idx, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use bp_trace::{BranchRecord, Trace};

    #[test]
    fn learns_biased_branch() {
        let trace: Trace = (0..100)
            .map(|_| BranchRecord::conditional(0x40, false))
            .collect();
        let stats = simulate(&mut Smith::default(), &trace);
        // Initial weakly-taken counter costs at most a couple of
        // mispredictions; everything after is correct.
        assert!(stats.correct >= 98);
    }

    #[test]
    fn aliasing_two_branches_same_slot() {
        // With a 1-bit index (2 counters, pc >> 2 masked), pcs 0x0 and 0x8
        // share slot 0 and 2 (0x8>>2 = 2 -> masked to 0) — craft a true
        // collision: pc 0x0 and 0x10 both index slot 0 in a 2-entry table.
        let mut smith = Smith::new(1);
        let recs: Vec<BranchRecord> = (0..50)
            .flat_map(|_| {
                [
                    BranchRecord::conditional(0x0, true),
                    BranchRecord::conditional(0x10, false),
                ]
            })
            .collect();
        let stats = simulate(&mut smith, &Trace::from_records(recs));
        // Interference keeps accuracy well below a non-aliased bimodal.
        assert!(stats.accuracy() < 0.9);
    }

    #[test]
    fn name_mentions_size() {
        assert_eq!(Smith::new(10).name(), "smith(10)");
    }
}

use bp_trace::fx::FxHashMap;

use serde::{Deserialize, Serialize};

use crate::counter::SaturatingCounter;
use crate::history::ShiftHistory;
use crate::pht::PatternHistoryTable;
use crate::{BranchSite, Predictor};
use bp_trace::Pc;

/// Per-prediction interference classification, in the style of Talcott et
/// al. \[9\] and Young et al. \[12\] (paper §2.2): a prediction *interferes*
/// when the PHT counter it reads was last trained by a different
/// (branch, history) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterferenceStats {
    /// Predictions whose counter was last touched by the same
    /// (branch, history) pair — no interference.
    pub clean: u64,
    /// Interfering predictions that were correct anyway, where the
    /// interference-free twin was also correct — neutral aliasing.
    pub neutral: u64,
    /// Interfering predictions that went wrong while the
    /// interference-free twin was right — destructive aliasing.
    pub destructive: u64,
    /// Interfering predictions that went right while the
    /// interference-free twin was wrong — constructive aliasing.
    pub constructive: u64,
}

impl InterferenceStats {
    /// Total predictions classified.
    pub fn total(&self) -> u64 {
        self.clean + self.neutral + self.destructive + self.constructive
    }

    /// Fraction of predictions that hit an interfered counter.
    pub fn interference_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.neutral + self.destructive + self.constructive) as f64 / t as f64
        }
    }

    /// Net accuracy cost of interference in predictions
    /// (destructive − constructive); positive means aliasing hurts.
    pub fn net_destruction(&self) -> i64 {
        self.destructive as i64 - self.constructive as i64
    }
}

/// A gshare instrumented to classify every prediction's aliasing status.
///
/// Runs the real (shared-PHT) gshare and, in parallel, a shadow
/// interference-free twin over the same history; each prediction is binned
/// as clean / neutral / destructive / constructive. This quantifies the
/// §3.3 observation that uncorrelated history bits cost accuracy *through
/// interference* — the mechanism separating gshare from IF-gshare in
/// figure 4 and table 2.
#[derive(Debug, Clone)]
pub struct InterferenceGshare {
    history: ShiftHistory,
    pht: PatternHistoryTable,
    /// Who last trained each PHT slot.
    last_writer: Vec<Option<(Pc, u64)>>,
    /// The interference-free shadow twin.
    shadow: FxHashMap<(Pc, u64), SaturatingCounter>,
    init: SaturatingCounter,
    stats: InterferenceStats,
}

impl InterferenceGshare {
    /// Creates an instrumented gshare with `history_bits` of history and a
    /// `2^history_bits` PHT.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is not in `1..=28`.
    pub fn new(history_bits: u32) -> Self {
        let init = SaturatingCounter::two_bit();
        InterferenceGshare {
            history: ShiftHistory::new(history_bits),
            pht: PatternHistoryTable::new(history_bits, init),
            last_writer: vec![None; 1 << history_bits],
            shadow: FxHashMap::default(),
            init,
            stats: InterferenceStats::default(),
        }
    }

    /// The interference classification accumulated so far.
    pub fn stats(&self) -> InterferenceStats {
        self.stats
    }

    #[inline]
    fn index(&self, site: BranchSite) -> u64 {
        (self.history.value() ^ (site.pc >> 2)) & ((self.last_writer.len() as u64) - 1)
    }
}

impl Predictor for InterferenceGshare {
    fn name(&self) -> String {
        format!("interference-gshare({})", self.history.len())
    }

    fn predict(&self, site: BranchSite) -> bool {
        self.pht.predict(self.index(site))
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let idx = self.index(site);
        let me = (site.pc, self.history.value());

        let shared_pred = self.pht.predict(idx);
        let shadow_counter = self.shadow.entry(me).or_insert(self.init);
        let shadow_pred = shadow_counter.predict_taken();

        match self.last_writer[idx as usize] {
            Some(writer) if writer != me => {
                // Interfered access: classify against the shadow twin.
                if shared_pred == taken {
                    if shadow_pred == taken {
                        self.stats.neutral += 1;
                    } else {
                        self.stats.constructive += 1;
                    }
                } else if shadow_pred == taken {
                    self.stats.destructive += 1;
                } else {
                    self.stats.neutral += 1;
                }
            }
            _ => self.stats.clean += 1,
        }

        shadow_counter.train(taken);
        self.pht.train(idx, taken);
        self.last_writer[idx as usize] = Some(me);
        self.history.push(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use bp_trace::{BranchRecord, Trace};

    #[test]
    fn single_branch_is_interference_free() {
        let trace: Trace = (0..500)
            .map(|i| BranchRecord::conditional(0x40, i % 2 == 0))
            .collect();
        let mut p = InterferenceGshare::new(8);
        let _ = simulate(&mut p, &trace);
        let s = p.stats();
        assert_eq!(s.total(), 500);
        assert_eq!(s.interference_rate(), 0.0);
        assert_eq!(s.net_destruction(), 0);
    }

    #[test]
    fn colliding_opposite_branches_show_destruction() {
        // Two branches forced into the same PHT slots with opposite
        // directions: heavy destructive aliasing.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut recs = Vec::new();
        for _ in 0..4000 {
            let j = rng.gen_range(0..32u64);
            let bias = if j % 2 == 0 { 0.95 } else { 0.05 };
            recs.push(BranchRecord::conditional(0x100 + j * 4, rng.gen_bool(bias)));
        }
        let trace = Trace::from_records(recs);
        let mut p = InterferenceGshare::new(4);
        let _ = simulate(&mut p, &trace);
        let s = p.stats();
        assert!(s.interference_rate() > 0.5, "{s:?}");
        assert!(s.destructive > 0, "{s:?}");
        assert!(s.net_destruction() > 0, "{s:?}");
    }

    #[test]
    fn predictions_match_plain_gshare() {
        // The instrumentation must not change predictor behavior.
        let trace: Trace = (0..2000)
            .map(|i| BranchRecord::conditional(0x40 + (i % 9) * 4, i % 3 != 1))
            .collect();
        let plain = simulate(&mut crate::Gshare::new(8), &trace);
        let instrumented = simulate(&mut InterferenceGshare::new(8), &trace);
        assert_eq!(plain, instrumented);
    }

    #[test]
    fn stats_partition_all_predictions() {
        let trace: Trace = (0..3000)
            .map(|i| BranchRecord::conditional(0x40 + (i % 17) * 4, i % 5 != 2))
            .collect();
        let mut p = InterferenceGshare::new(6);
        let r = simulate(&mut p, &trace);
        assert_eq!(p.stats().total(), r.predictions);
    }
}

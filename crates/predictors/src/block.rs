use bp_trace::fx::FxHashMap;

use crate::loop_pred::MAX_TRIP;
use crate::{BranchSite, Predictor};
use bp_trace::Pc;

#[derive(Debug, Clone, Copy)]
struct BlockState {
    /// Direction of the run currently in progress.
    current: bool,
    /// Length of the run so far (includes every outcome of `current` seen
    /// consecutively).
    run: u32,
    /// Length of the last completed taken-run (`n`), if observed.
    taken_run: Option<u32>,
    /// Length of the last completed not-taken-run (`m`), if observed.
    not_taken_run: Option<u32>,
}

/// The block-pattern class predictor of §4.1.2: captures branches that are
/// taken `n` times, then not-taken `m` times, then taken `n` times, and so
/// on.
///
/// After the `n`-th consecutive taken outcome it predicts the branch will be
/// not-taken for the same `m` outcomes as the previous not-taken block, and
/// symmetrically for not-taken runs. Run lengths are capped at `n, m < 256`
/// and the per-branch state lives in a perfect BTB, as in the paper.
///
/// The plain loop predictor is the `m = 1` (or `n = 1`) special case; the
/// paper keeps both and scores the repeating-pattern class by the better of
/// this and the fixed-length [`crate::KthAgo`] sweep.
#[derive(Debug, Clone, Default)]
pub struct BlockPattern {
    states: FxHashMap<Pc, BlockState>,
}

impl BlockPattern {
    /// Creates an empty block-pattern predictor.
    pub fn new() -> Self {
        BlockPattern::default()
    }

    /// Number of branches being tracked.
    pub fn tracked(&self) -> usize {
        self.states.len()
    }

    fn expected_run(s: &BlockState) -> Option<u32> {
        if s.current {
            s.taken_run
        } else {
            s.not_taken_run
        }
    }
}

impl Predictor for BlockPattern {
    fn name(&self) -> String {
        "block-pattern".to_owned()
    }

    fn predict(&self, site: BranchSite) -> bool {
        match self.states.get(&site.pc) {
            None => true,
            Some(s) => match Self::expected_run(s) {
                // The current run should end exactly now: flip.
                Some(expect) if s.run == expect => !s.current,
                // Mid-run (or stale expectation): continue the run.
                _ => s.current,
            },
        }
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        match self.states.get_mut(&site.pc) {
            None => {
                self.states.insert(
                    site.pc,
                    BlockState {
                        current: taken,
                        run: 1,
                        taken_run: None,
                        not_taken_run: None,
                    },
                );
            }
            Some(s) => {
                if taken == s.current {
                    s.run = (s.run + 1).min(MAX_TRIP + 1);
                } else {
                    // A run just completed; remember its length unless it
                    // overflowed the paper's 256 cap.
                    let completed = (s.run <= MAX_TRIP).then_some(s.run);
                    if s.current {
                        s.taken_run = completed;
                    } else {
                        s.not_taken_run = completed;
                    }
                    s.current = taken;
                    s.run = 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use bp_trace::{BranchRecord, Trace};

    fn block_trace(pc: Pc, n: usize, m: usize, blocks: usize) -> Trace {
        let mut recs = Vec::new();
        for _ in 0..blocks {
            for _ in 0..n {
                recs.push(BranchRecord::conditional(pc, true));
            }
            for _ in 0..m {
                recs.push(BranchRecord::conditional(pc, false));
            }
        }
        Trace::from_records(recs)
    }

    #[test]
    fn steady_blocks_perfect_after_warmup() {
        let trace = block_trace(0x50, 6, 3, 60);
        let stats = simulate(&mut BlockPattern::new(), &trace);
        // Both transitions of the first block are unknown; after that, none.
        assert!(
            stats.mispredictions() <= 2,
            "mispredictions {}",
            stats.mispredictions()
        );
    }

    #[test]
    fn captures_loop_as_degenerate_block() {
        let trace = block_trace(0x50, 9, 1, 60);
        let stats = simulate(&mut BlockPattern::new(), &trace);
        assert!(stats.mispredictions() <= 2);
    }

    #[test]
    fn block_length_change_costs_bounded_misses() {
        let mut recs = Vec::new();
        for (n, m) in [(4usize, 2usize), (4, 2), (8, 5), (8, 5), (8, 5)] {
            for _ in 0..n {
                recs.push(BranchRecord::conditional(0x50, true));
            }
            for _ in 0..m {
                recs.push(BranchRecord::conditional(0x50, false));
            }
        }
        let stats = simulate(&mut BlockPattern::new(), &Trace::from_records(recs));
        assert!(
            stats.mispredictions() <= 6,
            "mispredictions {}",
            stats.mispredictions()
        );
    }

    #[test]
    fn overflowed_runs_forget_expectation() {
        let trace = block_trace(0x50, 1000, 5, 3);
        let stats = simulate(&mut BlockPattern::new(), &trace);
        // Taken-runs overflow (no exit prediction): each block costs one
        // miss at the T->N transition; N->T transitions are learned.
        assert!(
            stats.mispredictions() <= 5,
            "mispredictions {}",
            stats.mispredictions()
        );
    }

    #[test]
    fn unknown_branch_predicts_taken() {
        let p = BlockPattern::new();
        assert!(p.predict(BranchSite::new(1, 5)));
        assert_eq!(p.tracked(), 0);
    }
}

use crate::counter::SaturatingCounter;
use crate::history::ShiftHistory;
use crate::pht::PatternHistoryTable;
use crate::{BranchSite, Predictor};

/// GAs — the global two-level adaptive predictor of Yeh & Patt: one global
/// history register, with the low branch-address bits selecting among
/// several pattern history tables and the history pattern selecting the
/// counter within the table.
///
/// Compared with [`crate::Gshare`], GAs partitions rather than hashes: the
/// address bits pick a PHT, so branches in different partitions never
/// interfere, but history patterns within a partition still share counters.
#[derive(Debug, Clone)]
pub struct Gas {
    history: ShiftHistory,
    tables: Vec<PatternHistoryTable>,
    table_select_bits: u32,
}

impl Gas {
    /// Creates a GAs with `history_bits` of global history and
    /// `2^table_select_bits` PHTs of `2^history_bits` counters each.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is not in `1..=28` or `table_select_bits`
    /// exceeds 12.
    pub fn new(history_bits: u32, table_select_bits: u32) -> Self {
        Gas::with_counter(
            history_bits,
            table_select_bits,
            SaturatingCounter::two_bit(),
        )
    }

    /// As [`Gas::new`] with a custom counter.
    pub fn with_counter(
        history_bits: u32,
        table_select_bits: u32,
        init: SaturatingCounter,
    ) -> Self {
        assert!(table_select_bits <= 12, "at most 4096 PHTs");
        let tables = (0..(1usize << table_select_bits))
            .map(|_| PatternHistoryTable::new(history_bits, init))
            .collect();
        Gas {
            history: ShiftHistory::new(history_bits),
            tables,
            table_select_bits,
        }
    }

    #[inline]
    fn table_index(&self, site: BranchSite) -> usize {
        ((site.pc >> 2) & ((1u64 << self.table_select_bits) - 1)) as usize
    }
}

impl Default for Gas {
    /// GAs(12, 4): 12-bit history, 16 PHTs — a mid-1990s hardware budget.
    fn default() -> Self {
        Gas::new(12, 4)
    }
}

impl Predictor for Gas {
    fn name(&self) -> String {
        format!("gas({},{})", self.history.len(), self.table_select_bits)
    }

    fn predict(&self, site: BranchSite) -> bool {
        self.tables[self.table_index(site)].predict(self.history.value())
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let t = self.table_index(site);
        self.tables[t].train(self.history.value(), taken);
        self.history.push(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use bp_trace::{BranchRecord, Trace};

    #[test]
    fn learns_global_pattern() {
        // One branch alternating T/N: global history disambiguates.
        let trace: Trace = (0..400)
            .map(|i| BranchRecord::conditional(0x80, i % 2 == 0))
            .collect();
        let stats = simulate(&mut Gas::default(), &trace);
        assert!(stats.accuracy() > 0.95);
    }

    #[test]
    fn table_partition_separates_branches() {
        // Two branches with opposite fixed directions; in the same gshare
        // slot they would fight, in GAs different PHTs keep them apart.
        let mut recs = Vec::new();
        for _ in 0..200 {
            recs.push(BranchRecord::conditional(0x0, true));
            recs.push(BranchRecord::conditional(0x4, false));
        }
        let stats = simulate(&mut Gas::new(4, 1), &Trace::from_records(recs));
        assert!(stats.accuracy() > 0.9);
    }

    #[test]
    #[should_panic(expected = "4096")]
    fn too_many_tables_rejected() {
        let _ = Gas::new(8, 13);
    }

    #[test]
    fn name_mentions_config() {
        assert_eq!(Gas::default().name(), "gas(12,4)");
    }
}

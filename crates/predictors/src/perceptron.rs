use bp_trace::fx::FxHashMap;
use bp_trace::Pc;

use crate::history::ShiftHistory;
use crate::{BranchSite, Predictor};

/// Weight saturation ceiling (8-bit signed weights, per Jiménez & Lin).
const WEIGHT_MAX: i16 = 127;
/// Weight saturation floor.
const WEIGHT_MIN: i16 = -128;

/// Jiménez & Lin's perceptron predictor: one signed weight vector per
/// static branch, dotted with the global history (±1 per outcome) plus a
/// bias term; the sign of the sum is the prediction.
///
/// Training is threshold-gated: weights move only on a misprediction or
/// while the output magnitude is at most `⌊1.93·h + 14⌋`, the margin that
/// makes the online update converge (the paper's empirically optimal
/// threshold). Weights saturate at the signed 8-bit range `[-128, 127]`
/// like hardware weights.
///
/// Weight vectors live in an unbounded per-PC map — the interference-free
/// idealization this workspace uses for every per-address structure — so
/// what the experiments measure is the scheme's intrinsic linear
/// separability, not table aliasing.
///
/// With `history_bits == 0` only the bias weight remains and the predictor
/// degenerates to a per-PC signed bias counter (threshold 14, saturating
/// at the 8-bit range), a collapse the conformance metamorphic laws pin.
#[derive(Debug, Clone)]
pub struct Perceptron {
    history: ShiftHistory,
    weights: FxHashMap<Pc, Vec<i16>>,
    threshold: i32,
}

impl Perceptron {
    /// Creates a perceptron observing `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` exceeds 64.
    pub fn new(history_bits: u32) -> Self {
        Perceptron {
            history: ShiftHistory::new(history_bits),
            weights: FxHashMap::default(),
            // ⌊1.93·h + 14⌋ in integer arithmetic.
            threshold: (193 * history_bits as i32 + 1400) / 100,
        }
    }

    /// History length in branches.
    pub fn history_bits(&self) -> u32 {
        self.history.len()
    }

    /// The training threshold `⌊1.93·h + 14⌋`.
    pub fn threshold(&self) -> i32 {
        self.threshold
    }

    /// The perceptron output for `pc` under the current history: bias plus
    /// the weighted history bits (+w for taken, −w for not-taken).
    /// Untrained branches output 0, which predicts taken.
    fn output(&self, pc: Pc) -> i32 {
        let Some(w) = self.weights.get(&pc) else {
            return 0;
        };
        let hist = self.history.value();
        let mut y = i32::from(w[0]);
        for (i, &wi) in w[1..].iter().enumerate() {
            if (hist >> i) & 1 == 1 {
                y += i32::from(wi);
            } else {
                y -= i32::from(wi);
            }
        }
        y
    }
}

impl Default for Perceptron {
    /// 32 bits of global history — the modern-zoo reference geometry.
    fn default() -> Self {
        Perceptron::new(32)
    }
}

impl Predictor for Perceptron {
    fn name(&self) -> String {
        format!("perceptron({})", self.history.len())
    }

    fn predict(&self, site: BranchSite) -> bool {
        self.output(site.pc) >= 0
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let y = self.output(site.pc);
        let pred = y >= 0;
        if pred != taken || y.abs() <= self.threshold {
            let len = self.history.len() as usize + 1;
            let w = self.weights.entry(site.pc).or_insert_with(|| vec![0; len]);
            let hist = self.history.value();
            let t: i16 = if taken { 1 } else { -1 };
            w[0] = (w[0] + t).clamp(WEIGHT_MIN, WEIGHT_MAX);
            for (i, wi) in w[1..].iter_mut().enumerate() {
                // Agreeing bit ⇒ strengthen, disagreeing ⇒ weaken.
                let x: i16 = if (hist >> i) & 1 == 1 { 1 } else { -1 };
                *wi = (*wi + t * x).clamp(WEIGHT_MIN, WEIGHT_MAX);
            }
        }
        self.history.push(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, Smith};
    use bp_trace::{BranchRecord, Trace};

    #[test]
    fn names_and_threshold() {
        assert_eq!(Perceptron::default().name(), "perceptron(32)");
        assert_eq!(Perceptron::new(0).name(), "perceptron(0)");
        assert_eq!(Perceptron::new(0).threshold(), 14);
        assert_eq!(Perceptron::new(32).threshold(), 75);
        assert_eq!(Perceptron::default().history_bits(), 32);
    }

    #[test]
    fn learns_linearly_separable_correlation() {
        // Branch B copies branch A: one strong weight suffices.
        let mut recs = Vec::new();
        let mut flip = false;
        for _ in 0..500 {
            flip = !flip;
            recs.push(BranchRecord::conditional(0x100, flip));
            recs.push(BranchRecord::conditional(0x200, flip));
        }
        let stats = simulate(&mut Perceptron::new(8), &Trace::from_records(recs));
        assert!(stats.accuracy() > 0.95, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn learns_long_loop_exit() {
        // A trip-24 loop exit is linearly separable: the not-taken bit's
        // distance uniquely marks the exit iteration, within 32 history
        // bits but beyond a bimodal counter's hysteresis.
        let mut recs = Vec::new();
        for _ in 0..200 {
            for _ in 0..24 {
                recs.push(BranchRecord::conditional(0x40, true));
            }
            recs.push(BranchRecord::conditional(0x40, false));
        }
        let trace = Trace::from_records(recs);
        let perceptron = simulate(&mut Perceptron::default(), &trace);
        let smith = simulate(&mut Smith::new(12), &trace);
        assert!(
            perceptron.correct > smith.correct,
            "perceptron {} vs smith {}",
            perceptron.correct,
            smith.correct
        );
        assert!(
            perceptron.accuracy() > 0.95,
            "accuracy {}",
            perceptron.accuracy()
        );
    }

    #[test]
    fn weights_stay_in_range_and_threshold_gates_training() {
        // Uniform taken: every weight reinforces together, so the output
        // crosses the threshold long before any weight could saturate —
        // after that, training must stop entirely.
        let mut p = Perceptron::new(4);
        let site = BranchSite::new(0x40, 0x80);
        for _ in 0..1000 {
            p.update(site, true);
        }
        let w = p.weights[&0x40].clone();
        assert!(w.iter().all(|&wi| (WEIGHT_MIN..=WEIGHT_MAX).contains(&wi)));
        assert!(p.output(0x40) > p.threshold());
        p.update(site, true);
        assert_eq!(p.weights[&0x40], w, "gated update must not move weights");

        // Pseudo-random outcomes keep the output small and updates
        // frequent; weights must still respect the saturation range.
        let mut p = Perceptron::new(8);
        let mut x = 0x9E37_79B9u32;
        for _ in 0..5000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            p.update(site, x & (1 << 16) != 0);
        }
        let w = &p.weights[&0x40];
        assert!(w.iter().all(|&wi| (WEIGHT_MIN..=WEIGHT_MAX).contains(&wi)));
    }

    #[test]
    fn zero_history_is_per_pc_bias() {
        // With no history the output is the bias alone; two branches with
        // opposite biases are both learned, independently.
        let mut recs = Vec::new();
        for _ in 0..100 {
            recs.push(BranchRecord::conditional(0x100, true));
            recs.push(BranchRecord::conditional(0x200, false));
        }
        let stats = simulate(&mut Perceptron::new(0), &Trace::from_records(recs));
        assert!(stats.accuracy() > 0.97, "accuracy {}", stats.accuracy());
    }
}

use crate::counter::SaturatingCounter;
use crate::history::ShiftHistory;
use crate::pht::{KeyedCounters, PatternHistoryTable};
use crate::{BranchSite, Predictor};

/// McFarling's gshare: a global two-level predictor that XORs the global
/// branch history with the branch address to index one shared pattern
/// history table (paper figure 3).
///
/// The XOR spreads (history, branch) pairs over the PHT, improving
/// utilization relative to GAs — but the table is still shared, so distinct
/// branches/histories alias. That *interference*, together with training
/// time, is exactly what the paper blames for gshare failing to exploit
/// correlation it theoretically captures (§3.6.3).
#[derive(Debug, Clone)]
pub struct Gshare {
    history: ShiftHistory,
    pht: PatternHistoryTable,
}

impl Gshare {
    /// Creates a gshare with `history_bits` of global history and a PHT of
    /// `2^history_bits` two-bit counters (the standard sizing).
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is not in `1..=28`.
    pub fn new(history_bits: u32) -> Self {
        Gshare::with_counter(history_bits, SaturatingCounter::two_bit())
    }

    /// As [`Gshare::new`] with a custom counter.
    pub fn with_counter(history_bits: u32, init: SaturatingCounter) -> Self {
        Gshare::with_geometry(history_bits, history_bits, init)
    }

    /// A gshare whose history length and PHT size are chosen
    /// independently: `history_bits` of global history XORed into a
    /// `2^table_bits`-entry counter table.
    ///
    /// With `history_bits = 0` the XOR contributes nothing and the
    /// predictor degenerates to a per-address bimodal table — exactly
    /// [`crate::Smith`] with `table_bits` of PC index, a collapse the
    /// conformance metamorphic laws pin.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` exceeds 64 or `table_bits` is not in
    /// `1..=28`.
    pub fn with_geometry(history_bits: u32, table_bits: u32, init: SaturatingCounter) -> Self {
        Gshare {
            history: ShiftHistory::new(history_bits),
            pht: PatternHistoryTable::new(table_bits, init),
        }
    }

    /// History length in branches.
    pub fn history_bits(&self) -> u32 {
        self.history.len()
    }

    #[inline]
    fn index(&self, site: BranchSite) -> u64 {
        self.history.value() ^ (site.pc >> 2)
    }
}

impl Default for Gshare {
    /// The paper's reference configuration: 16 bits of history.
    fn default() -> Self {
        Gshare::new(16)
    }
}

impl Predictor for Gshare {
    fn name(&self) -> String {
        format!("gshare({})", self.history.len())
    }

    fn predict(&self, site: BranchSite) -> bool {
        self.pht.predict(self.index(site))
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let idx = self.index(site);
        self.pht.train(idx, taken);
        self.history.push(taken);
    }
}

/// Interference-free gshare: same global history, but one logical PHT per
/// static branch (unbounded keyed counters), eliminating aliasing entirely.
///
/// This is the idealization used throughout §3.6 to separate interference
/// effects from intrinsic correlation capture.
#[derive(Debug, Clone)]
pub struct GshareInterferenceFree {
    history: ShiftHistory,
    counters: KeyedCounters,
}

impl GshareInterferenceFree {
    /// Creates an interference-free gshare observing `history_bits` of
    /// global history.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is not in `1..=64`.
    pub fn new(history_bits: u32) -> Self {
        GshareInterferenceFree::with_counter(history_bits, SaturatingCounter::two_bit())
    }

    /// As [`GshareInterferenceFree::new`] with a custom counter.
    pub fn with_counter(history_bits: u32, init: SaturatingCounter) -> Self {
        GshareInterferenceFree {
            history: ShiftHistory::new(history_bits),
            counters: KeyedCounters::new(init),
        }
    }

    /// History length in branches.
    pub fn history_bits(&self) -> u32 {
        self.history.len()
    }
}

impl Default for GshareInterferenceFree {
    /// 16 bits of history, matching the paper's experiments.
    fn default() -> Self {
        GshareInterferenceFree::new(16)
    }
}

impl Predictor for GshareInterferenceFree {
    fn name(&self) -> String {
        format!("if-gshare({})", self.history.len())
    }

    fn predict(&self, site: BranchSite) -> bool {
        self.counters.predict(site.pc, self.history.value())
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        self.counters.train(site.pc, self.history.value(), taken);
        self.history.push(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use bp_trace::{BranchRecord, Trace};

    /// Two perfectly correlated branches: the second repeats the first.
    fn correlated_trace(n: usize) -> Trace {
        let mut recs = Vec::new();
        let mut flip = false;
        for _ in 0..n {
            flip = !flip;
            recs.push(BranchRecord::conditional(0x100, flip));
            recs.push(BranchRecord::conditional(0x200, flip));
        }
        Trace::from_records(recs)
    }

    #[test]
    fn gshare_exploits_correlation() {
        let trace = correlated_trace(500);
        let stats = simulate(&mut Gshare::new(8), &trace);
        // Both the alternation and the copy are in-history; near-perfect.
        assert!(stats.accuracy() > 0.95, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn if_gshare_at_least_as_good_on_correlation() {
        let trace = correlated_trace(500);
        let g = simulate(&mut Gshare::new(8), &trace);
        let ifg = simulate(&mut GshareInterferenceFree::new(8), &trace);
        assert!(ifg.correct >= g.correct);
    }

    #[test]
    fn interference_hurts_small_gshare() {
        // Many branches with conflicting biases hammering a 16-entry PHT.
        let mut recs = Vec::new();
        for i in 0..2000u64 {
            let pc = 0x1000 + (i % 64) * 4;
            recs.push(BranchRecord::conditional(pc, i % 64 < 32));
        }
        let trace = Trace::from_records(recs);
        let small = simulate(&mut Gshare::new(4), &trace);
        let iff = simulate(&mut GshareInterferenceFree::new(4), &trace);
        assert!(iff.correct > small.correct);
    }

    #[test]
    fn names() {
        assert_eq!(Gshare::default().name(), "gshare(16)");
        assert_eq!(GshareInterferenceFree::default().name(), "if-gshare(16)");
        assert_eq!(Gshare::default().history_bits(), 16);
        assert_eq!(GshareInterferenceFree::default().history_bits(), 16);
    }
}

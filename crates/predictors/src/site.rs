use bp_trace::{BranchRecord, Pc};

/// What a predictor may see about a branch *before* it resolves: its address
/// and taken-target. Deliberately excludes the outcome so `predict`
/// implementations cannot peek.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchSite {
    /// Address of the branch instruction.
    pub pc: Pc,
    /// Address the branch transfers to when taken.
    pub target: Pc,
}

impl BranchSite {
    /// Creates a site from raw addresses.
    pub fn new(pc: Pc, target: Pc) -> Self {
        BranchSite { pc, target }
    }

    /// `true` when the taken-target does not lie after the branch — the
    /// static "backward taken" heuristic's input.
    #[inline]
    pub fn is_backward(&self) -> bool {
        self.target <= self.pc
    }
}

impl From<&BranchRecord> for BranchSite {
    fn from(rec: &BranchRecord) -> Self {
        BranchSite {
            pc: rec.pc,
            target: rec.target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_record_drops_outcome() {
        let rec = BranchRecord::conditional(100, true).with_target(60);
        let site = BranchSite::from(&rec);
        assert_eq!(site.pc, 100);
        assert_eq!(site.target, 60);
        assert!(site.is_backward());
    }

    #[test]
    fn forward_site() {
        assert!(!BranchSite::new(8, 64).is_backward());
        assert!(BranchSite::new(8, 8).is_backward());
    }
}

use crate::counter::SaturatingCounter;
use crate::history::ShiftHistory;
use crate::pht::PatternHistoryTable;
use crate::{BranchSite, Predictor};

/// Per-table geometry shared by every [`Tage`] built through [`Tage::new`]:
/// `2^10` entries per tagged table.
const INDEX_BITS: u32 = 10;
/// Tag width of every tagged entry (partial tags, as in the original TAGE).
const TAG_BITS: u32 = 8;
/// Shortest tagged history length; table `i` observes
/// `MIN_HISTORY << i` outcomes.
const MIN_HISTORY: u32 = 4;
/// Width of the tagged prediction counters (3-bit, per Seznec & Michaud).
const CTR_BITS: u8 = 3;
/// Saturation ceiling of the per-entry useful counters.
const USEFUL_MAX: u8 = 3;
/// Updates between useful-counter aging passes (each pass halves every
/// useful counter, so stale providers eventually become replaceable).
const AGING_PERIOD: u64 = 1 << 18;
/// Sanity ceiling on the tagged-table count (geometric doubling from
/// [`MIN_HISTORY`] exceeds the 64-bit history register beyond this).
const MAX_TABLES: usize = 8;

/// One tagged entry: a partial tag, a prediction counter, and a useful
/// counter that arbitrates replacement.
#[derive(Debug, Clone, Copy)]
struct TagEntry {
    tag: u64,
    ctr: SaturatingCounter,
    useful: u8,
}

/// One tagged component table observing a fixed global-history length.
#[derive(Debug, Clone)]
struct TaggedTable {
    history_bits: u32,
    history_mask: u64,
    entries: Vec<TagEntry>,
}

impl TaggedTable {
    fn new(history_bits: u32) -> Self {
        let history_mask = if history_bits == 64 {
            u64::MAX
        } else {
            (1u64 << history_bits) - 1
        };
        TaggedTable {
            history_bits,
            history_mask,
            entries: vec![
                TagEntry {
                    tag: 0,
                    ctr: SaturatingCounter::weakly_not_taken(CTR_BITS),
                    useful: 0,
                };
                1 << INDEX_BITS
            ],
        }
    }

    /// Folds this table's view of the global history down to `bits` bits
    /// (XOR of consecutive `bits`-wide chunks).
    fn fold(&self, history: u64, bits: u32) -> u64 {
        let mask = (1u64 << bits) - 1;
        let mut v = history & self.history_mask;
        let mut out = 0;
        while v != 0 {
            out ^= v & mask;
            v >>= bits;
        }
        out
    }

    /// Entry index for `(pc, history)`.
    fn index(&self, pc: u64, history: u64) -> usize {
        let fold = self.fold(history, INDEX_BITS);
        ((fold ^ pc ^ (pc >> INDEX_BITS)) & ((1u64 << INDEX_BITS) - 1)) as usize
    }

    /// Partial tag for `(pc, history)` — a second, differently-folded hash
    /// so index aliases rarely share a tag.
    fn tag(&self, pc: u64, history: u64) -> u64 {
        let f1 = self.fold(history, TAG_BITS);
        let f2 = self.fold(history, TAG_BITS - 1) << 1;
        (pc ^ f1 ^ f2) & ((1u64 << TAG_BITS) - 1)
    }
}

/// A TAGE-style predictor: a bimodal base table plus `N` tagged tables
/// observing geometrically increasing global-history lengths (Seznec &
/// Michaud's TAgged GEometric predictor, the reference design of the
/// modern zoo — see Mittal's survey, arXiv:1804.00261).
///
/// Prediction comes from the *provider* — the matching tagged entry with
/// the longest history — with the next-longest match (or the base table)
/// as the *alternate*. On an overall misprediction a new entry is
/// allocated in a longer table whose slot is not useful; per-entry useful
/// counters are incremented when the provider beats the alternate,
/// decremented when it loses, and periodically aged so dead entries free
/// up.
///
/// With zero tagged tables the predictor **is** its bimodal base —
/// exactly [`crate::Smith`] with the same index width, a collapse the
/// conformance metamorphic laws pin.
#[derive(Debug, Clone)]
pub struct Tage {
    base: PatternHistoryTable,
    base_bits: u32,
    tables: Vec<TaggedTable>,
    history: ShiftHistory,
    tick: u64,
}

/// A provider/alternate pair located during the table scan:
/// `(table index, entry index)`.
type Slot = (usize, usize);

impl Tage {
    /// Creates a TAGE with `tables` tagged tables of history lengths
    /// `MIN_HISTORY << i` (4, 8, 16, 32, 64 for the first five) over a
    /// bimodal base of `2^base_bits` two-bit counters.
    ///
    /// `tables == 0` degenerates to the bare bimodal base.
    ///
    /// # Panics
    ///
    /// Panics if `base_bits` is not in `1..=28` or the longest history
    /// would exceed 64 bits (`tables > 5`).
    pub fn new(tables: u32, base_bits: u32) -> Self {
        let histories: Vec<u32> = (0..tables).map(|i| MIN_HISTORY << i).collect();
        Tage::with_histories(base_bits, &histories)
    }

    /// As [`Tage::new`] with explicit per-table history lengths (strictly
    /// ascending, each `1..=64`).
    ///
    /// # Panics
    ///
    /// Panics on a non-ascending or out-of-range history list, more than
    /// 8 tables, or `base_bits` outside `1..=28`.
    pub fn with_histories(base_bits: u32, histories: &[u32]) -> Self {
        assert!(
            histories.len() <= MAX_TABLES,
            "at most {MAX_TABLES} tagged tables"
        );
        assert!(
            histories.windows(2).all(|w| w[0] < w[1]),
            "history lengths must be strictly ascending"
        );
        assert!(
            histories.iter().all(|&h| (1..=64).contains(&h)),
            "history lengths must be 1..=64"
        );
        Tage {
            base: PatternHistoryTable::new(base_bits, SaturatingCounter::two_bit()),
            base_bits,
            tables: histories.iter().map(|&h| TaggedTable::new(h)).collect(),
            history: ShiftHistory::new(64),
            tick: 0,
        }
    }

    /// Longest tagged history length, 0 with no tagged tables.
    pub fn max_history(&self) -> u32 {
        self.tables.last().map_or(0, |t| t.history_bits)
    }

    /// Number of tagged tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Scans every tagged table for `pc`, returning the provider (longest
    /// matching) and alternate (next longest) slots.
    fn find(&self, pc: u64) -> (Option<Slot>, Option<Slot>) {
        let history = self.history.value();
        let mut provider = None;
        let mut alt = None;
        for (t, table) in self.tables.iter().enumerate() {
            let idx = table.index(pc, history);
            if table.entries[idx].tag == table.tag(pc, history) {
                alt = provider;
                provider = Some((t, idx));
            }
        }
        (provider, alt)
    }

    fn slot_prediction(&self, slot: Option<Slot>, pc: u64) -> bool {
        match slot {
            Some((t, i)) => self.tables[t].entries[i].ctr.predict_taken(),
            None => self.base.predict(pc),
        }
    }
}

impl Default for Tage {
    /// Four tagged tables (histories 4/8/16/32) over a 4096-entry base —
    /// the modern-zoo reference geometry.
    fn default() -> Self {
        Tage::new(4, 12)
    }
}

impl Predictor for Tage {
    fn name(&self) -> String {
        format!(
            "tage({},{},{})",
            self.tables.len(),
            self.max_history(),
            self.base_bits
        )
    }

    fn predict(&self, site: BranchSite) -> bool {
        let pc = site.pc >> 2;
        let (provider, _) = self.find(pc);
        self.slot_prediction(provider, pc)
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let pc = site.pc >> 2;
        let history = self.history.value();
        let (provider, alt) = self.find(pc);
        let pred = self.slot_prediction(provider, pc);
        let alt_pred = self.slot_prediction(alt, pc);

        match provider {
            Some((t, i)) => {
                // The useful counter tracks whether the provider earns its
                // slot: only when it actually disagrees with the alternate
                // does its correctness carry information.
                if pred != alt_pred {
                    let e = &mut self.tables[t].entries[i];
                    if pred == taken {
                        e.useful = (e.useful + 1).min(USEFUL_MAX);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
                self.tables[t].entries[i].ctr.train(taken);
            }
            None => self.base.train(pc, taken),
        }

        // Allocate a longer-history entry on a misprediction, taking the
        // first not-useful slot above the provider; if every candidate is
        // useful, decay them all instead (deterministic — no LFSR — so
        // simulations replay bit-exactly).
        if pred != taken {
            let start = provider.map_or(0, |(t, _)| t + 1);
            let mut allocated = false;
            for t in start..self.tables.len() {
                let idx = self.tables[t].index(pc, history);
                let tag = self.tables[t].tag(pc, history);
                let e = &mut self.tables[t].entries[idx];
                if e.useful == 0 {
                    e.tag = tag;
                    e.ctr = if taken {
                        SaturatingCounter::weakly_taken(CTR_BITS)
                    } else {
                        SaturatingCounter::weakly_not_taken(CTR_BITS)
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                for t in start..self.tables.len() {
                    let idx = self.tables[t].index(pc, history);
                    let e = &mut self.tables[t].entries[idx];
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }

        self.tick += 1;
        if self.tick >= AGING_PERIOD {
            self.tick = 0;
            for table in &mut self.tables {
                for e in &mut table.entries {
                    e.useful >>= 1;
                }
            }
        }
        self.history.push(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, simulate_per_branch, Gshare, Smith};
    use bp_trace::{BranchRecord, Trace};

    /// A loop of trip `t`: `t` taken then one not-taken, repeated.
    fn loop_trace(trip: usize, exits: usize) -> Trace {
        let mut recs = Vec::new();
        for _ in 0..exits {
            for _ in 0..trip {
                recs.push(BranchRecord::conditional(0x40, true));
            }
            recs.push(BranchRecord::conditional(0x40, false));
        }
        Trace::from_records(recs)
    }

    #[test]
    fn names_and_geometry() {
        assert_eq!(Tage::default().name(), "tage(4,32,12)");
        assert_eq!(Tage::new(0, 10).name(), "tage(0,0,10)");
        assert_eq!(Tage::default().max_history(), 32);
        assert_eq!(Tage::default().table_count(), 4);
        assert_eq!(Tage::with_histories(8, &[3, 9, 27]).max_history(), 27);
    }

    #[test]
    fn zero_tables_is_exactly_bimodal() {
        let trace = loop_trace(5, 100);
        let tage = simulate_per_branch(&mut Tage::new(0, 8), &trace);
        let smith = simulate_per_branch(&mut Smith::new(8), &trace);
        assert_eq!(tage, smith);
    }

    #[test]
    fn captures_long_loop_exits_bimodal_misses() {
        // Trip 20 exceeds any counter's hysteresis: bimodal mispredicts
        // every exit, TAGE's 32-bit-history table sees the previous exit.
        let trace = loop_trace(20, 200);
        let tage = simulate(&mut Tage::default(), &trace);
        let smith = simulate(&mut Smith::new(12), &trace);
        assert!(
            tage.correct > smith.correct + 100,
            "tage {} vs smith {}",
            tage.correct,
            smith.correct
        );
        assert!(tage.accuracy() > 0.98, "accuracy {}", tage.accuracy());
    }

    #[test]
    fn beats_gshare_past_its_history_window() {
        // Trip 24 loop: the exit is 24 outcomes back, outside gshare(16)'s
        // window once the body saturates it, inside TAGE's 32-bit table.
        let trace = loop_trace(24, 150);
        let tage = simulate(&mut Tage::default(), &trace);
        let gshare = simulate(&mut Gshare::new(16), &trace);
        assert!(
            tage.correct > gshare.correct,
            "tage {} vs gshare {}",
            tage.correct,
            gshare.correct
        );
    }

    #[test]
    fn aging_halves_useful_counters() {
        let mut tage = Tage::new(1, 4);
        // Force a useful counter up, then push past the aging period.
        let site = BranchSite::new(0x40, 0x80);
        for i in 0..(AGING_PERIOD + 10) {
            let taken = i % 3 != 0;
            tage.update(site, taken);
        }
        let max_useful = tage
            .tables
            .iter()
            .flat_map(|t| t.entries.iter())
            .map(|e| e.useful)
            .max()
            .unwrap();
        assert!(max_useful <= USEFUL_MAX);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn non_ascending_histories_rejected() {
        let _ = Tage::with_histories(8, &[8, 8]);
    }

    #[test]
    #[should_panic(expected = "tagged tables")]
    fn too_many_tables_rejected() {
        let _ = Tage::with_histories(8, &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }
}

use crate::counter::SaturatingCounter;
use crate::gas::Gas;
use crate::history::ShiftHistory;
use crate::pas::Pas;
use crate::pht::PatternHistoryTable;
use crate::{BranchSite, Predictor};

/// GAg — the fully global two-level predictor of Yeh & Patt's taxonomy:
/// one global history register, one shared PHT indexed by the history
/// pattern alone (no address bits at all).
///
/// The maximally-aliasing end of the global family: every branch reaching
/// the same history pattern shares a counter. [`crate::Gas`] partitions by
/// address, [`crate::Gshare`] hashes address into the index; `GAg` does
/// neither, which is what makes it the clean baseline for interference
/// studies.
#[derive(Debug, Clone)]
pub struct Gag {
    history: ShiftHistory,
    pht: PatternHistoryTable,
}

impl Gag {
    /// Creates a GAg with `history_bits` of global history and a
    /// `2^history_bits` PHT.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is not in `1..=28`.
    pub fn new(history_bits: u32) -> Self {
        Gag::with_counter(history_bits, SaturatingCounter::two_bit())
    }

    /// As [`Gag::new`] with a custom counter.
    pub fn with_counter(history_bits: u32, init: SaturatingCounter) -> Self {
        Gag {
            history: ShiftHistory::new(history_bits),
            pht: PatternHistoryTable::new(history_bits, init),
        }
    }
}

impl Default for Gag {
    /// 12-bit global history.
    fn default() -> Self {
        Gag::new(12)
    }
}

impl Predictor for Gag {
    fn name(&self) -> String {
        format!("gag({})", self.history.len())
    }

    fn predict(&self, _site: BranchSite) -> bool {
        self.pht.predict(self.history.value())
    }

    fn update(&mut self, _site: BranchSite, taken: bool) {
        self.pht.train(self.history.value(), taken);
        self.history.push(taken);
    }
}

/// PAg — per-address first-level histories feeding one *shared* PHT
/// (Yeh & Patt's taxonomy; contrast with [`crate::Pas`]/PAp, whose PHTs
/// are address-selected).
///
/// Self-history is tracked per branch, but branches whose histories reach
/// the same pattern share second-level counters — per-address pattern
/// interference in its purest form.
#[derive(Debug, Clone)]
pub struct Pag {
    history_bits: u32,
    bht_bits: u32,
    bht: Vec<u64>,
    pht: PatternHistoryTable,
}

impl Pag {
    /// Creates a PAg with `history_bits` of per-address history, a
    /// `2^bht_bits`-entry BHT, and one `2^history_bits` PHT.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is not in `1..=28` or `bht_bits` exceeds
    /// 24.
    pub fn new(history_bits: u32, bht_bits: u32) -> Self {
        Pag::with_counter(history_bits, bht_bits, SaturatingCounter::two_bit())
    }

    /// As [`Pag::new`] with a custom counter.
    pub fn with_counter(history_bits: u32, bht_bits: u32, init: SaturatingCounter) -> Self {
        assert!(bht_bits <= 24, "BHT at most 2^24 entries");
        Pag {
            history_bits,
            bht_bits,
            bht: vec![0; 1 << bht_bits],
            pht: PatternHistoryTable::new(history_bits, init),
        }
    }

    #[inline]
    fn bht_index(&self, site: BranchSite) -> usize {
        ((site.pc >> 2) & ((1u64 << self.bht_bits) - 1)) as usize
    }
}

impl Default for Pag {
    /// 12-bit per-address history, 1024-entry BHT.
    fn default() -> Self {
        Pag::new(12, 10)
    }
}

impl Predictor for Pag {
    fn name(&self) -> String {
        format!("pag({},{})", self.history_bits, self.bht_bits)
    }

    fn predict(&self, site: BranchSite) -> bool {
        self.pht.predict(self.bht[self.bht_index(site)])
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let bi = self.bht_index(site);
        let hist = self.bht[bi];
        self.pht.train(hist, taken);
        self.bht[bi] = ((hist << 1) | u64::from(taken)) & ((1u64 << self.history_bits) - 1);
    }
}

/// Constructs the global-history family at comparable budgets — GAg, GAs,
/// gshare, and gskew — convenient for family comparison experiments.
pub fn global_family(history_bits: u32) -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(Gag::new(history_bits)),
        Box::new(Gas::new(history_bits, 4)),
        Box::new(crate::Gshare::new(history_bits)),
        Box::new(crate::Gskew::new(history_bits, history_bits)),
    ]
}

/// The per-address family members at comparable budgets.
pub fn per_address_family(history_bits: u32) -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(Pag::new(history_bits, 10)),
        Box::new(Pas::new(history_bits, 10, 4)),
        Box::new(crate::PasInterferenceFree::new(history_bits)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use bp_trace::{BranchRecord, Trace};

    #[test]
    fn gag_learns_global_patterns() {
        let trace: Trace = (0..2000)
            .map(|i| BranchRecord::conditional(0x40, i % 4 != 1))
            .collect();
        let stats = simulate(&mut Gag::new(8), &trace);
        assert!(stats.accuracy() > 0.95);
    }

    #[test]
    fn gag_suffers_more_interference_than_partitioned_gas() {
        // Two opposite-biased branches whose noisy outcomes pollute the
        // global history: GAg's counters see both branches under the same
        // patterns and wash out; GAs's address partition keeps their PHTs
        // apart, so each table simply learns its branch's bias.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut recs = Vec::new();
        for _ in 0..4000 {
            recs.push(BranchRecord::conditional(0x100, rng.gen_bool(0.9)));
            recs.push(BranchRecord::conditional(0x104, rng.gen_bool(0.1)));
        }
        let trace = Trace::from_records(recs);
        let gag = simulate(&mut Gag::new(8), &trace);
        let gas = simulate(&mut Gas::new(8, 1), &trace);
        assert!(
            gas.correct > gag.correct,
            "gas {} vs gag {}",
            gas.correct,
            gag.correct
        );
    }

    #[test]
    fn pag_tracks_self_history_through_shared_pht() {
        let trace: Trace = (0..3000)
            .map(|i| BranchRecord::conditional(0x40 + (i % 3) * 4, (i / 3) % 5 != 0))
            .collect();
        let stats = simulate(&mut Pag::default(), &trace);
        assert!(stats.accuracy() > 0.9, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn families_construct_and_run() {
        let trace: Trace = (0..500)
            .map(|i| BranchRecord::conditional(0x10 + (i % 7) * 4, i % 2 == 0))
            .collect();
        for mut p in global_family(8).into_iter().chain(per_address_family(8)) {
            let stats = simulate(p.as_mut(), &trace);
            assert_eq!(stats.predictions, 500, "{}", p.name());
        }
    }

    #[test]
    fn names() {
        assert_eq!(Gag::default().name(), "gag(12)");
        assert_eq!(Pag::default().name(), "pag(12,10)");
    }
}

use bp_trace::fx::FxHashMap;

use serde::{Deserialize, Serialize};

use bp_trace::io::TraceIoError;
use bp_trace::{Pc, Trace, TraceSource};

use crate::{BranchSite, Predictor};

/// Prediction accuracy bookkeeping: how many predictions were made and how
/// many were correct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictionStats {
    /// Total predictions made.
    pub predictions: u64,
    /// Predictions that matched the outcome.
    pub correct: u64,
}

impl PredictionStats {
    /// Records one prediction result.
    #[inline]
    pub fn record(&mut self, correct: bool) {
        self.predictions += 1;
        if correct {
            self.correct += 1;
        }
    }

    /// Accuracy in `[0, 1]`; zero when no predictions were made.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }

    /// Accuracy as a percentage, the unit the paper reports.
    pub fn accuracy_pct(&self) -> f64 {
        self.accuracy() * 100.0
    }

    /// Number of mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.predictions - self.correct
    }

    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: PredictionStats) {
        self.predictions += other.predictions;
        self.correct += other.correct;
    }
}

/// Per-static-branch prediction statistics, plus the overall total.
///
/// This is the raw material of the paper's per-branch analyses: the
/// hypothetical combined predictors of Tables 2 and 3 and the "best
/// predictor" distributions of Figures 6–8 all compare predictors *per
/// branch* using exactly these counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerBranchStats {
    per_branch: FxHashMap<Pc, PredictionStats>,
    total: PredictionStats,
}

impl PerBranchStats {
    /// Creates an empty stats table.
    pub fn new() -> Self {
        PerBranchStats::default()
    }

    /// Records one prediction result for the branch at `pc`.
    #[inline]
    pub fn record(&mut self, pc: Pc, correct: bool) {
        self.per_branch.entry(pc).or_default().record(correct);
        self.total.record(correct);
    }

    /// Overall statistics across all branches.
    pub fn total(&self) -> PredictionStats {
        self.total
    }

    /// Statistics for one branch, if it was predicted at least once.
    pub fn get(&self, pc: Pc) -> Option<&PredictionStats> {
        self.per_branch.get(&pc)
    }

    /// Iterates `(pc, stats)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &PredictionStats)> {
        self.per_branch.iter().map(|(pc, s)| (*pc, s))
    }

    /// Number of distinct static branches seen.
    pub fn static_count(&self) -> usize {
        self.per_branch.len()
    }

    /// Inserts (or accumulates into) the stats block for one branch.
    ///
    /// Lets analyses that compute per-branch correct counts without running
    /// a [`Predictor`] (e.g. the oracle selective-history evaluation)
    /// present their results in the common per-branch form.
    pub fn insert(&mut self, pc: Pc, stats: PredictionStats) {
        self.per_branch.entry(pc).or_default().merge(stats);
        self.total.merge(stats);
    }
}

impl FromIterator<(Pc, PredictionStats)> for PerBranchStats {
    fn from_iter<I: IntoIterator<Item = (Pc, PredictionStats)>>(iter: I) -> Self {
        let mut out = PerBranchStats::new();
        for (pc, stats) in iter {
            out.insert(pc, stats);
        }
        out
    }
}

/// Runs a predictor over every conditional branch of a trace, in order,
/// predicting before training — the paper's trace-driven simulation loop.
pub fn simulate<P: Predictor + ?Sized>(predictor: &mut P, trace: &Trace) -> PredictionStats {
    let mut stats = PredictionStats::default();
    for rec in trace.conditionals() {
        let site = BranchSite::from(rec);
        let pred = predictor.predict(site);
        stats.record(pred == rec.taken);
        predictor.update(site, rec.taken);
    }
    stats
}

/// Like [`simulate`], additionally keeping per-static-branch accuracy.
pub fn simulate_per_branch<P: Predictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
) -> PerBranchStats {
    let mut stats = PerBranchStats::new();
    for rec in trace.conditionals() {
        let site = BranchSite::from(rec);
        let pred = predictor.predict(site);
        stats.record(rec.pc, pred == rec.taken);
        predictor.update(site, rec.taken);
    }
    stats
}

/// Runs N predictors over one trace in a *single* pass, returning one
/// [`PerBranchStats`] per predictor (in input order).
///
/// Equivalent to calling [`simulate_per_branch`] once per predictor — each
/// predictor sees the identical record sequence and trains independently —
/// but the trace is decoded and iterated once instead of N times, keeping
/// the record stream hot in cache while the (much smaller) predictor state
/// tables absorb the working-set pressure. This is the entry point the
/// evaluation engine in `bp-experiments` uses to pre-warm its cache.
pub fn simulate_batch(predictors: &mut [Box<dyn Predictor>], trace: &Trace) -> Vec<PerBranchStats> {
    simulate_batch_source(predictors, trace).expect("in-memory traces cannot fail to scan")
}

/// As [`simulate_batch`], but consuming any [`TraceSource`] chunk by chunk,
/// so a disk-resident or regenerated trace simulates without ever being
/// materialized in memory. Record order — and therefore every predictor's
/// training sequence — is identical to the in-memory loop.
pub fn simulate_batch_source<T: TraceSource + ?Sized>(
    predictors: &mut [Box<dyn Predictor>],
    source: &T,
) -> Result<Vec<PerBranchStats>, TraceIoError> {
    let mut stats: Vec<PerBranchStats> = predictors.iter().map(|_| PerBranchStats::new()).collect();
    source.scan(&mut |chunk| {
        for rec in chunk.iter().filter(|r| r.is_conditional()) {
            let site = BranchSite::from(rec);
            for (predictor, stat) in predictors.iter_mut().zip(stats.iter_mut()) {
                let pred = predictor.predict(site);
                stat.record(rec.pc, pred == rec.taken);
                predictor.update(site, rec.taken);
            }
        }
    })?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statics::StaticTaken;
    use bp_trace::BranchRecord;

    #[test]
    fn stats_math() {
        let mut s = PredictionStats::default();
        assert_eq!(s.accuracy(), 0.0);
        s.record(true);
        s.record(true);
        s.record(false);
        assert_eq!(s.predictions, 3);
        assert_eq!(s.correct, 2);
        assert_eq!(s.mispredictions(), 1);
        assert!((s.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.accuracy_pct() - 66.666).abs() < 0.01);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PredictionStats {
            predictions: 10,
            correct: 7,
        };
        a.merge(PredictionStats {
            predictions: 5,
            correct: 5,
        });
        assert_eq!(a.predictions, 15);
        assert_eq!(a.correct, 12);
    }

    #[test]
    fn per_branch_totals_match() {
        let mut s = PerBranchStats::new();
        s.record(1, true);
        s.record(1, false);
        s.record(2, true);
        assert_eq!(s.total().predictions, 3);
        assert_eq!(s.total().correct, 2);
        assert_eq!(s.get(1).unwrap().predictions, 2);
        assert_eq!(s.get(2).unwrap().correct, 1);
        assert!(s.get(3).is_none());
        assert_eq!(s.static_count(), 2);
        let sum: u64 = s.iter().map(|(_, st)| st.predictions).sum();
        assert_eq!(sum, s.total().predictions);
    }

    #[test]
    fn simulate_static_taken() {
        let trace: Trace = [(1, true), (1, false), (2, true)]
            .iter()
            .map(|&(pc, t)| BranchRecord::conditional(pc, t))
            .collect();
        let mut p = StaticTaken;
        let s = simulate(&mut p, &trace);
        assert_eq!(s.predictions, 3);
        assert_eq!(s.correct, 2);
        let pb = simulate_per_branch(&mut StaticTaken, &trace);
        assert_eq!(pb.total(), s);
    }

    #[test]
    fn batch_source_matches_per_trace_simulation() {
        let mut recs = Vec::new();
        let mut x = 11u64;
        for _ in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            recs.push(BranchRecord::conditional(
                0x40 + (x >> 62),
                x >> 61 & 1 == 1,
            ));
        }
        let trace = Trace::from_records(recs);
        let mk = || -> Vec<Box<dyn Predictor>> {
            vec![Box::new(StaticTaken), Box::new(crate::Smith::new(4))]
        };
        let direct: Vec<_> = {
            let mut ps = mk();
            ps.iter_mut()
                .map(|p| simulate_per_branch(p.as_mut(), &trace))
                .collect()
        };
        let batched = simulate_batch(&mut mk(), &trace);
        let streamed = simulate_batch_source(&mut mk(), &trace).unwrap();
        assert_eq!(direct, batched);
        assert_eq!(direct, streamed);
    }

    #[test]
    fn simulate_skips_non_conditionals() {
        let trace = Trace::from_records(vec![BranchRecord {
            pc: 1,
            target: 2,
            taken: true,
            kind: bp_trace::BranchKind::Call,
        }]);
        let s = simulate(&mut StaticTaken, &trace);
        assert_eq!(s.predictions, 0);
    }
}

use crate::counter::SaturatingCounter;
use crate::history::ShiftHistory;
use crate::pht::PatternHistoryTable;
use crate::{BranchSite, Predictor};

/// The enhanced skewed branch predictor (Seznec; the paper's reference
/// \[7\] on trading conflict and capacity aliasing): three counter banks
/// indexed by three *different* hash functions of (address, history), with
/// a majority vote.
///
/// Two branches that collide in one bank almost never collide in the other
/// two, so a single conflict is outvoted — attacking exactly the PHT
/// interference that §3.3 identifies as gshare's weakness. The *enhanced*
/// variant's partial update is implemented too: on a correct prediction
/// only the agreeing banks train, which protects a dissenting bank's state
/// from aliasing damage.
#[derive(Debug, Clone)]
pub struct Gskew {
    history: ShiftHistory,
    banks: [PatternHistoryTable; 3],
    bank_bits: u32,
}

impl Gskew {
    /// Creates a gskew with `history_bits` of global history and three
    /// banks of `2^bank_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is not in `1..=64` or `bank_bits` not in
    /// `1..=28`.
    pub fn new(history_bits: u32, bank_bits: u32) -> Self {
        Gskew::with_counter(history_bits, bank_bits, SaturatingCounter::two_bit())
    }

    /// As [`Gskew::new`] with a custom counter.
    pub fn with_counter(history_bits: u32, bank_bits: u32, init: SaturatingCounter) -> Self {
        Gskew {
            history: ShiftHistory::new(history_bits),
            banks: [
                PatternHistoryTable::new(bank_bits, init),
                PatternHistoryTable::new(bank_bits, init),
                PatternHistoryTable::new(bank_bits, init),
            ],
            bank_bits,
        }
    }

    /// Seznec's skewing functions are built from a one-bit-mixing
    /// permutation `H` and its inverse over the index space; this is the
    /// standard construction on `bank_bits`-wide values.
    #[inline]
    fn h(v: u64, bits: u32) -> u64 {
        let msb = (v >> (bits - 1)) & 1;
        let lsb = v & 1;
        ((v << 1) & ((1 << bits) - 1)) | (msb ^ lsb)
    }

    #[inline]
    fn h_inv(v: u64, bits: u32) -> u64 {
        let b0 = v & 1;
        let b1 = (v >> 1) & 1;
        (v >> 1) | ((b0 ^ b1) << (bits - 1))
    }

    #[inline]
    fn indices(&self, site: BranchSite) -> [u64; 3] {
        let bits = self.bank_bits;
        let mask = (1u64 << bits) - 1;
        let a = (site.pc >> 2) & mask;
        let b = self.history.value() & mask;
        [
            Self::h(a, bits) ^ Self::h_inv(b, bits) ^ b,
            Self::h(a, bits) ^ Self::h_inv(b, bits) ^ a,
            Self::h_inv(a, bits) ^ Self::h(b, bits) ^ b,
        ]
    }

    fn votes(&self, site: BranchSite) -> [bool; 3] {
        let idx = self.indices(site);
        [
            self.banks[0].predict(idx[0]),
            self.banks[1].predict(idx[1]),
            self.banks[2].predict(idx[2]),
        ]
    }
}

impl Default for Gskew {
    /// 12-bit history, three 2^12 banks — comparable state to gshare(13.6).
    fn default() -> Self {
        Gskew::new(12, 12)
    }
}

impl Predictor for Gskew {
    fn name(&self) -> String {
        format!("gskew({},{})", self.history.len(), self.bank_bits)
    }

    fn predict(&self, site: BranchSite) -> bool {
        let v = self.votes(site);
        (u8::from(v[0]) + u8::from(v[1]) + u8::from(v[2])) >= 2
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let votes = self.votes(site);
        let majority = (u8::from(votes[0]) + u8::from(votes[1]) + u8::from(votes[2])) >= 2;
        let idx = self.indices(site);
        if majority == taken {
            // Partial update: only the banks that agreed strengthen; a
            // dissenting bank keeps what some other branch taught it.
            for ((bank, &index), &vote) in self.banks.iter_mut().zip(&idx).zip(&votes) {
                if vote == taken {
                    bank.train(index, taken);
                }
            }
        } else {
            // Mispredict: retrain everything.
            for (bank, &index) in self.banks.iter_mut().zip(&idx) {
                bank.train(index, taken);
            }
        }
        self.history.push(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, Gshare};
    use bp_trace::{BranchRecord, Trace};

    #[test]
    fn learns_biased_and_patterned_branches() {
        let trace: Trace = (0..4000)
            .map(|i| BranchRecord::conditional(0x40 + (i % 5) * 4, i % 3 != 0))
            .collect();
        let stats = simulate(&mut Gskew::default(), &trace);
        assert!(stats.accuracy() > 0.9, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn outvotes_conflicts_on_real_workloads() {
        // At equal per-bank sizing, skewed indexing + majority vote beats
        // gshare on interference-heavy code: the gcc workload has hundreds
        // of static branches hammering the tables. (Hand-built adversarial
        // traces with only a couple of global-history values defeat the
        // skew — collisions become bijective — so the honest check is a
        // program-shaped trace.)
        use bp_workloads::{Benchmark, WorkloadConfig};
        let trace = Benchmark::Gcc.generate(&WorkloadConfig::default().with_target(40_000));
        let gshare = simulate(&mut Gshare::new(10), &trace);
        let gskew = simulate(&mut Gskew::new(10, 10), &trace);
        assert!(
            gskew.correct > gshare.correct,
            "gskew {} vs gshare {}",
            gskew.correct,
            gshare.correct
        );
    }

    #[test]
    fn hash_functions_are_permutations() {
        let bits = 8u32;
        let mut seen_h = vec![false; 1 << bits];
        let mut seen_hi = vec![false; 1 << bits];
        for v in 0..(1u64 << bits) {
            let h = Gskew::h(v, bits) as usize;
            let hi = Gskew::h_inv(v, bits) as usize;
            assert!(!seen_h[h], "H collision at {v}");
            assert!(!seen_hi[hi], "H^-1 collision at {v}");
            seen_h[h] = true;
            seen_hi[hi] = true;
            // And they are mutual inverses.
            assert_eq!(Gskew::h_inv(Gskew::h(v, bits), bits), v);
        }
    }

    #[test]
    fn name_mentions_config() {
        assert_eq!(Gskew::default().name(), "gskew(12,12)");
    }
}

//! Property-based tests for predictor components and whole predictors on
//! arbitrary traces.

use proptest::prelude::*;

use bp_predictors::{
    simulate, simulate_batch, simulate_per_branch, BackwardTaken, BlockPattern, BranchSite, Gag,
    Gas, Gshare, GshareInterferenceFree, Gskew, Hybrid, IdealStatic, InterferenceGshare, KthAgo,
    LoopPredictor, Pag, Pas, PasInterferenceFree, PathBased, PatternHistoryTable, Predictor,
    SaturatingCounter, ShiftHistory, Smith, StaticNotTaken, StaticTaken,
};
use bp_trace::{BranchProfile, Trace};

/// This crate's historical generator parameters, over the shared
/// [`bp_trace::testgen`] strategy.
fn arb_trace(max: usize) -> impl Strategy<Value = Trace> {
    bp_trace::testgen::arb_trace(32, 0x1000, 0..max)
}

/// Every predictor under test, fresh.
fn all_predictors() -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(StaticTaken),
        Box::new(StaticNotTaken),
        Box::new(BackwardTaken),
        Box::new(Smith::new(6)),
        Box::new(Gshare::new(8)),
        Box::new(GshareInterferenceFree::new(8)),
        Box::new(Gas::new(6, 2)),
        Box::new(Pas::new(6, 4, 1)),
        Box::new(PasInterferenceFree::new(6)),
        Box::new(PathBased::new(4, 2)),
        Box::new(LoopPredictor::new()),
        Box::new(KthAgo::new(3)),
        Box::new(BlockPattern::new()),
        Box::new(Hybrid::new(Gshare::new(6), Pas::new(4, 3, 1), 6)),
        Box::new(Gag::new(6)),
        Box::new(Pag::new(6, 4)),
        Box::new(Gskew::new(6, 6)),
        Box::new(InterferenceGshare::new(6)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counters_stay_in_range(bits in 1u8..6, ops in prop::collection::vec(any::<bool>(), 0..64)) {
        let mut c = SaturatingCounter::weakly_taken(bits);
        for op in ops {
            c.train(op);
            prop_assert!(c.value() <= c.max_value());
        }
    }

    #[test]
    fn counter_saturates_to_outcome(bits in 1u8..6, taken in any::<bool>()) {
        let mut c = SaturatingCounter::weakly_not_taken(bits);
        for _ in 0..(1 << bits) {
            c.train(taken);
        }
        prop_assert_eq!(c.predict_taken(), taken);
        prop_assert!(c.is_saturated());
    }

    #[test]
    fn history_only_remembers_len(len in 1u32..32, ops in prop::collection::vec(any::<bool>(), 0..80)) {
        let mut h = ShiftHistory::new(len);
        for &op in &ops {
            h.push(op);
        }
        prop_assert!(h.value() < (1u64 << len) || len == 64);
        // The register equals the last `len` outcomes packed LSB-most-recent.
        let mut expect = 0u64;
        for &op in ops.iter().rev().take(len as usize).collect::<Vec<_>>().iter().rev() {
            expect = (expect << 1) | u64::from(*op);
        }
        prop_assert_eq!(h.value(), expect);
    }

    #[test]
    fn pht_only_touched_slot_changes(idx in 0u64..1024, other in 0u64..1024) {
        let mut pht = PatternHistoryTable::new(10, SaturatingCounter::two_bit());
        let before = pht.counter(other).value();
        pht.train(idx, false);
        if idx != other {
            prop_assert_eq!(pht.counter(other).value(), before);
        }
    }

    #[test]
    fn every_predictor_scores_every_branch(trace in arb_trace(300)) {
        let n = trace.conditional_count() as u64;
        for mut p in all_predictors() {
            let stats = simulate(p.as_mut(), &trace);
            prop_assert_eq!(stats.predictions, n, "{}", p.name());
            prop_assert!(stats.correct <= n);
        }
    }

    #[test]
    fn per_branch_decomposition_matches_total(trace in arb_trace(300)) {
        let total = simulate(&mut Gshare::new(8), &trace);
        let per_branch = simulate_per_branch(&mut Gshare::new(8), &trace);
        prop_assert_eq!(per_branch.total(), total);
        let sum: u64 = per_branch.iter().map(|(_, s)| s.correct).sum();
        prop_assert_eq!(sum, total.correct);
    }

    #[test]
    fn ideal_static_beats_both_constant_predictors(trace in arb_trace(300)) {
        let profile = BranchProfile::of(&trace);
        let ideal = simulate(&mut IdealStatic::from_profile(&profile), &trace);
        let taken = simulate(&mut StaticTaken, &trace);
        let not_taken = simulate(&mut StaticNotTaken, &trace);
        prop_assert!(ideal.correct >= taken.correct.max(not_taken.correct));
        // And it matches the analytic profile value exactly.
        prop_assert_eq!(ideal.correct, profile.ideal_static_correct());
    }

    #[test]
    fn predictors_are_deterministic(trace in arb_trace(200)) {
        for (mut a, mut b) in all_predictors().into_iter().zip(all_predictors()) {
            let ra = simulate(a.as_mut(), &trace);
            let rb = simulate(b.as_mut(), &trace);
            prop_assert_eq!(ra, rb, "{}", a.name());
        }
    }

    #[test]
    fn batch_simulation_matches_sequential(trace in arb_trace(300)) {
        // One single-pass batch over N predictors must equal N independent
        // sequential runs, predictor by predictor and branch by branch —
        // the evaluation engine's prewarm correctness rests on this.
        let mut batch = all_predictors();
        let batched = simulate_batch(&mut batch, &trace);
        prop_assert_eq!(batched.len(), batch.len());
        for (mut p, batched_stats) in all_predictors().into_iter().zip(batched) {
            let sequential = simulate_per_branch(p.as_mut(), &trace);
            prop_assert_eq!(&batched_stats, &sequential, "{}", p.name());
        }
    }

    #[test]
    fn predict_does_not_mutate(trace in arb_trace(120), probe_pc in 0u64..32) {
        // Calling predict() repeatedly between updates must not change the
        // prediction (predict takes &self, but e.g. interior mutability
        // could sneak in — this pins the contract).
        let site = BranchSite::new(probe_pc * 4 + 0x1000, 0x2000);
        for mut p in all_predictors() {
            for rec in trace.conditionals() {
                let s = BranchSite::from(rec);
                let first = p.predict(s);
                prop_assert_eq!(p.predict(s), first);
                let probe = p.predict(site);
                prop_assert_eq!(p.predict(site), probe);
                p.update(s, rec.taken);
            }
        }
    }
}

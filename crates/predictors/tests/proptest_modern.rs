//! Property-based tests pinning the modern-zoo predictors ([`Tage`],
//! [`Perceptron`]) deterministic and trait-lawful on arbitrary traces,
//! including the degenerate geometries and saturation boundaries the
//! conformance laws lean on.

use proptest::prelude::*;

use bp_predictors::{simulate, simulate_per_branch, BranchSite, Perceptron, Predictor, Tage};
use bp_trace::{BranchRecord, Trace};

/// This crate's historical generator parameters, over the shared
/// [`bp_trace::testgen`] strategy.
fn arb_trace(max: usize) -> impl Strategy<Value = Trace> {
    bp_trace::testgen::arb_trace(32, 0x1000, 0..max)
}

/// Every modern-zoo geometry under test, fresh — including both
/// degenerate collapses and a single-table TAGE.
fn modern_predictors() -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(Tage::new(0, 8)),
        Box::new(Tage::new(1, 8)),
        Box::new(Tage::new(4, 10)),
        Box::new(Perceptron::new(0)),
        Box::new(Perceptron::new(1)),
        Box::new(Perceptron::new(16)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn modern_predictors_are_deterministic(trace in arb_trace(250)) {
        // Same trace, two fresh instances, identical per-branch stats —
        // byte-identical experiment artifacts rest on this (TAGE must not
        // smuggle in LFSR allocation, perceptron no hash-order effects).
        for (mut a, mut b) in modern_predictors().into_iter().zip(modern_predictors()) {
            let ra = simulate_per_branch(a.as_mut(), &trace);
            let rb = simulate_per_branch(b.as_mut(), &trace);
            prop_assert_eq!(ra, rb, "{}", a.name());
        }
    }

    #[test]
    fn modern_predictors_score_every_branch(trace in arb_trace(250)) {
        let n = trace.conditional_count() as u64;
        for mut p in modern_predictors() {
            let stats = simulate(p.as_mut(), &trace);
            prop_assert_eq!(stats.predictions, n, "{}", p.name());
            prop_assert!(stats.correct <= n, "{}", p.name());
            let acc = stats.accuracy();
            prop_assert!((0.0..=1.0).contains(&acc), "{} accuracy {acc}", p.name());
        }
    }

    #[test]
    fn modern_predict_does_not_mutate(trace in arb_trace(120), probe_pc in 0u64..32) {
        let probe = BranchSite::new(probe_pc * 4 + 0x1000, 0x2000);
        for mut p in modern_predictors() {
            for rec in trace.conditionals() {
                let s = BranchSite::from(rec);
                let first = p.predict(s);
                prop_assert_eq!(p.predict(s), first, "{}", p.name());
                let off_path = p.predict(probe);
                prop_assert_eq!(p.predict(probe), off_path, "{}", p.name());
                p.update(s, rec.taken);
            }
        }
    }

    #[test]
    fn constant_direction_traces_saturate_safely(taken in any::<bool>(), len in 1usize..2000) {
        // A monotone outcome stream drives every TAGE useful counter and
        // perceptron weight toward its bound; nothing may panic or wrap,
        // and the tail of a long enough stream must be predicted perfectly.
        let trace: Trace = (0..len)
            .map(|_| BranchRecord::conditional(0x40, taken))
            .collect();
        for mut p in modern_predictors() {
            let stats = simulate(p.as_mut(), &trace);
            prop_assert_eq!(stats.predictions, len as u64, "{}", p.name());
            if len > 64 {
                // Warmup is bounded: at most a handful of early misses.
                prop_assert!(
                    stats.mispredictions() <= 8,
                    "{} missed {} of {len} constant outcomes",
                    p.name(),
                    stats.mispredictions()
                );
            }
        }
    }

    #[test]
    fn name_is_pure_and_stable_under_training(trace in arb_trace(150)) {
        for mut p in modern_predictors() {
            let before = p.name();
            simulate(p.as_mut(), &trace);
            prop_assert_eq!(p.name(), before);
        }
    }
}

#[test]
fn empty_and_single_branch_traces_are_safe() {
    let empty = Trace::from_records(vec![]);
    let single_taken = Trace::from_records(vec![BranchRecord::conditional(0x40, true)]);
    let single_not = Trace::from_records(vec![BranchRecord::conditional(0x40, false)]);
    for trace in [&empty, &single_taken, &single_not] {
        for mut p in modern_predictors() {
            let stats = simulate(p.as_mut(), trace);
            assert_eq!(
                stats.predictions,
                trace.conditional_count() as u64,
                "{}",
                p.name()
            );
        }
    }
}

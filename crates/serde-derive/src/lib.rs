//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The derives expand to nothing: the annotations exist in this
//! workspace purely as decoration (see `crates/serde`). Implemented with
//! only the built-in `proc_macro` crate so no external dependencies are
//! required.

use proc_macro::TokenStream;

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Integration tests for the probe report: the default padding sweep is
//! pinned byte-for-byte against a committed golden (the same bytes
//! `bp-probe sweep padding` prints and CI diffs), and the report is
//! identical whatever `--jobs` value fanned the grid out.

use bp_probe::{run_probes, ProbeKind, ReportConfig};

const PADDING_KINDS: &[ProbeKind] = &[ProbeKind::PaddingGlobal, ProbeKind::PaddingLocal];

#[test]
fn default_padding_sweep_matches_the_committed_golden() {
    let report = run_probes(PADDING_KINDS, &ReportConfig::default());
    let golden = include_str!("goldens/sweep_padding.txt");
    assert_eq!(
        report.render(),
        golden,
        "default `bp-probe sweep padding` output drifted from the golden; \
         if the change is intentional, regenerate \
         crates/probe/tests/goldens/sweep_padding.txt"
    );
}

#[test]
fn default_cliffs_land_at_the_configured_depths() {
    let report = run_probes(PADDING_KINDS, &ReportConfig::default());
    report
        .check_assertion("gshare(16)", 16)
        .expect("gshare cliffs at its global history depth");
    report
        .check_assertion("pas(12,10,4)", 12)
        .expect("pas cliffs at its per-address history depth");
    report
        .check_assertion("gas(12,4)", 12)
        .expect("gas cliffs at its global history depth");
}

#[test]
fn report_bytes_are_identical_across_jobs() {
    let config = |jobs: usize| {
        let mut cfg = ReportConfig::default();
        cfg.sweep.rounds = 600;
        cfg.sweep.jobs = jobs;
        cfg.padding_grid = (0..=10).collect();
        cfg
    };
    let serial = run_probes(PADDING_KINDS, &config(1)).render();
    let fanned = run_probes(PADDING_KINDS, &config(4)).render();
    assert_eq!(serial, fanned, "sweep fan-out must not reorder the grid");
}

//! The probed predictor zoo: one fresh instance per sweep point.
//!
//! Probes measure *capacity*, so state must not leak between sweep
//! points: every (probe point, predictor) pair gets a cold predictor,
//! built from a [`ZooConfig`] that records the geometries under test.
//! The oracle row — [`IdealStatic`] built a-posteriori from the probe
//! trace's own profile — is the control: the best any per-branch
//! *static* assignment can score on the measured positions, i.e. the
//! "unconditional rate" the correlated branch is expected to collapse
//! to when its history support falls out of the window.

use bp_predictors::{
    Gas, Gshare, IdealStatic, Pas, PasInterferenceFree, Perceptron, Predictor, Smith, Tage,
};
use bp_trace::BranchProfile;

use crate::program::ProbeTrace;

/// Geometries of the probed predictors (defaults are the workspace
/// reference configurations, so cliffs land where DESIGN.md §7 says the
/// capacities are).
#[derive(Debug, Clone, Copy)]
pub struct ZooConfig {
    /// gshare global history bits (PHT is `2^bits` counters).
    pub gshare_bits: u32,
    /// GAs global history bits and PC table-select bits.
    pub gas_bits: (u32, u32),
    /// PAs per-address history bits, BHT index bits, table-select bits.
    pub pas_bits: (u32, u32, u32),
    /// Interference-free PAs history bits.
    pub if_pas_bits: u32,
    /// Smith bimodal PC index bits.
    pub smith_bits: u32,
    /// TAGE tagged-table count and bimodal base index bits (histories are
    /// geometric, `4 << i`).
    pub tage: (u32, u32),
    /// Perceptron global history bits.
    pub perceptron_bits: u32,
}

impl Default for ZooConfig {
    fn default() -> Self {
        ZooConfig {
            gshare_bits: 16,
            gas_bits: (12, 4),
            pas_bits: (12, 10, 4),
            if_pas_bits: 12,
            smith_bits: 12,
            tage: (4, 12),
            perceptron_bits: 32,
        }
    }
}

impl ZooConfig {
    /// Builds one cold instance of every zoo member, in report order,
    /// with the oracle profiled from `probe`'s trace.
    pub fn build(&self, probe: &ProbeTrace) -> Vec<Box<dyn Predictor>> {
        let (gh, gt) = self.gas_bits;
        let (ph, pb, pt) = self.pas_bits;
        vec![
            Box::new(Smith::new(self.smith_bits)),
            Box::new(Gshare::new(self.gshare_bits)),
            Box::new(Gas::new(gh, gt)),
            Box::new(Pas::new(ph, pb, pt)),
            Box::new(PasInterferenceFree::new(self.if_pas_bits)),
            Box::new(Tage::new(self.tage.0, self.tage.1)),
            Box::new(Perceptron::new(self.perceptron_bits)),
            Box::new(IdealStatic::from_profile(&BranchProfile::of(&probe.trace))),
        ]
    }

    /// The zoo's report labels, in the same order as [`ZooConfig::build`].
    pub fn labels(&self) -> Vec<String> {
        // A throwaway probe isn't needed for names: every zoo member's
        // name is a pure function of its geometry.
        let (gh, gt) = self.gas_bits;
        let (ph, pb, pt) = self.pas_bits;
        vec![
            format!("smith({})", self.smith_bits),
            format!("gshare({})", self.gshare_bits),
            format!("gas({gh},{gt})"),
            format!("pas({ph},{pb},{pt})"),
            format!("if-pas({})", self.if_pas_bits),
            // Tage's name depends on its derived max history; building an
            // instance keeps the label correct by construction (cheap —
            // tables allocate lazily enough for a label).
            Tage::new(self.tage.0, self.tage.1).name(),
            format!("perceptron({})", self.perceptron_bits),
            "ideal-static".to_owned(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{padding_global, BaseOutcomes};

    #[test]
    fn labels_match_predictor_names() {
        let cfg = ZooConfig::default();
        let probe = padding_global(0, 50, BaseOutcomes::Pattern, 1);
        let zoo = cfg.build(&probe);
        let names: Vec<String> = zoo.iter().map(|p| p.name()).collect();
        assert_eq!(names, cfg.labels());
    }
}

//! Parameter-grid sweeps over probe programs, with cliff detection.
//!
//! A sweep runs one probe family over a grid of its parameter (padding
//! count, loop trip, alias bit), scoring every zoo predictor at every
//! point. Points are independent, so they fan out across `--jobs`
//! worker threads; results land in a slot per grid index and are read
//! back in grid order, so the report is byte-identical for any job
//! count (the determinism test pins this).
//!
//! The cliff detector is deliberately dumb: the largest accuracy drop
//! between *adjacent* grid points, reported only when it clears a
//! noise threshold. Probe programs are built so that the interesting
//! transition is a step function — a predictor either sees the
//! correlated outcome inside its history window or it does not — and a
//! dumb detector on a sharp signal beats a clever one on a mushy
//! signal.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::program::{
    aliasing, history_loop, padding_global, padding_local, simulate_measured, BaseOutcomes,
    ProbeTrace,
};
use crate::zoo::ZooConfig;

/// The probe families a sweep can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// Correlated pair + global padding ([`padding_global`]); the swept
    /// parameter is the padding count.
    PaddingGlobal,
    /// Single-PC echo probe ([`padding_local`]); the swept parameter is
    /// the padding count.
    PaddingLocal,
    /// Loop-trip capacity probe ([`history_loop`]); the swept parameter
    /// is the trip count.
    HistoryLoop,
    /// PC-aliasing probe ([`aliasing`]); the swept parameter is the
    /// differing index bit.
    Aliasing,
}

impl ProbeKind {
    /// Human title for report sections.
    pub fn title(self) -> &'static str {
        match self {
            ProbeKind::PaddingGlobal => "Padding sweep (global correlated pair)",
            ProbeKind::PaddingLocal => "Padding sweep (per-address echo)",
            ProbeKind::HistoryLoop => "History-capacity sweep (loop trip)",
            ProbeKind::Aliasing => "PC-aliasing sweep (anti-correlated pair)",
        }
    }

    /// Name of the swept parameter, for table headers.
    pub fn param(self) -> &'static str {
        match self {
            ProbeKind::PaddingGlobal | ProbeKind::PaddingLocal => "pads",
            ProbeKind::HistoryLoop => "trip",
            ProbeKind::Aliasing => "bit",
        }
    }

    /// Builds the probe trace at one grid value.
    fn build(self, value: usize, cfg: &SweepConfig) -> ProbeTrace {
        match self {
            ProbeKind::PaddingGlobal => padding_global(value, cfg.rounds, cfg.base, cfg.seed),
            ProbeKind::PaddingLocal => padding_local(value, cfg.rounds, cfg.seed),
            ProbeKind::HistoryLoop => history_loop(value, cfg.rounds),
            ProbeKind::Aliasing => aliasing(value as u32, cfg.rounds),
        }
    }
}

/// Shared sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Rounds per probe point (for the loop probe: target dynamic
    /// branches per point).
    pub rounds: usize,
    /// Seed for the random base-outcome mode.
    pub seed: u64,
    /// Trigger outcome mode for the padding probes.
    pub base: BaseOutcomes,
    /// Worker threads; affects wall-clock only, never output.
    pub jobs: usize,
    /// Minimum adjacent drop (percentage points) recognized as a cliff.
    pub min_drop: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            rounds: 3000,
            seed: 0xB9,
            base: BaseOutcomes::Pattern,
            jobs: 1,
            min_drop: 10.0,
        }
    }
}

/// Accuracy of every zoo predictor at one grid value.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub value: usize,
    /// Accuracy (percent) per predictor, in zoo order.
    pub accuracy_pct: Vec<f64>,
}

/// One probe family swept over its grid.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Which probe ran.
    pub kind: ProbeKind,
    /// Zoo labels, in column order.
    pub labels: Vec<String>,
    /// One point per grid value, in grid order.
    pub points: Vec<SweepPoint>,
}

/// A detected capacity/aliasing cliff for one predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cliff {
    /// Grid value at which accuracy first collapsed (the right edge of
    /// the largest adjacent drop).
    pub at: usize,
    /// Size of the drop in percentage points.
    pub drop_pp: f64,
    /// Accuracy (percent) just before the cliff.
    pub before_pct: f64,
    /// Accuracy (percent) at the cliff.
    pub after_pct: f64,
}

impl SweepResult {
    /// The largest adjacent drop for predictor column `col`, if it
    /// clears `min_drop` percentage points.
    pub fn cliff(&self, col: usize, min_drop: f64) -> Option<Cliff> {
        let mut best: Option<Cliff> = None;
        for pair in self.points.windows(2) {
            let drop = pair[0].accuracy_pct[col] - pair[1].accuracy_pct[col];
            if drop >= min_drop && best.is_none_or(|b| drop > b.drop_pp) {
                best = Some(Cliff {
                    at: pair[1].value,
                    drop_pp: drop,
                    before_pct: pair[0].accuracy_pct[col],
                    after_pct: pair[1].accuracy_pct[col],
                });
            }
        }
        best
    }

    /// Cliffs for every zoo column, in label order.
    pub fn cliffs(&self, min_drop: f64) -> Vec<Option<Cliff>> {
        (0..self.labels.len())
            .map(|col| self.cliff(col, min_drop))
            .collect()
    }
}

/// Runs `kind` over `grid`, fanning points out across `cfg.jobs`
/// threads. Output is a pure function of (`kind`, `grid`, `cfg`, `zoo`):
/// every point lands in its own slot, read back in grid order.
pub fn run_sweep(
    kind: ProbeKind,
    grid: &[usize],
    cfg: &SweepConfig,
    zoo: &ZooConfig,
) -> SweepResult {
    let slots: Mutex<Vec<Option<SweepPoint>>> = Mutex::new(vec![None; grid.len()]);
    let next = AtomicUsize::new(0);
    let workers = cfg.jobs.max(1).min(grid.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&value) = grid.get(i) else { break };
                let probe = kind.build(value, cfg);
                let accuracy_pct = zoo
                    .build(&probe)
                    .iter_mut()
                    .map(|p| simulate_measured(p.as_mut(), &probe).accuracy_pct())
                    .collect();
                slots.lock().expect("sweep slots").expect_slot(
                    i,
                    SweepPoint {
                        value,
                        accuracy_pct,
                    },
                );
            });
        }
    });
    let points = slots
        .into_inner()
        .expect("sweep slots")
        .into_iter()
        .map(|p| p.expect("every grid point computed"))
        .collect();
    SweepResult {
        kind,
        labels: zoo.labels(),
        points,
    }
}

/// Small helper so the worker loop above reads declaratively.
trait SlotVec {
    fn expect_slot(&mut self, i: usize, point: SweepPoint);
}

impl SlotVec for Vec<Option<SweepPoint>> {
    fn expect_slot(&mut self, i: usize, point: SweepPoint) {
        debug_assert!(self[i].is_none(), "slot {i} filled twice");
        self[i] = point.into();
    }
}

/// Parses a grid expression: `A..B` (inclusive) or `A..B:STEP`.
pub fn parse_grid(s: &str) -> Result<Vec<usize>, String> {
    let (range, step) = match s.split_once(':') {
        Some((r, st)) => (
            r,
            st.parse::<usize>()
                .map_err(|_| format!("bad grid step '{st}'"))?,
        ),
        None => (s, 1),
    };
    if step == 0 {
        return Err("grid step must be positive".into());
    }
    let (a, b) = range
        .split_once("..")
        .ok_or_else(|| format!("bad grid '{s}' (want A..B or A..B:STEP)"))?;
    let a: usize = a.parse().map_err(|_| format!("bad grid start '{a}'"))?;
    let b: usize = b.parse().map_err(|_| format!("bad grid end '{b}'"))?;
    if b < a {
        return Err(format!("grid end {b} before start {a}"));
    }
    Ok((a..=b).step_by(step).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_parses_ranges_and_steps() {
        assert_eq!(parse_grid("0..4").unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(parse_grid("2..10:4").unwrap(), vec![2, 6, 10]);
        assert!(parse_grid("5..1").is_err());
        assert!(parse_grid("1..5:0").is_err());
        assert!(parse_grid("nope").is_err());
    }

    #[test]
    fn cliff_is_largest_adjacent_drop_over_threshold() {
        let mk = |accs: &[f64]| SweepResult {
            kind: ProbeKind::PaddingGlobal,
            labels: vec!["p".into()],
            points: accs
                .iter()
                .enumerate()
                .map(|(i, &a)| SweepPoint {
                    value: i,
                    accuracy_pct: vec![a],
                })
                .collect(),
        };
        let r = mk(&[99.0, 98.0, 97.0, 60.0, 59.0]);
        let c = r.cliff(0, 10.0).expect("cliff");
        assert_eq!(c.at, 3);
        assert!((c.drop_pp - 37.0).abs() < 1e-9);
        assert!(
            mk(&[99.0, 95.0, 92.0]).cliff(0, 10.0).is_none(),
            "no drop clears 10pp"
        );
    }

    #[test]
    fn sweep_output_is_independent_of_job_count() {
        let zoo = ZooConfig {
            gshare_bits: 5,
            gas_bits: (4, 2),
            pas_bits: (4, 6, 2),
            if_pas_bits: 4,
            smith_bits: 6,
            tage: (1, 6),
            perceptron_bits: 6,
        };
        let grid: Vec<usize> = (0..8).collect();
        let mut cfg = SweepConfig {
            rounds: 400,
            ..SweepConfig::default()
        };
        cfg.jobs = 1;
        let serial = run_sweep(ProbeKind::PaddingGlobal, &grid, &cfg, &zoo);
        cfg.jobs = 4;
        let parallel = run_sweep(ProbeKind::PaddingGlobal, &grid, &cfg, &zoo);
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(a.value, b.value);
            assert_eq!(a.accuracy_pct, b.accuracy_pct);
        }
    }
}

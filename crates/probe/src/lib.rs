//! Black-box predictor probing: measure the zoo the way the hardware
//! reverse-engineering work measures real front-ends.
//!
//! The paper's §3 explains *analytically* why two-level predictors work
//! — correlation between branches within the history window. This crate
//! asks the same question as a *measurement*: synthesize a probe
//! program whose structure encodes one capacity question, sweep one
//! parameter, and find the cliff where the predictor stops answering.
//! The probe families ([`program`]) mirror the eigenform/perfect
//! hardware probes (SNIPPETS.md §1–2) and their academic descendants:
//!
//! * **Padding sweep** — a correlated pair separated by a growing wall
//!   of always-taken padding branches. A global-history predictor
//!   cliffs at exactly its history depth; the single-PC echo variant
//!   makes per-address predictors cliff at theirs.
//! * **History-capacity sweep** — a loop whose trip count grows until
//!   the all-taken history saturates and the exit becomes invisible
//!   (cliff at `h + 1`, capacity `h`).
//! * **PC-aliasing sweep** — an anti-correlated pair whose addresses
//!   differ in one index bit; bimodal tables cliff at their index
//!   width, two-level predictors shrug (history disambiguates).
//! * **Random-vs-patterned base** — the global padding probe with a
//!   fair-coin trigger instead of a 5-periodic one, exposing
//!   training-time dilution (§3.6.3) as the gap between the modes. (The
//!   echo probe always uses the fair-coin base; see
//!   [`program::padding_local`].)
//!
//! Sweeps ([`sweep`]) fan grid points across worker threads with
//! deterministic merge; cliff detection is the largest adjacent drop
//! over a noise floor; rendering ([`render`]) is byte-stable and
//! golden-friendly. The whole crate consumes predictors strictly
//! through the [`bp_predictors::Predictor`] trait — predict, update,
//! nothing else — so what it measures is what any trace would get.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod program;
pub mod render;
pub mod sweep;
pub mod zoo;

pub use program::{
    aliasing, history_loop, padding_global, padding_local, simulate_measured, BaseOutcomes,
    ProbeTrace,
};
pub use sweep::{parse_grid, run_sweep, Cliff, ProbeKind, SweepConfig, SweepPoint, SweepResult};
pub use zoo::ZooConfig;

/// Full configuration of a probe report.
#[derive(Debug, Clone)]
pub struct ReportConfig {
    /// Shared sweep parameters (rounds, seed, base, jobs, threshold).
    pub sweep: SweepConfig,
    /// Predictor geometries under test.
    pub zoo: ZooConfig,
    /// Grid for both padding probes (padding branch counts).
    pub padding_grid: Vec<usize>,
    /// Grid for the loop probe (trip counts).
    pub history_grid: Vec<usize>,
    /// Grid for the aliasing probe (index bits).
    pub aliasing_grid: Vec<usize>,
}

impl Default for ReportConfig {
    /// Grids sized so every default-geometry cliff (gshare 16, gas/pas
    /// 12, smith 12, loop capacity 12/16, tage and perceptron at their
    /// 32-branch maximum histories) falls strictly inside them.
    fn default() -> Self {
        ReportConfig {
            sweep: SweepConfig::default(),
            zoo: ZooConfig::default(),
            padding_grid: (0..=36).collect(),
            history_grid: (2..=36).collect(),
            aliasing_grid: (0..=16).collect(),
        }
    }
}

impl ReportConfig {
    /// The grid a probe kind sweeps over.
    pub fn grid(&self, kind: ProbeKind) -> &[usize] {
        match kind {
            ProbeKind::PaddingGlobal | ProbeKind::PaddingLocal => &self.padding_grid,
            ProbeKind::HistoryLoop => &self.history_grid,
            ProbeKind::Aliasing => &self.aliasing_grid,
        }
    }
}

/// One completed sweep with its detected cliffs.
#[derive(Debug, Clone)]
pub struct ReportSection {
    /// The sweep data.
    pub result: SweepResult,
    /// Cliffs per zoo column (label order).
    pub cliffs: Vec<Option<Cliff>>,
}

/// A full probe run: header plus one section per probe family.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    header: String,
    /// Sections in run order.
    pub sections: Vec<ReportSection>,
}

/// Runs the given probe families under one configuration. Wall-clock
/// per section goes to stderr; the returned report is deterministic.
pub fn run_probes(kinds: &[ProbeKind], cfg: &ReportConfig) -> ProbeReport {
    let sections = kinds
        .iter()
        .map(|&kind| {
            let t0 = std::time::Instant::now();
            let result = run_sweep(kind, cfg.grid(kind), &cfg.sweep, &cfg.zoo);
            let cliffs = result.cliffs(cfg.sweep.min_drop);
            eprintln!(
                "[{}: {:.1}s, {} threads]",
                kind.param_family(),
                t0.elapsed().as_secs_f64(),
                cfg.sweep.jobs.max(1)
            );
            ReportSection { result, cliffs }
        })
        .collect();
    ProbeReport {
        header: format!(
            "# bp-probe: rounds={} seed={} base={} min-drop={:.1}",
            cfg.sweep.rounds,
            cfg.sweep.seed,
            cfg.sweep.base.label(),
            cfg.sweep.min_drop
        ),
        sections,
    }
}

impl ProbeReport {
    /// Renders the full deterministic report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header);
        out.push('\n');
        for section in &self.sections {
            out.push('\n');
            out.push_str(&render::section(&section.result, &section.cliffs));
        }
        out
    }

    /// Checks a `label=value` cliff assertion against every section that
    /// probed `label`: at least one section must place the cliff at
    /// exactly `value`, and no section may place it anywhere else.
    ///
    /// # Errors
    ///
    /// A human-readable explanation of the first violated expectation.
    pub fn check_assertion(&self, label: &str, value: usize) -> Result<(), String> {
        let mut hit = false;
        let mut seen = false;
        for section in &self.sections {
            let Some(col) = section.result.labels.iter().position(|l| l == label) else {
                continue;
            };
            seen = true;
            if let Some(cliff) = section.cliffs[col] {
                if cliff.at == value {
                    hit = true;
                } else {
                    return Err(format!(
                        "{}: {label} cliff at {} (expected {value})",
                        section.result.kind.title(),
                        cliff.at
                    ));
                }
            }
        }
        if !seen {
            return Err(format!("no probed predictor is labeled '{label}'"));
        }
        if !hit {
            return Err(format!("no section detected a {label} cliff at {value}"));
        }
        Ok(())
    }

    /// Checks a `label>value` headroom assertion: every detected cliff
    /// for `label` must sit strictly beyond `value`, and at least one
    /// section must have detected one. Used to pin that a modern
    /// predictor's recovered history capacity exceeds a 1998 baseline's
    /// without hard-coding its exact cliff in the invocation.
    ///
    /// # Errors
    ///
    /// A human-readable explanation of the first violated expectation.
    pub fn check_assertion_exceeds(&self, label: &str, value: usize) -> Result<(), String> {
        let mut hit = false;
        let mut seen = false;
        for section in &self.sections {
            let Some(col) = section.result.labels.iter().position(|l| l == label) else {
                continue;
            };
            seen = true;
            if let Some(cliff) = section.cliffs[col] {
                if cliff.at > value {
                    hit = true;
                } else {
                    return Err(format!(
                        "{}: {label} cliff at {} (expected > {value})",
                        section.result.kind.title(),
                        cliff.at
                    ));
                }
            }
        }
        if !seen {
            return Err(format!("no probed predictor is labeled '{label}'"));
        }
        if !hit {
            return Err(format!(
                "no section detected a {label} cliff beyond {value}"
            ));
        }
        Ok(())
    }
}

impl ProbeKind {
    /// Short machine-ish name for stderr timing lines and CLI parsing.
    pub fn param_family(self) -> &'static str {
        match self {
            ProbeKind::PaddingGlobal => "padding-global",
            ProbeKind::PaddingLocal => "padding-local",
            ProbeKind::HistoryLoop => "history",
            ProbeKind::Aliasing => "aliasing",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ReportConfig {
        ReportConfig {
            sweep: SweepConfig {
                rounds: 600,
                ..SweepConfig::default()
            },
            zoo: ZooConfig {
                gshare_bits: 5,
                gas_bits: (4, 2),
                pas_bits: (4, 6, 2),
                if_pas_bits: 4,
                smith_bits: 6,
                tage: (1, 6),
                perceptron_bits: 6,
            },
            padding_grid: (0..=8).collect(),
            history_grid: (2..=8).collect(),
            aliasing_grid: (0..=8).collect(),
        }
    }

    #[test]
    fn assertions_pass_where_the_physics_says() {
        let cfg = tiny_config();
        let report = run_probes(&[ProbeKind::PaddingGlobal, ProbeKind::PaddingLocal], &cfg);
        report
            .check_assertion("gshare(5)", 5)
            .expect("gshare cliff at h");
        report
            .check_assertion("pas(4,6,2)", 4)
            .expect("pas cliff at h");
        assert!(report.check_assertion("gshare(5)", 7).is_err());
        assert!(report.check_assertion("nonesuch", 1).is_err());
        // The headroom form: perceptron(6) sees two branches past the
        // gshare(5) window, so its cliff sits strictly beyond 5.
        report
            .check_assertion_exceeds("perceptron(6)", 5)
            .expect("perceptron cliff beyond gshare's");
        assert!(report.check_assertion_exceeds("perceptron(6)", 20).is_err());
        assert!(report.check_assertion_exceeds("nonesuch", 1).is_err());
    }

    #[test]
    fn report_renders_header_and_sections() {
        let cfg = tiny_config();
        let report = run_probes(&[ProbeKind::Aliasing], &cfg);
        let text = report.render();
        assert!(text.starts_with("# bp-probe: rounds=600"));
        assert!(text.contains("PC-aliasing sweep"));
        report
            .check_assertion("smith(6)", 6)
            .expect("smith cliff at index width");
    }
}

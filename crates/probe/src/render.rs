//! Deterministic `repro`-style rendering of sweep results: accuracy
//! tables, per-predictor cliff tables, and ASCII accuracy curves.
//!
//! Everything here is a pure function of the sweep data — no
//! timestamps, thread counts, or float formatting that could vary by
//! platform — so the report diffs clean across `--jobs` values and CI
//! hosts, and can be committed as a golden.

use bp_experiments::render::Table;

use crate::sweep::{Cliff, ProbeKind, SweepResult};

/// Glyphs for the accuracy curves, dimmest to brightest; accuracy 0–100%
/// maps linearly onto them.
const CURVE_GLYPHS: &[u8] = b" .:-=+*#%@";

fn fmt_pct(p: f64) -> String {
    format!("{p:.2}")
}

/// The per-point accuracy table for one sweep: one row per grid value,
/// one column per predictor.
pub fn accuracy_table(result: &SweepResult) -> Table {
    let title = format!("{} — accuracy %", result.kind.title());
    let mut headers: Vec<&str> = vec![result.kind.param()];
    headers.extend(result.labels.iter().map(String::as_str));
    let mut table = Table::new(&title, &headers);
    for point in &result.points {
        let mut row = vec![point.value.to_string()];
        row.extend(point.accuracy_pct.iter().map(|&a| fmt_pct(a)));
        table.row(row);
    }
    table
}

/// The cliff table for one sweep: one row per predictor. For the loop
/// probe the measured capacity (`cliff - 1`) gets its own column, since
/// the trip that *breaks* the predictor is one past the longest trip it
/// can still capture.
pub fn cliff_table(result: &SweepResult, cliffs: &[Option<Cliff>]) -> Table {
    let title = format!("{} — cliffs", result.kind.title());
    let capacity_col = result.kind == ProbeKind::HistoryLoop;
    let mut headers = vec!["predictor", "cliff at", "drop (pp)", "before", "after"];
    if capacity_col {
        headers.push("capacity");
    }
    let mut table = Table::new(&title, &headers);
    for (label, cliff) in result.labels.iter().zip(cliffs) {
        let mut row = match cliff {
            Some(c) => vec![
                label.clone(),
                c.at.to_string(),
                format!("{:.1}", c.drop_pp),
                fmt_pct(c.before_pct),
                fmt_pct(c.after_pct),
            ],
            None => vec![
                label.clone(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
            ],
        };
        if capacity_col {
            row.push(match cliff {
                Some(c) => (c.at - 1).to_string(),
                None => "—".into(),
            });
        }
        table.row(row);
    }
    table
}

/// ASCII accuracy curves: one line per predictor, one glyph per grid
/// point, accuracy 0–100% mapped onto ` .:-=+*#%@`. A capacity cliff
/// reads as the glyph falling off mid-line.
pub fn curves(result: &SweepResult, cliffs: &[Option<Cliff>]) -> String {
    let width = result.labels.iter().map(String::len).max().unwrap_or(0);
    let first = result.points.first().map_or(0, |p| p.value);
    let last = result.points.last().map_or(0, |p| p.value);
    let mut out = format!(
        "curves ({} = {first}..{last}, accuracy 0-100% as ` .:-=+*#%@`):\n",
        result.kind.param()
    );
    for (col, label) in result.labels.iter().enumerate() {
        let mut line = format!("  {label:<width$} |");
        for point in &result.points {
            let a = point.accuracy_pct[col].clamp(0.0, 100.0);
            let idx = ((a / 100.0) * (CURVE_GLYPHS.len() - 1) as f64).round() as usize;
            line.push(CURVE_GLYPHS[idx] as char);
        }
        line.push('|');
        match cliffs[col] {
            Some(c) => line.push_str(&format!(" cliff@{}", c.at)),
            None => line.push_str(" —"),
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Renders one sweep section: accuracy table, cliff table, curves.
pub fn section(result: &SweepResult, cliffs: &[Option<Cliff>]) -> String {
    format!(
        "{}\n{}\n{}",
        accuracy_table(result),
        cliff_table(result, cliffs),
        curves(result, cliffs)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepPoint;

    fn sample() -> SweepResult {
        SweepResult {
            kind: ProbeKind::PaddingGlobal,
            labels: vec!["gshare(4)".into(), "smith(4)".into()],
            points: (0..6)
                .map(|v| SweepPoint {
                    value: v,
                    accuracy_pct: vec![if v < 4 { 99.5 } else { 60.0 }, 60.0],
                })
                .collect(),
        }
    }

    #[test]
    fn section_contains_tables_and_curves() {
        let r = sample();
        let cliffs = r.cliffs(10.0);
        let s = section(&r, &cliffs);
        assert!(s.contains("## Padding sweep (global correlated pair) — accuracy %"));
        assert!(s.contains("## Padding sweep (global correlated pair) — cliffs"));
        assert!(s.contains("cliff@4"), "gshare cliff annotated:\n{s}");
        let cliff_section = s.split("— cliffs").nth(1).expect("cliff table present");
        let smith_row = cliff_section
            .lines()
            .find(|l| l.contains("smith(4)"))
            .expect("smith cliff row");
        assert!(smith_row.contains('—'), "no smith cliff: {smith_row}");
        assert!(s.contains("curves (pads = 0..5"));
    }

    #[test]
    fn curves_scale_accuracy_to_glyphs() {
        let r = sample();
        let cliffs = r.cliffs(10.0);
        let c = curves(&r, &cliffs);
        let gshare_line = c.lines().find(|l| l.contains("gshare")).unwrap();
        assert!(
            gshare_line.contains("@@@@++"),
            "step visible: {gshare_line}"
        );
    }
}

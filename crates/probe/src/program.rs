//! Probe programs: synthetic traces with designated measurement points.
//!
//! Each probe is a tiny program written in the [`bp_trace::script`] DSL
//! whose *structure* encodes one question about a predictor ("how deep is
//! your history?", "how many PC bits do you index with?") and whose
//! *measured positions* isolate the branch that answers it. The rest of
//! the trace — trigger branches, padding branches, loop bodies — exists
//! only to manipulate the predictor's internal state, exactly like the
//! always-taken padding branches of the hardware probes this mirrors
//! (SNIPPETS.md §1–2, eigenform/perfect).
//!
//! A predictor is simulated over the *whole* trace (it predicts and
//! trains on every conditional, like hardware would), but accuracy is
//! scored only at the measured positions. That separation is the whole
//! point: `simulate_per_branch` can't express it when probe roles share
//! a PC (the local echo probe) or when padding accuracy would drown the
//! signal (it's ~100% by construction).

use bp_predictors::{BranchSite, PredictionStats, Predictor};
use bp_trace::script::{BranchScript, Interleave, Segment, TraceSpec};
use bp_trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the global padding probe's trigger outcome sequence is drawn.
/// (The local echo probe always draws random outcomes — see
/// [`padding_local`] for why a periodic base is unusable there.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseOutcomes {
    /// The fixed period-5 pattern `T N N T N`: five distinct history
    /// phases, so a two-level predictor trains in tens of rounds and the
    /// capacity cliff is sharp. No two consecutive takens, so the
    /// trigger never counterfeits the all-taken history the padding
    /// writes — the collision entry stays non-destructive.
    Pattern,
    /// Seeded fair-coin outcomes: within the history window every
    /// uncovered trigger bit doubles the number of PHT entries to train,
    /// so accuracy below the cliff is diluted by warmup — the paper's
    /// training-time effect (§3.6.3), measurable here as the gap between
    /// the two base modes.
    Random,
}

impl BaseOutcomes {
    /// CLI/report label.
    pub fn label(self) -> &'static str {
        match self {
            BaseOutcomes::Pattern => "pattern",
            BaseOutcomes::Random => "random",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "pattern" => Some(BaseOutcomes::Pattern),
            "random" => Some(BaseOutcomes::Random),
            _ => None,
        }
    }

    /// One trigger outcome per round.
    fn bits(self, rounds: usize, seed: u64) -> Vec<bool> {
        match self {
            BaseOutcomes::Pattern => {
                const PERIOD: [bool; 5] = [true, false, false, true, false];
                (0..rounds).map(|i| PERIOD[i % PERIOD.len()]).collect()
            }
            BaseOutcomes::Random => {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..rounds).map(|_| rng.gen_bool(0.5)).collect()
            }
        }
    }
}

/// A built probe: the full trace plus the mask of measured positions.
#[derive(Debug, Clone)]
pub struct ProbeTrace {
    /// The complete dynamic trace (every conditional trains the
    /// predictor).
    pub trace: Trace,
    /// `measured[i]` marks record `i` as scored.
    pub measured: Vec<bool>,
}

impl ProbeTrace {
    fn new(spec: &TraceSpec, measured: impl Fn(usize, &bp_trace::BranchRecord) -> bool) -> Self {
        let trace = spec.build();
        let marks = trace
            .records()
            .iter()
            .enumerate()
            .map(|(i, r)| measured(i, r))
            .collect();
        ProbeTrace {
            trace,
            measured: marks,
        }
    }

    /// Number of measured positions.
    pub fn measured_count(&self) -> usize {
        self.measured.iter().filter(|&&m| m).count()
    }
}

/// PC layout shared by the probe builders. Chosen so no two probe roles
/// collide in any finite table of the zoo's reference configurations:
/// after the `pc >> 2` index drop, trigger/probe/pad indices stay
/// distinct modulo the 1024-entry PAs BHT (pads stride 16 from 0x800,
/// trigger and probe land on odd indices pads can't reach).
const TRIGGER_PC: u64 = 0x1008;
const PROBE_PC: u64 = 0x9004;
const PAD_BASE_PC: u64 = 0x2000;
const LOCAL_PC: u64 = 0x3004;
const LOOP_PC: u64 = 0x5004;
const ALIAS_PC: u64 = 0x4000;

/// Correlated pair with global padding — the eigenform/perfect probe.
///
/// Each round executes a *trigger* branch (outcome from `base`), `pads`
/// distinct always-taken padding branches, then a *probe* branch that
/// copies the trigger. The probe is perfectly correlated with an outcome
/// `pads + 1` branches back in global history: a global-history
/// predictor with `h` bits sees the trigger while `pads <= h - 1` and
/// predicts the probe near-perfectly; at `pads = h` the trigger falls
/// off the end of the window, every round presents the same all-taken
/// history, and the probe collapses to its unconditional (majority)
/// rate. Per-address predictors never see the padding in the probe's
/// own history, so they stay flat — their capacity is measured by
/// [`padding_local`] instead.
pub fn padding_global(pads: usize, rounds: usize, base: BaseOutcomes, seed: u64) -> ProbeTrace {
    let bits = base.bits(rounds, seed);
    let mut branches = Vec::with_capacity(pads + 2);
    branches.push(BranchScript::new(
        TRIGGER_PC,
        vec![Segment::Pattern {
            bits: bits.clone(),
            repeats: 1,
        }],
    ));
    for i in 0..pads as u64 {
        branches.push(BranchScript::new(
            PAD_BASE_PC + (i << 6),
            vec![Segment::Run {
                taken: true,
                len: rounds,
            }],
        ));
    }
    branches.push(BranchScript::new(
        PROBE_PC,
        vec![Segment::Pattern { bits, repeats: 1 }],
    ));
    let spec = TraceSpec {
        branches,
        interleave: Interleave::RoundRobin,
    };
    ProbeTrace::new(&spec, |_, r| r.pc == PROBE_PC)
}

/// Single-PC echo probe — the per-address mirror of [`padding_global`].
///
/// One branch executes, per round: a *trigger* outcome, `pads`
/// always-taken outcomes, then an *echo* of the trigger. Only the echo
/// positions are measured. The echo correlates with its own history
/// `pads + 1` outcomes back, so a per-address predictor with `h` bits
/// of self-history cliffs at exactly `pads = h` — and since global
/// history equals self-history on a single-branch trace, global
/// predictors cliff at their own depth on the same program.
///
/// The trigger is always a seeded fair coin, never the periodic
/// [`BaseOutcomes::Pattern`]: with every probe role sharing one PC, a
/// periodic base makes the whole stream periodic in `pads + 2`, and at
/// resonant `pads` values a padding position presents the same history
/// window as an echo with the opposite outcome — a mid-grid accuracy
/// dip all the way to the majority floor, i.e. an adjacent drop as
/// large as the true capacity cliff, which blinds the largest-drop
/// detector. A random base turns those collision entries into mixed
/// 50/50 traffic whose damage stays well below the cliff drop
/// (measured: dips ~25pp vs a ~34pp cliff, at every depth). Past the
/// cliff the echo entry is polluted by padding outcomes and accuracy
/// settles at the ~50% taken rate.
pub fn padding_local(pads: usize, rounds: usize, seed: u64) -> ProbeTrace {
    let bits = BaseOutcomes::Random.bits(rounds, seed);
    let mut segments = Vec::with_capacity(rounds * 3);
    for &b in &bits {
        segments.push(Segment::Pattern {
            bits: vec![b],
            repeats: 1,
        });
        if pads > 0 {
            segments.push(Segment::Run {
                taken: true,
                len: pads,
            });
        }
        segments.push(Segment::Pattern {
            bits: vec![b],
            repeats: 1,
        });
    }
    let spec = TraceSpec {
        branches: vec![BranchScript::new(LOCAL_PC, segments)],
        interleave: Interleave::RoundRobin,
    };
    let period = pads + 2;
    ProbeTrace::new(&spec, |i, _| i % period == period - 1)
}

/// Loop-trip history-capacity probe.
///
/// A single loop branch: `trip` taken iterations then one not-taken
/// exit, repeated. Only the exits are measured. While `trip <= h` the
/// all-taken history of length `trip` is *unique* to the position just
/// before the exit, so the exit is perfectly predictable; at
/// `trip = h + 1` a mid-loop iteration presents the same saturated
/// all-taken history with a *taken* outcome, the entry thrashes, and
/// exit accuracy collapses. The cliff therefore lands at `h + 1` and
/// the report derives `capacity = cliff - 1`. (This is the
/// `pas_cannot_predict_long_loop_exits` physics, swept.)
pub fn history_loop(trip: usize, rounds: usize) -> ProbeTrace {
    let exits = (rounds / (trip + 1)).max(64);
    let spec = TraceSpec {
        branches: vec![BranchScript::new(
            LOOP_PC,
            vec![Segment::Loop { trip, exits }],
        )],
        interleave: Interleave::RoundRobin,
    };
    let period = trip + 1;
    ProbeTrace::new(&spec, |i, _| i % period == period - 1)
}

/// PC-aliasing probe: two anti-correlated branches at addresses that
/// differ only in bit `k` of the word-dropped PC index.
///
/// Branch A (always taken) sits at a base address; branch B (always not
/// taken) sits `4 << k` bytes above it, so after the `pc >> 2` drop
/// their indices differ by exactly `1 << k`. A bimodal table with
/// `index_bits` PC bits keeps them apart while `k < index_bits`; at
/// `k = index_bits` the bit wraps, both branches hash to one two-bit
/// counter, and the strictly alternating taken/not-taken stream pins it
/// between the weak states — accuracy halves. Two-level predictors are
/// immune: their history registers differ at the two branches even when
/// the PC bits collide, which is the paper's argument for why history
/// disambiguates what the PC cannot. Both branches are measured.
pub fn aliasing(k: u32, rounds: usize) -> ProbeTrace {
    let spec = TraceSpec {
        branches: vec![
            BranchScript::new(
                ALIAS_PC,
                vec![Segment::Run {
                    taken: true,
                    len: rounds,
                }],
            ),
            BranchScript::new(
                ALIAS_PC + (4u64 << k),
                vec![Segment::Run {
                    taken: false,
                    len: rounds,
                }],
            ),
        ],
        interleave: Interleave::RoundRobin,
    };
    ProbeTrace::new(&spec, |_, _| true)
}

/// Simulates `predictor` over the whole probe trace — predicting and
/// training on every conditional — scoring only the measured positions.
pub fn simulate_measured(predictor: &mut dyn Predictor, probe: &ProbeTrace) -> PredictionStats {
    let mut stats = PredictionStats::default();
    for (rec, &measured) in probe.trace.records().iter().zip(&probe.measured) {
        if !rec.is_conditional() {
            continue;
        }
        let site = BranchSite::from(rec);
        let prediction = predictor.predict(site);
        if measured {
            stats.record(prediction == rec.taken);
        }
        predictor.update(site, rec.taken);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_predictors::{Gshare, Pas, Smith};

    #[test]
    fn padding_global_measures_only_the_probe_branch() {
        let p = padding_global(3, 100, BaseOutcomes::Pattern, 1);
        assert_eq!(p.trace.conditional_count(), 5 * 100);
        assert_eq!(p.measured_count(), 100);
        for (rec, &m) in p.trace.records().iter().zip(&p.measured) {
            assert_eq!(m, rec.pc == PROBE_PC);
        }
    }

    #[test]
    fn gshare_padding_cliff_is_exactly_history_depth() {
        let acc = |pads: usize| {
            let probe = padding_global(pads, 2000, BaseOutcomes::Pattern, 1);
            simulate_measured(&mut Gshare::new(6), &probe).accuracy()
        };
        assert!(acc(5) > 0.95, "pads=h-1 visible: {}", acc(5));
        assert!(acc(6) < 0.7, "pads=h collapsed: {}", acc(6));
    }

    #[test]
    fn pas_is_flat_on_global_padding_but_cliffs_on_local_echo() {
        let global = |pads: usize| {
            let probe = padding_global(pads, 2000, BaseOutcomes::Pattern, 1);
            simulate_measured(&mut Pas::new(6, 10, 4), &probe).accuracy()
        };
        assert!(
            global(5) > 0.95 && global(10) > 0.95,
            "self-history sees no padding"
        );
        let local = |pads: usize| {
            let probe = padding_local(pads, 2000, 1);
            simulate_measured(&mut Pas::new(6, 10, 4), &probe).accuracy()
        };
        assert!(local(5) > 0.95, "pads=h-1 visible: {}", local(5));
        assert!(local(6) < 0.8, "pads=h collapsed: {}", local(6));
    }

    #[test]
    fn loop_capacity_cliff_is_history_plus_one() {
        let acc = |trip: usize| {
            let probe = history_loop(trip, 4000);
            simulate_measured(&mut Pas::new(6, 10, 4), &probe).accuracy()
        };
        assert!(acc(6) > 0.95, "trip=h unique history: {}", acc(6));
        assert!(acc(7) < 0.6, "trip=h+1 thrashes: {}", acc(7));
    }

    #[test]
    fn aliasing_cliff_is_smith_index_width() {
        let acc = |k: u32| {
            let probe = aliasing(k, 1000);
            simulate_measured(&mut Smith::new(8), &probe).accuracy()
        };
        assert!(acc(7) > 0.99, "distinct counters: {}", acc(7));
        assert!(acc(8) < 0.6, "collided counter thrashes: {}", acc(8));
    }

    #[test]
    fn base_outcomes_are_deterministic_per_seed() {
        assert_eq!(
            BaseOutcomes::Random.bits(64, 9),
            BaseOutcomes::Random.bits(64, 9)
        );
        assert_ne!(
            BaseOutcomes::Random.bits(64, 9),
            BaseOutcomes::Random.bits(64, 10)
        );
        let pattern = BaseOutcomes::Pattern.bits(10, 0);
        assert_eq!(pattern.iter().filter(|&&b| b).count(), 4, "2-of-5 taken");
    }
}

//! `bp-probe` — black-box capacity/aliasing probing of the predictor zoo.
//!
//! ```text
//! bp-probe sweep padding                         both padding probes, default grid
//! bp-probe sweep history --grid 2..30            loop-trip capacity sweep
//! bp-probe sweep aliasing --jobs 4               PC-aliasing sweep, 4 workers
//! bp-probe sweep all --base random               every probe, fair-coin trigger
//! bp-probe sweep padding --assert 'gshare(16)=16' --assert 'pas(12,10,4)=12'
//! bp-probe sweep padding --assert-gt 'tage(4,32,12)=16'
//! ```
//!
//! Stdout is a deterministic report (accuracy tables, cliff tables,
//! ASCII curves) — identical for every `--jobs` value, so CI diffs it
//! and commits it as a golden. Timings and thread counts go to stderr.
//! `--assert LABEL=VALUE` turns a detected-cliff expectation into the
//! exit code: 0 when every assertion holds, 1 otherwise.
//! `--assert-gt LABEL=VALUE` instead requires every detected cliff for
//! LABEL to sit strictly beyond VALUE — the headroom form, e.g. "TAGE's
//! recovered history capacity exceeds gshare(16)'s".

use std::process::ExitCode;

use bp_probe::{parse_grid, run_probes, BaseOutcomes, ProbeKind, ReportConfig};

fn usage() {
    eprintln!(
        "usage: bp-probe sweep <padding|history|aliasing|all>\n       \
         [--rounds N] [--seed N] [--base pattern|random] [--grid A..B[:STEP]]\n       \
         [--jobs N] [--min-drop PP] [--gshare-bits N] [--pas-history N]\n       \
         [--assert LABEL=VALUE]... [--assert-gt LABEL=VALUE]..."
    );
}

fn kinds_for(family: &str) -> Option<Vec<ProbeKind>> {
    match family {
        "padding" => Some(vec![ProbeKind::PaddingGlobal, ProbeKind::PaddingLocal]),
        "history" => Some(vec![ProbeKind::HistoryLoop]),
        "aliasing" => Some(vec![ProbeKind::Aliasing]),
        "all" => Some(vec![
            ProbeKind::PaddingGlobal,
            ProbeKind::PaddingLocal,
            ProbeKind::HistoryLoop,
            ProbeKind::Aliasing,
        ]),
        _ => None,
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("sweep") => {}
        Some("--help" | "-h") => {
            usage();
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("error: expected the 'sweep' subcommand, got {other:?}");
            usage();
            return ExitCode::FAILURE;
        }
    }
    let Some(kinds) = args.next().as_deref().and_then(kinds_for) else {
        eprintln!("error: sweep needs a probe family: padding, history, aliasing, or all");
        usage();
        return ExitCode::FAILURE;
    };

    let mut cfg = ReportConfig::default();
    cfg.sweep.jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut grid_override: Option<Vec<usize>> = None;
    let mut asserts: Vec<(String, usize)> = Vec::new();
    let mut asserts_gt: Vec<(String, usize)> = Vec::new();
    macro_rules! bail {
        ($($msg:tt)*) => {{
            eprintln!("error: {}", format_args!($($msg)*));
            usage();
            return ExitCode::FAILURE;
        }};
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rounds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cfg.sweep.rounds = n,
                _ => bail!("--rounds needs a positive count"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.sweep.seed = n,
                None => bail!("--seed needs an unsigned integer"),
            },
            "--base" => match args.next().as_deref().and_then(BaseOutcomes::parse) {
                Some(b) => cfg.sweep.base = b,
                None => bail!("--base needs 'pattern' or 'random'"),
            },
            "--grid" => match args.next().map(|v| parse_grid(&v)) {
                Some(Ok(grid)) => grid_override = Some(grid),
                Some(Err(e)) => bail!("{e}"),
                None => bail!("--grid needs A..B or A..B:STEP"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cfg.sweep.jobs = n,
                _ => bail!("--jobs needs a positive thread count"),
            },
            "--min-drop" => match args.next().and_then(|v| v.parse().ok()) {
                Some(f) if f > 0.0 => cfg.sweep.min_drop = f,
                _ => bail!("--min-drop needs a positive percentage-point value"),
            },
            "--gshare-bits" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if (1..=28).contains(&n) => cfg.zoo.gshare_bits = n,
                _ => bail!("--gshare-bits needs a history length in 1..=28"),
            },
            "--pas-history" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if (1..=28).contains(&n) => {
                    cfg.zoo.pas_bits.0 = n;
                    cfg.zoo.if_pas_bits = n;
                }
                _ => bail!("--pas-history needs a history length in 1..=28"),
            },
            "--assert" => match args.next() {
                Some(spec) => match spec.rsplit_once('=') {
                    Some((label, value)) => match value.parse() {
                        Ok(v) => asserts.push((label.to_owned(), v)),
                        Err(_) => bail!("bad --assert value in '{spec}'"),
                    },
                    None => bail!("--assert needs LABEL=VALUE"),
                },
                None => bail!("--assert needs LABEL=VALUE"),
            },
            "--assert-gt" => match args.next() {
                Some(spec) => match spec.rsplit_once('=') {
                    Some((label, value)) => match value.parse() {
                        Ok(v) => asserts_gt.push((label.to_owned(), v)),
                        Err(_) => bail!("bad --assert-gt value in '{spec}'"),
                    },
                    None => bail!("--assert-gt needs LABEL=VALUE"),
                },
                None => bail!("--assert-gt needs LABEL=VALUE"),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => bail!("unknown argument '{other}'"),
        }
    }
    if let Some(grid) = grid_override {
        if kinds.len() > 1 && kinds.contains(&ProbeKind::HistoryLoop) {
            bail!("--grid is ambiguous with 'all'; probe one family at a time");
        }
        for kind in &kinds {
            match kind {
                ProbeKind::PaddingGlobal | ProbeKind::PaddingLocal => {
                    cfg.padding_grid = grid.clone();
                }
                ProbeKind::HistoryLoop => {
                    if grid.first() == Some(&0) {
                        bail!("history grid trips must be >= 1");
                    }
                    cfg.history_grid = grid.clone();
                }
                ProbeKind::Aliasing => {
                    if grid.last().is_some_and(|&k| k > 28) {
                        bail!("aliasing grid bits must be <= 28");
                    }
                    cfg.aliasing_grid = grid.clone();
                }
            }
        }
    }

    let report = run_probes(&kinds, &cfg);
    print!("{}", report.render());

    let mut failed = false;
    for (label, value) in &asserts {
        match report.check_assertion(label, *value) {
            Ok(()) => eprintln!("assert ok: {label} cliff at {value}"),
            Err(why) => {
                eprintln!("assert FAILED: {why}");
                failed = true;
            }
        }
    }
    for (label, value) in &asserts_gt {
        match report.check_assertion_exceeds(label, *value) {
            Ok(()) => eprintln!("assert ok: {label} cliff beyond {value}"),
            Err(why) => {
                eprintln!("assert FAILED: {why}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! Offline vendored stand-in for `criterion`.
//!
//! The build container has no network access, so the real `criterion`
//! crate cannot be fetched. This shim implements the subset of the API
//! the `crates/bench` suite uses — `Criterion`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!` — with a simple but honest
//! timing loop: a short warm-up, then `sample_size` timed samples, and a
//! one-line report (median / min / mean) per benchmark.
//!
//! No statistical regression analysis, outlier classification, or HTML
//! reports; the numbers are good enough to compare alternatives in the
//! same process run (which is how BENCH_repro.json entries are made).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark (`name/parameter`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// Collected per-sample wall-clock times, filled by `iter`.
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`: warm up briefly, then record samples until the
    /// sample count or the time budget is reached (at least one sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup_deadline = Instant::now() + self.budget.min(Duration::from_millis(200)) / 4;
        loop {
            std::hint::black_box(routine());
            if Instant::now() >= warmup_deadline {
                break;
            }
        }
        let started = Instant::now();
        while self.times.len() < self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.times.push(t0.elapsed());
            if !self.times.is_empty() && started.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the per-benchmark time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<ID: Display, F>(&mut self, id: ID, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let (samples, budget) = (self.sample_size, self.measurement_time);
        self.criterion.run_one(&label, samples, budget, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<ID: Display, I: ?Sized, F>(
        &mut self,
        id: ID,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 30,
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Run a standalone benchmark (its own single-entry group).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run_one(id, 30, Duration::from_secs(5), f);
        self
    }

    fn run_one<F>(&mut self, label: &str, samples: usize, budget: Duration, f: F)
    where
        F: FnOnce(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples,
            budget,
            times: Vec::with_capacity(samples),
        };
        f(&mut bencher);
        report(label, &mut bencher.times);
    }
}

fn report(label: &str, times: &mut [Duration]) {
    if times.is_empty() {
        println!("{label:<48} (no samples collected)");
        return;
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let min = times[0];
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    println!(
        "{label:<48} median {} | min {} | mean {} | {} samples",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(mean),
        times.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` for convenience.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_bounded_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        group.bench_function("busy", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box((0..100u32).sum::<u32>())
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats_name_and_parameter() {
        assert_eq!(
            BenchmarkId::new("gshare_bits", 12).to_string(),
            "gshare_bits/12"
        );
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert!(fmt_duration(Duration::from_nanos(12)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}

//! Standard-distribution sampling (`rng.gen::<T>()`), matching
//! `rand 0.8.5`'s `Standard` impls for the types this workspace uses.

use crate::RngCore;

/// Types samplable by `Rng::gen` (the `Standard` distribution).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl StandardSample for u16 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 64-bit platforms draw a full u64 (rand's `impl_int_from_uint!`).
        rng.next_u64() as usize
    }
}

impl StandardSample for i32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // rand 0.8.5: one u32 draw, low bit decides.
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // Multiply-based [0, 1) conversion with 53 bits of precision.
        let value = rng.next_u64() >> (64 - 53);
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        SCALE * value as f64
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> (32 - 24);
        const SCALE: f32 = 1.0 / ((1u32 << 24) as f32);
        SCALE * value as f32
    }
}

//! Slice shuffling (`rand::seq::SliceRandom`), Fisher–Yates as in
//! `rand 0.8.5` (including the `u32` index fast path, which affects the
//! consumed random stream).

use crate::{Rng, RngCore};

/// Extension trait providing random slice operations.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffle the slice in place.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }
}

fn gen_index<R: RngCore>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut a: Vec<u32> = (0..32).collect();
        let mut b: Vec<u32> = (0..32).collect();
        a.shuffle(&mut StdRng::seed_from_u64(42));
        b.shuffle(&mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(a, sorted, "seeded shuffle should move something");
    }
}

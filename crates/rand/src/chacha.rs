//! ChaCha12 block function (DJB variant: 64-bit counter, 64-bit nonce).
//!
//! `rand_chacha`'s `ChaCha12Rng` generates the standard ChaCha keystream
//! with 12 rounds; this module reproduces one 16-word block at a time.

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Compute one 64-byte ChaCha12 block as 16 little-endian words.
///
/// `counter` occupies state words 12–13 (64-bit little-endian); the nonce
/// (words 14–15) is fixed at zero, matching `ChaCha12Rng::from_seed`.
pub fn block(key: &[u32; 8], counter: u64) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    // state[14], state[15]: zero nonce.

    let initial = state;
    for _ in 0..6 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial) {
        *word = word.wrapping_add(init);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_differ_by_counter_and_key() {
        let key = [0u32; 8];
        let b0 = block(&key, 0);
        let b1 = block(&key, 1);
        assert_ne!(b0, b1);
        let mut key2 = key;
        key2[0] = 1;
        assert_ne!(block(&key2, 0), b0);
        // Deterministic.
        assert_eq!(block(&key, 0), b0);
    }

    #[test]
    fn block_is_not_identity_on_zero_state() {
        let all = block(&[0u32; 8], 0);
        assert!(all.iter().any(|&w| w != 0));
    }
}

//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container for this repository has no network access, so the
//! real `rand 0.8` crate cannot be fetched from crates.io. The calibrated
//! synthetic workloads in `bp-workloads` (and the golden values in
//! `tests/determinism.rs`) were generated with `rand 0.8.5`'s `StdRng`, so
//! this shim reimplements — **bit-exactly** — the subset of `rand 0.8.5`
//! the workspace uses:
//!
//! * `rngs::StdRng` = ChaCha12 with `rand_core`'s `BlockRng` buffering
//!   semantics (64-word buffer, 4 blocks per refill, the exact
//!   `next_u64`-straddling-a-refill behaviour).
//! * `SeedableRng::seed_from_u64` = the PCG32-based seed expansion from
//!   `rand_core 0.6`.
//! * `Rng::gen_range` = Lemire widening-multiply rejection sampling with
//!   `rand 0.8.5`'s exact zone computation and `u_large` type mapping.
//! * `Rng::gen_bool` = fixed-point Bernoulli.
//! * `Rng::gen::<f64>()` = 53-bit multiply-based conversion.
//! * `seq::SliceRandom::shuffle` = Fisher–Yates with the `u32` index
//!   fast path.
//!
//! The golden determinism tests at the workspace root act as the
//! conformance suite: they pin trace statistics that only reproduce if
//! this shim matches `rand 0.8.5` output stream-for-stream.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

mod chacha;
mod distributions;
mod uniform;

/// The core of a random number generator: raw word output.
///
/// Mirrors `rand_core::RngCore` (minus the fallible API, which this
/// workspace never uses).
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Seed material type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with PCG32 exactly as
    /// `rand_core 0.6` does.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub use distributions::StandardSample;
pub use uniform::{SampleRange, SampleUniform};

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution (`rand`'s `Standard`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Return `true` with probability `p` (fixed-point Bernoulli,
    /// matching `rand 0.8`'s `Bernoulli::new`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        const ALWAYS_TRUE: u64 = u64::MAX;
        // SCALE = 2^64 as an f64; p_int = round-toward-zero of p * 2^64.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        let p_int = if p == 1.0 {
            ALWAYS_TRUE
        } else {
            (p * SCALE) as u64
        };
        if p_int == ALWAYS_TRUE {
            return true;
        }
        let v: u64 = self.next_u64();
        v < p_int
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seed_expansion_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_samples_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(0f64..1f64);
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let v = rng.gen_range(-9..10);
            assert!((-9..10).contains(&v));
            let u = rng.gen_range(b'a'..=b'z');
            assert!(u.is_ascii_lowercase());
            let w = rng.gen_range(0..32u64);
            assert!(w < 32);
            let s = rng.gen_range(0..7usize);
            assert!(s < 7);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}

//! The standard RNG: ChaCha12 behind `BlockRng` buffering.
//!
//! `rand 0.8.5`'s `StdRng` is `ChaCha12Rng`, which wraps the ChaCha core
//! in `rand_core::block::BlockRng`: a 64-word (`4 × 16`) results buffer
//! refilled four blocks at a time. The buffering details are observable —
//! in particular `next_u64`'s behaviour when it straddles a refill — so
//! they are reproduced here exactly.

use crate::chacha::block;
use crate::{RngCore, SeedableRng};

const BUF_WORDS: usize = 64;
const BLOCKS_PER_REFILL: u64 = 4;

/// The standard deterministic RNG (ChaCha12, as in `rand 0.8.5`).
#[derive(Clone, Debug)]
pub struct StdRng {
    key: [u32; 8],
    /// Next block index to generate on refill.
    counter: u64,
    buf: [u32; BUF_WORDS],
    /// Next unread word in `buf`; `BUF_WORDS` means "empty".
    index: usize,
}

impl StdRng {
    /// Refill the buffer with four sequential blocks, leaving `index` at
    /// `offset` (mirrors `BlockRng::generate_and_set`).
    fn generate_and_set(&mut self, offset: usize) {
        for i in 0..BLOCKS_PER_REFILL {
            let words = block(&self.key, self.counter + i);
            let at = (i as usize) * 16;
            self.buf[at..at + 16].copy_from_slice(&words);
        }
        self.counter += BLOCKS_PER_REFILL;
        self.index = offset;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        StdRng {
            key,
            counter: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let value = self.buf[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
        } else if index >= BUF_WORDS {
            self.generate_and_set(2);
            (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
        } else {
            // One word left: low half from the tail, high half from the
            // freshly generated buffer.
            let low = u64::from(self.buf[BUF_WORDS - 1]);
            self.generate_and_set(1);
            let high = u64::from(self.buf[0]);
            (high << 32) | low
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Word-at-a-time fill (matches `fill_via_u32_chunks` for the
        // aligned case; unaligned tails take the leading bytes of the
        // next word, as `rand_core` does).
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            let word = self.next_u32().to_le_bytes();
            tail.copy_from_slice(&word[..tail.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refill_boundary_next_u64_consumes_straddled_words() {
        let mut rng = StdRng::seed_from_u64(99);
        // Advance to index 63.
        for _ in 0..63 {
            rng.next_u32();
        }
        assert_eq!(rng.index, 63);
        let straddled = rng.next_u64();
        // Low half must be the old word 63; after the call the index
        // points at word 1 of the fresh buffer.
        assert_eq!(rng.index, 1);
        let mut replay = StdRng::seed_from_u64(99);
        let mut words = Vec::new();
        for _ in 0..66 {
            words.push(replay.next_u32());
        }
        assert_eq!(straddled & 0xffff_ffff, u64::from(words[63]));
        assert_eq!(straddled >> 32, u64::from(words[64]));
    }

    #[test]
    fn u32_stream_is_four_blocks_per_refill() {
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u32> = (0..BUF_WORDS).map(|_| rng.next_u32()).collect();
        let key = rng.key;
        let mut expect = Vec::new();
        for c in 0..4u64 {
            expect.extend_from_slice(&block(&key, c));
        }
        assert_eq!(first, expect);
    }
}

//! Uniform range sampling (`rng.gen_range(a..b)` / `a..=b`), reproducing
//! `rand 0.8.5`'s `UniformInt::sample_single_inclusive` (Lemire widening
//! multiply with conservative zone) and `UniformFloat::sample_single`.
//!
//! Type mapping follows rand's `uniform_int_impl!` table: 8/16/32-bit
//! integers widen to `u32`, 64-bit to `u64`, `usize`/`isize` to the
//! pointer width (this workspace targets 64-bit).

use crate::{RngCore, StandardSample};

/// A range usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw one uniformly distributed value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types with a uniform single-sample implementation.
pub trait SampleUniform: Sized {
    /// Sample from `[low, high)`.
    fn sample_single<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Sample from `[low, high]`.
    fn sample_single_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Widening multiply: `(hi, lo)` halves of the double-width product.
trait WideMul: Copy {
    fn wmul(self, other: Self) -> (Self, Self);
}

impl WideMul for u32 {
    fn wmul(self, other: Self) -> (Self, Self) {
        let product = u64::from(self) * u64::from(other);
        ((product >> 32) as u32, product as u32)
    }
}

impl WideMul for u64 {
    fn wmul(self, other: Self) -> (Self, Self) {
        let product = u128::from(self) * u128::from(other);
        ((product >> 64) as u64, product as u64)
    }
}

impl WideMul for usize {
    fn wmul(self, other: Self) -> (Self, Self) {
        let (hi, lo) = (self as u64).wmul(other as u64);
        (hi as usize, lo as usize)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                // Wrapped to zero: the range covers the whole type.
                if range == 0 {
                    return <$u_large as StandardSample>::sample_standard(rng) as $ty;
                }
                let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                    // Small types: exact rejection zone via modulus.
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    // Conservative zone: top bits of the largest multiple.
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = <$u_large as StandardSample>::sample_standard(rng);
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl! { i8, u8, u32 }
uniform_int_impl! { i16, u16, u32 }
uniform_int_impl! { i32, u32, u32 }
uniform_int_impl! { i64, u64, u64 }
uniform_int_impl! { isize, usize, usize }
uniform_int_impl! { u8, u8, u32 }
uniform_int_impl! { u16, u16, u32 }
uniform_int_impl! { u32, u32, u32 }
uniform_int_impl! { u64, u64, u64 }
uniform_int_impl! { usize, usize, usize }

impl SampleUniform for f64 {
    fn sample_single<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "cannot sample empty range");
        let mut scale = high - low;
        assert!(scale.is_finite(), "range overflow");
        loop {
            // 52 fraction bits: value1_2 is uniform in [1, 2).
            let fraction = rng.next_u64() >> (64 - 52);
            let value1_2 = f64::from_bits((1023u64 << 52) | fraction);
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
            // Shrink scale by one ulp and retry (edge-case handling as in
            // rand's `decrease_masked`).
            scale = f64::from_bits(scale.to_bits() - 1);
        }
    }

    fn sample_single_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
        // rand 0.8 samples inclusive float ranges identically to
        // half-open ones (`gen_range(a..=b)` uses `sample_single_inclusive`
        // only for ints); delegate for completeness.
        assert!(low <= high, "cannot sample empty range");
        if low == high {
            return low;
        }
        Self::sample_single(low, high, rng)
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn full_u8_inclusive_range_does_not_reject() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..512 {
            let _: u8 = rng.gen_range(0..=u8::MAX);
        }
    }

    #[test]
    fn signed_ranges_cover_both_signs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut neg = false;
        let mut pos = false;
        for _ in 0..256 {
            let v = rng.gen_range(-100..100);
            assert!((-100..100).contains(&v));
            neg |= v < 0;
            pos |= v >= 0;
        }
        assert!(neg && pos);
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! End-to-end tests of the `bp-conformance` CLI and the injectable
//! differential harness.

use std::process::Command;

use bp_conformance::{corpus, run_case, DiffConfig, Kernels};
use bp_core::BranchMatrix;
use bp_predictors::SaturatingCounter;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bp-conformance"))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bp-conformance-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sweep_without_goldens_is_green() {
    let out = bin()
        .args(["sweep", "--cases", "8", "--seed", "1", "--skip-goldens"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sweep OK"), "stdout: {stdout}");
}

#[test]
fn selftest_catches_all_injected_bugs() {
    let out = bin().arg("selftest").output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("selftest OK"), "stdout: {stdout}");
    assert_eq!(stdout.matches("caught:").count(), 3, "stdout: {stdout}");
}

#[test]
fn gen_then_diff_roundtrips_through_bpt_files() {
    let dir = temp_dir("gen");
    let out = bin()
        .args(["gen", "--cases", "4", "--seed", "2", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut traces: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "bpt"))
        .collect();
    assert!(traces.len() >= 13, "only {} traces generated", traces.len());
    traces.sort();
    traces.truncate(3);
    let out = bin().arg("diff").args(&traces).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.matches("all suites agree").count(),
        3,
        "stdout: {stdout}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_command_and_bad_options_fail() {
    assert!(!bin().arg("frobnicate").output().unwrap().status.success());
    assert!(!bin()
        .args(["sweep", "--budget", "soon"])
        .output()
        .unwrap()
        .status
        .success());
    assert!(!bin().args(["diff"]).output().unwrap().status.success());
}

/// Off-by-one injected at the library level: the harness must catch it,
/// attribute it to the oracle suite, and hand back a minimized trace
/// that still exhibits the divergence.
#[test]
fn injected_scorer_bug_yields_minimized_reproducer() {
    fn buggy(bm: &BranchMatrix, cols: &[usize], init: SaturatingCounter) -> u64 {
        let s = bp_core::score_tag_set(bm, cols, init);
        if !bm.executions().is_multiple_of(64) && cols.len() == 1 {
            s + 1
        } else {
            s
        }
    }
    let kernels = Kernels {
        tag_scorer: buggy,
        ..Kernels::default()
    };
    let cfg = DiffConfig::default();
    let divergence = corpus(9, 13)
        .iter()
        .find_map(|case| run_case(&case.name, &case.trace, &cfg, &kernels))
        .expect("injected oracle bug must be caught on the canned corpus");
    assert_eq!(divergence.suite, "oracle");
    assert!(
        divergence.trace.records().len() <= 8,
        "reproducer not minimized: {} records",
        divergence.trace.records().len()
    );
    assert!(
        bp_conformance::diff::diff_oracle(&divergence.trace, &cfg.oracle, &kernels).is_some(),
        "minimized reproducer no longer diverges"
    );
}

//! Pins the `bp_trace::script` DSL across its relocation out of this
//! crate: the canned conformance cases must keep producing the exact
//! traces they produced when the DSL lived in `gen.rs` (fingerprints
//! below were captured from that code), and the two emission paths —
//! materialize via `TraceSpec::build` vs stream via `build_streamed` —
//! must agree record-for-record on the corpus's own random spec
//! distribution.

use bp_conformance::corpus;
use bp_conformance::gen::random_specs;
use bp_trace::script::build_streamed;
use bp_trace::BranchRecord;

/// FNV-1a over every field of every record — any reordering, dropped
/// record, or flipped outcome moves it.
fn fingerprint(records: &[BranchRecord]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in records {
        eat(&r.pc.to_le_bytes());
        eat(&r.target.to_le_bytes());
        eat(&[u8::from(r.taken)]);
        eat(format!("{:?}", r.kind).as_bytes());
    }
    h
}

#[test]
fn canned_cases_fingerprints_are_unchanged_by_the_relocation() {
    let expected: &[(&str, u64)] = &[
        ("run-crossing-words", 0x554e291c68ced285),
        ("trip-cap-254", 0x73b5fe633076a911),
        ("trip-cap-255", 0xaf3f2f5fe0b3384c),
        ("trip-cap-256", 0x83bc3722dc6e71a1),
        ("ring-capacity-63", 0x9c3bf414bd2e2135),
        ("ring-capacity-64", 0xf0d12f57be373f25),
        ("ring-capacity-65", 0xce7817c05d46b65d),
        ("word-boundary-flip", 0x733eaeed6a283155),
        ("tiny-1", 0x25d7358935e0aa49),
        ("tiny-64", 0xfc6095ba15defd25),
        ("tiny-65", 0xb0b9bd850941e449),
        ("aliasing-low-bits", 0x90801098ef849f5),
        ("correlated-copy", 0x57aa0d2b413ca0e5),
    ];
    let canned = corpus(0, 0);
    assert_eq!(canned.len(), expected.len());
    for (case, &(name, fp)) in canned.iter().zip(expected) {
        assert_eq!(case.name, name);
        assert_eq!(
            fingerprint(case.trace.records()),
            fp,
            "canned case '{name}' changed bytes",
        );
    }
}

#[test]
fn random_specs_build_and_build_streamed_agree() {
    for (i, spec) in random_specs(0xD51, 40).iter().enumerate() {
        let built = spec.build();
        let streamed = build_streamed(spec);
        assert_eq!(
            built.records(),
            streamed.records(),
            "spec {i}: materialized and streamed emission diverge",
        );
        assert_eq!(built.records().len(), spec.total_len(), "spec {i}: length");
    }
}

#[test]
fn random_specs_are_seed_deterministic() {
    let a = random_specs(7, 8);
    let b = random_specs(7, 8);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            fingerprint(x.build().records()),
            fingerprint(y.build().records())
        );
    }
    let c = random_specs(8, 8);
    assert!(
        a.iter()
            .zip(&c)
            .any(|(x, y)| fingerprint(x.build().records()) != fingerprint(y.build().records())),
        "different seeds should draw different specs"
    );
}

//! `bp-conformance` — run the verification subsystem.
//!
//! ```text
//! bp-conformance sweep                 all suites: differential, laws, goldens
//! bp-conformance sweep --budget 60s    fail if the sweep exceeds a time budget
//! bp-conformance diff FILE.bpt         replay one trace through every suite
//! bp-conformance laws                  metamorphic laws only
//! bp-conformance gen --out DIR         dump the adversarial corpus as .bpt
//! bp-conformance selftest              prove injected kernel bugs are caught
//! ```
//!
//! `sweep` exits non-zero on any kernel divergence (writing a minimized
//! `.bpt` reproducer), law violation, golden mismatch, or budget overrun.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use bp_conformance::diff::{self, DiffConfig, Divergence, Kernels};
use bp_conformance::{all_laws, corpus, minimize, NamedTrace};
use bp_core::{Classification, Classifier, ClassifierConfig, OutcomeMatrix, SweepMatrix};
use bp_experiments::goldens::Goldens;
use bp_experiments::{Engine, ExperimentConfig, TraceSet};
use bp_trace::Trace;

fn usage() {
    eprintln!(
        "usage: bp-conformance <command> [options]\n\
         commands:\n\
         \x20 sweep    [--seed N] [--cases N] [--budget DUR] [--repro-dir DIR]\n\
         \x20          [--goldens FILE] [--skip-goldens]\n\
         \x20 diff     FILE.bpt...\n\
         \x20 laws     [--seed N] [--cases N]\n\
         \x20 gen      [--seed N] [--cases N] --out DIR\n\
         \x20 selftest"
    );
}

/// Parses `60s`, `500ms`, or a plain second count.
fn parse_duration(s: &str) -> Option<Duration> {
    if let Some(ms) = s.strip_suffix("ms") {
        return ms.parse::<u64>().ok().map(Duration::from_millis);
    }
    if let Some(secs) = s.strip_suffix('s') {
        return secs.parse::<u64>().ok().map(Duration::from_secs);
    }
    s.parse::<u64>().ok().map(Duration::from_secs)
}

struct Options {
    seed: u64,
    cases: usize,
    budget: Option<Duration>,
    repro_dir: PathBuf,
    goldens: Option<PathBuf>,
    skip_goldens: bool,
    out: Option<PathBuf>,
    files: Vec<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 0xC0F0,
            cases: 48,
            budget: None,
            repro_dir: PathBuf::from("target/conformance"),
            goldens: None,
            skip_goldens: false,
            out: None,
            files: Vec::new(),
        }
    }
}

fn parse_options(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an unsigned integer".to_owned())?;
            }
            "--cases" => {
                opts.cases = value("--cases")?
                    .parse()
                    .map_err(|_| "--cases needs a count".to_owned())?;
            }
            "--budget" => {
                let v = value("--budget")?;
                opts.budget =
                    Some(parse_duration(&v).ok_or(format!("bad --budget duration: {v}"))?);
            }
            "--repro-dir" => opts.repro_dir = PathBuf::from(value("--repro-dir")?),
            "--goldens" => opts.goldens = Some(PathBuf::from(value("--goldens")?)),
            "--skip-goldens" => opts.skip_goldens = true,
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            other if !other.starts_with('-') => opts.files.push(PathBuf::from(other)),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    Ok(opts)
}

/// Writes a divergence's minimized reproducer and prints the report.
fn report_divergence(d: &Divergence, repro_dir: &Path) {
    eprintln!(
        "DIVERGENCE [{}] on case {}: {}",
        d.suite, d.case_name, d.detail
    );
    if let Err(e) = std::fs::create_dir_all(repro_dir) {
        eprintln!("error: cannot create {}: {e}", repro_dir.display());
        return;
    }
    let path = repro_dir.join(format!("{}-{}.bpt", d.suite, d.case_name));
    match std::fs::File::create(&path)
        .map_err(|e| e.to_string())
        .and_then(|mut f| bp_trace::io::write_trace(&mut f, &d.trace).map_err(|e| e.to_string()))
    {
        Ok(()) => eprintln!(
            "  minimized reproducer ({} records) written to {}",
            d.trace.records().len(),
            path.display()
        ),
        Err(e) => eprintln!("error: cannot write reproducer {}: {e}", path.display()),
    }
}

/// Runs the differential suites over a corpus. Returns the failure count.
fn run_differential(
    cases: &[NamedTrace],
    cfg: &DiffConfig,
    kernels: &Kernels,
    repro_dir: &Path,
) -> usize {
    let mut failures = 0;
    for case in cases {
        if let Some(d) = diff::run_case(&case.name, &case.trace, cfg, kernels) {
            report_divergence(&d, repro_dir);
            failures += 1;
        }
    }
    failures
}

/// Runs every metamorphic law over a corpus. Returns the violation count.
fn run_laws(cases: &[NamedTrace]) -> usize {
    let mut violations = 0;
    for law in all_laws() {
        for case in cases {
            if let Some(detail) = (law.check)(&case.trace) {
                eprintln!(
                    "LAW VIOLATION [{}] on case {}: {detail}",
                    law.name, case.name
                );
                violations += 1;
            }
        }
    }
    violations
}

/// Verifies the committed golden fingerprints at the quick target.
/// Returns the mismatch count.
fn run_goldens(goldens_path: Option<&Path>) -> usize {
    let path = goldens_path
        .map(Path::to_path_buf)
        .unwrap_or_else(bp_experiments::goldens::default_path);
    let committed = match Goldens::load(&path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("GOLDEN FAILURE: {e}");
            return 1;
        }
    };
    let cfg = ExperimentConfig::quick();
    if let Err(e) = committed.check_config(&cfg) {
        eprintln!("GOLDEN FAILURE: {e}");
        return 1;
    }
    let engine = Engine::with_available_parallelism(TraceSet::new(cfg.workload));
    let fresh = Goldens::capture(&cfg, &engine);
    let mismatches = committed.diff(&fresh);
    for m in &mismatches {
        eprintln!("GOLDEN MISMATCH: {m}");
    }
    mismatches.len()
}

fn cmd_sweep(opts: &Options) -> ExitCode {
    let started = Instant::now();
    let cases = corpus(opts.seed, opts.cases);
    let cfg = DiffConfig::default();
    let kernels = Kernels::default();

    let mut failures = run_differential(&cases, &cfg, &kernels, &opts.repro_dir);
    eprintln!(
        "[differential: {} cases x 7 suites, {} divergences, {:.1}s]",
        cases.len(),
        failures,
        started.elapsed().as_secs_f64()
    );

    let law_started = Instant::now();
    failures += run_laws(&cases);
    eprintln!(
        "[laws: {} laws x {} cases, {:.1}s]",
        all_laws().len(),
        cases.len(),
        law_started.elapsed().as_secs_f64()
    );

    if opts.skip_goldens {
        eprintln!("[goldens: skipped]");
    } else {
        let golden_started = Instant::now();
        failures += run_goldens(opts.goldens.as_deref());
        eprintln!(
            "[goldens: checked in {:.1}s]",
            golden_started.elapsed().as_secs_f64()
        );
    }

    let elapsed = started.elapsed();
    if let Some(budget) = opts.budget {
        if elapsed > budget {
            eprintln!(
                "BUDGET EXCEEDED: sweep took {:.1}s, budget {:.1}s",
                elapsed.as_secs_f64(),
                budget.as_secs_f64()
            );
            return ExitCode::FAILURE;
        }
    }
    if failures > 0 {
        eprintln!(
            "sweep FAILED: {failures} failure(s) in {:.1}s",
            elapsed.as_secs_f64()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "sweep OK: {} cases, {} laws, goldens {} ({:.1}s)",
        cases.len(),
        all_laws().len(),
        if opts.skip_goldens {
            "skipped"
        } else {
            "verified"
        },
        elapsed.as_secs_f64()
    );
    ExitCode::SUCCESS
}

fn cmd_diff(opts: &Options) -> ExitCode {
    if opts.files.is_empty() {
        eprintln!("error: diff needs at least one .bpt file");
        usage();
        return ExitCode::FAILURE;
    }
    let cfg = DiffConfig::default();
    let kernels = Kernels::default();
    let mut failures = 0;
    for path in &opts.files {
        let trace = match std::fs::File::open(path)
            .map_err(|e| e.to_string())
            .and_then(|mut f| bp_trace::io::read_trace(&mut f).map_err(|e| e.to_string()))
        {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".to_owned());
        match diff::run_case(&name, &trace, &cfg, &kernels) {
            Some(d) => {
                report_divergence(&d, &opts.repro_dir);
                failures += 1;
            }
            None => println!(
                "{}: all suites agree ({} records)",
                path.display(),
                trace.records().len()
            ),
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_laws(opts: &Options) -> ExitCode {
    let cases = corpus(opts.seed, opts.cases);
    let violations = run_laws(&cases);
    if violations > 0 {
        eprintln!("laws FAILED: {violations} violation(s)");
        return ExitCode::FAILURE;
    }
    println!("laws OK: {} laws x {} cases", all_laws().len(), cases.len());
    ExitCode::SUCCESS
}

fn cmd_gen(opts: &Options) -> ExitCode {
    let Some(out) = &opts.out else {
        eprintln!("error: gen needs --out DIR");
        usage();
        return ExitCode::FAILURE;
    };
    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("error: cannot create {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let cases = corpus(opts.seed, opts.cases);
    for case in &cases {
        let path = out.join(format!("{}.bpt", case.name));
        let result = std::fs::File::create(&path)
            .map_err(|e| e.to_string())
            .and_then(|mut f| {
                bp_trace::io::write_trace(&mut f, &case.trace).map_err(|e| e.to_string())
            });
        if let Err(e) = result {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!("wrote {} traces to {}", cases.len(), out.display());
    ExitCode::SUCCESS
}

// ---- self-test: deliberately broken kernels must be caught ----

/// Off-by-one in the final partial-word popcount: one extra "correct"
/// whenever the execution count does not fill its last 64-bit word.
fn buggy_tag_scorer(
    bm: &bp_core::BranchMatrix,
    cols: &[usize],
    init: bp_predictors::SaturatingCounter,
) -> u64 {
    let s = bp_core::score_tag_set(bm, cols, init);
    if !bm.executions().is_multiple_of(64) && cols.len() == 1 {
        s + 1
    } else {
        s
    }
}

/// Off-by-one in the replay loop bound: the final record is never fed
/// to the class predictors.
fn buggy_classify(trace: &Trace, cfg: &ClassifierConfig) -> Classification {
    let recs = trace.records();
    let truncated = Trace::from_records(recs[..recs.len().saturating_sub(1)].to_vec());
    Classifier::classify(&truncated, cfg)
}

/// Materializes the wrong sweep point when more than one window exists.
fn buggy_sweep(trace: &Trace, windows: &[usize], caps: &[usize], idx: usize) -> OutcomeMatrix {
    let sweep = SweepMatrix::build(trace, windows, caps);
    let wrong = if windows.len() > 1 { idx ^ 1 } else { idx };
    sweep.materialize(wrong.min(windows.len() - 1))
}

fn cmd_selftest() -> ExitCode {
    let cases = corpus(0xC0F0, 20);
    let cfg = DiffConfig::default();
    let clean = Kernels::default();

    // 1. The production kernels must be clean on the corpus.
    for case in &cases {
        if let Some(d) = diff::run_case(&case.name, &case.trace, &cfg, &clean) {
            eprintln!(
                "selftest FAILED: production kernels diverge on {}: {}",
                case.name, d.detail
            );
            return ExitCode::FAILURE;
        }
    }

    // 2. Each injected bug must be caught, and the reported reproducer
    //    must still exhibit the divergence after minimization and a
    //    round-trip through the .bpt encoding.
    let injections: [(&str, Kernels); 3] = [
        (
            "oracle off-by-one popcount",
            Kernels {
                tag_scorer: buggy_tag_scorer,
                ..Kernels::default()
            },
        ),
        (
            "classify drops final record",
            Kernels {
                classify: buggy_classify,
                ..Kernels::default()
            },
        ),
        (
            "sweep wrong materialization point",
            Kernels {
                sweep: buggy_sweep,
                ..Kernels::default()
            },
        ),
    ];
    for (bug, kernels) in &injections {
        let caught = cases
            .iter()
            .find_map(|case| diff::run_case(&case.name, &case.trace, &cfg, kernels));
        let Some(d) = caught else {
            eprintln!("selftest FAILED: injected bug not caught: {bug}");
            return ExitCode::FAILURE;
        };
        // The minimized reproducer still diverges...
        let still = match d.suite {
            "oracle" => diff::diff_oracle(&d.trace, &cfg.oracle, kernels).is_some(),
            "classify" => diff::diff_classify(&d.trace, &cfg.classify, kernels).is_some(),
            _ => diff::diff_sweep(&d.trace, &cfg.windows, &cfg.caps, kernels).is_some(),
        };
        if !still {
            eprintln!("selftest FAILED: minimized reproducer lost the divergence: {bug}");
            return ExitCode::FAILURE;
        }
        // ...and survives .bpt serialization byte-exactly.
        let mut bytes = Vec::new();
        if let Err(e) = bp_trace::io::write_trace(&mut bytes, &d.trace) {
            eprintln!("selftest FAILED: cannot encode reproducer: {e}");
            return ExitCode::FAILURE;
        }
        let read_back = match bp_trace::io::read_trace(&mut bytes.as_slice()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("selftest FAILED: cannot decode reproducer: {e}");
                return ExitCode::FAILURE;
            }
        };
        if read_back.records() != d.trace.records() {
            eprintln!("selftest FAILED: .bpt round-trip altered the reproducer: {bug}");
            return ExitCode::FAILURE;
        }
        println!(
            "caught: {bug} [{}] on {} (minimized to {} records)",
            d.suite,
            d.case_name,
            d.trace.records().len()
        );
    }

    // 3. The minimizer must actually shrink a padded failing trace.
    let needle = bp_trace::BranchRecord::conditional(0xBAD0, false);
    let mut recs = vec![bp_trace::BranchRecord::conditional(0x100, true); 300];
    recs.push(needle);
    recs.extend(vec![bp_trace::BranchRecord::conditional(0x200, true); 300]);
    let padded = Trace::from_records(recs);
    let minimized = minimize(&padded, |t| {
        t.conditionals().any(|r| r.pc == 0xBAD0 && !r.taken)
    });
    if minimized.records().len() != 1 {
        eprintln!(
            "selftest FAILED: minimizer left {} records, expected 1",
            minimized.records().len()
        );
        return ExitCode::FAILURE;
    }

    println!("selftest OK: 3 injected bugs caught, reproducers minimized and round-tripped");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        usage();
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "-h" {
        usage();
        return ExitCode::SUCCESS;
    }
    let opts = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    match command.as_str() {
        "sweep" => cmd_sweep(&opts),
        "diff" => cmd_diff(&opts),
        "laws" => cmd_laws(&opts),
        "gen" => cmd_gen(&opts),
        "selftest" => cmd_selftest(),
        other => {
            eprintln!("unknown command: {other}");
            usage();
            ExitCode::FAILURE
        }
    }
}

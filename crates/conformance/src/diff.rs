//! Differential runners: every optimized kernel against its executable
//! specification, with first-divergence reporting and trace minimization.
//!
//! Three kernels are pinned:
//!
//! * the bit-plane oracle scorers ([`bp_core::score_tag_set`] /
//!   [`bp_core::score_columns_presence`] and the full per-branch subset
//!   search) against the digit-at-a-time `bp_core::reference` scorers;
//! * the bit-parallel classifier (`Classifier::classify`) against
//!   `reference::classify`;
//! * incremental [`SweepMatrix`] window materialization against
//!   independent per-window [`OutcomeMatrix::build`] scans.
//!
//! Each runner is parameterized over the kernel entry point it checks, so
//! the self-test can inject a deliberately buggy kernel and prove the
//! harness catches it. On divergence, [`minimize`] shrinks the failing
//! trace with a ddmin-style chunk removal loop before it is reported.

use bp_core::reference;
use bp_core::{
    BranchMatrix, Classification, Classifier, ClassifierConfig, OracleConfig, OracleSelector,
    OutcomeMatrix, SweepMatrix, TagCandidates,
};
use bp_predictors::SaturatingCounter;
use bp_trace::Trace;

/// The optimized tag-set scorer under test (injectable).
pub type TagScorer = fn(&BranchMatrix, &[usize], SaturatingCounter) -> u64;
/// The optimized presence scorer under test (injectable).
pub type PresenceScorer = fn(&BranchMatrix, &[usize], SaturatingCounter) -> u64;
/// The classifier under test (injectable).
pub type ClassifyFn = fn(&Trace, &ClassifierConfig) -> Classification;
/// The sweep materializer under test (injectable): builds the sweep for
/// `(trace, windows, caps)` and materializes point `idx`.
pub type SweepFn = fn(&Trace, &[usize], &[usize], usize) -> OutcomeMatrix;

/// The kernel entry points a differential pass exercises. [`Kernels::default`]
/// wires the production kernels; the self-test swaps individual entries
/// for deliberately broken ones.
#[derive(Clone, Copy)]
pub struct Kernels {
    /// Tag-set scorer (production: [`bp_core::score_tag_set`]).
    pub tag_scorer: TagScorer,
    /// Presence scorer (production: [`bp_core::score_columns_presence`]).
    pub presence_scorer: PresenceScorer,
    /// Classifier (production: [`Classifier::classify`]).
    pub classify: ClassifyFn,
    /// Sweep materializer (production: [`SweepMatrix::build`] +
    /// [`SweepMatrix::materialize`]).
    pub sweep: SweepFn,
}

fn production_classify(trace: &Trace, cfg: &ClassifierConfig) -> Classification {
    Classifier::classify(trace, cfg)
}

fn production_sweep(trace: &Trace, windows: &[usize], caps: &[usize], idx: usize) -> OutcomeMatrix {
    SweepMatrix::build(trace, windows, caps).materialize(idx)
}

impl Default for Kernels {
    fn default() -> Self {
        Kernels {
            tag_scorer: bp_core::score_tag_set,
            presence_scorer: bp_core::score_columns_presence,
            classify: production_classify,
            sweep: production_sweep,
        }
    }
}

/// Analysis parameters a differential pass runs at. Smaller than the
/// production defaults so the reference (per-digit) side stays fast.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Oracle configuration for scorer and subset-search diffing.
    pub oracle: OracleConfig,
    /// Classifier configurations (each is diffed).
    pub classify: Vec<ClassifierConfig>,
    /// Sweep window set.
    pub windows: Vec<usize>,
    /// Per-window candidate caps.
    pub caps: Vec<usize>,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            oracle: OracleConfig {
                window: 8,
                candidate_cap: 12,
                ..OracleConfig::default()
            },
            classify: vec![
                ClassifierConfig::default(),
                ClassifierConfig {
                    max_period: 64,
                    pas_history_bits: 4,
                },
                ClassifierConfig {
                    max_period: 1,
                    pas_history_bits: 1,
                },
            ],
            windows: vec![4, 8, 12, 16],
            caps: vec![10, 10, 10, 10],
        }
    }
}

/// One kernel-vs-specification disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which differential suite caught it (`oracle`, `classify`, `sweep`).
    pub suite: &'static str,
    /// Generator case name the divergence surfaced on.
    pub case_name: String,
    /// First point of disagreement, human-readable.
    pub detail: String,
    /// The minimized reproducer trace.
    pub trace: Trace,
}

/// Diffs the oracle scorers and the full per-branch subset search on one
/// trace. Returns the first disagreement.
pub fn diff_oracle(trace: &Trace, cfg: &OracleConfig, kernels: &Kernels) -> Option<String> {
    let cands = TagCandidates::collect(trace, cfg.window, cfg.candidate_cap);
    let matrix = OutcomeMatrix::build(trace, &cands, cfg.window);
    for (pc, bm) in matrix.iter() {
        let view = reference::ColumnView::new(bm);
        let n = bm.tags().len();
        // Direct scorer diff over a structured set of column subsets:
        // the empty set, every singleton, adjacent pairs, and one triple.
        let mut subsets: Vec<Vec<usize>> = vec![Vec::new()];
        subsets.extend((0..n).map(|c| vec![c]));
        subsets.extend((1..n).map(|c| vec![c - 1, c]));
        if n >= 3 {
            subsets.push(vec![0, n / 2, n - 1]);
        }
        for cols in &subsets {
            let got = (kernels.tag_scorer)(bm, cols, cfg.counter);
            let want = reference::score_tag_set(&view, cols, cfg.counter);
            if got != want {
                return Some(format!(
                    "branch {pc:#x}: tag-set scorer on columns {cols:?}: kernel {got} != reference {want}"
                ));
            }
            if !cols.is_empty() {
                let got = (kernels.presence_scorer)(bm, cols, cfg.counter);
                let want = reference::score_presence(bm, cols, cfg.counter);
                if got != want {
                    return Some(format!(
                        "branch {pc:#x}: presence scorer on columns {cols:?}: kernel {got} != reference {want}"
                    ));
                }
            }
        }
        // Full subset-search diff: the production selection must equal
        // the reference-driven search, tag for tag and score for score.
        let got = OracleSelector::select_branch(bm, cfg);
        let want = reference::select_branch(bm, cfg);
        if got.executions != want.executions || got.best != want.best {
            return Some(format!(
                "branch {pc:#x}: subset search: kernel {got:?} != reference {want:?}"
            ));
        }
    }
    None
}

/// Diffs the bit-parallel classifier against `reference::classify` on one
/// trace, across every configured [`ClassifierConfig`].
pub fn diff_classify(
    trace: &Trace,
    configs: &[ClassifierConfig],
    kernels: &Kernels,
) -> Option<String> {
    for cfg in configs {
        let got = (kernels.classify)(trace, cfg);
        let want = reference::classify(trace, cfg);
        if got.iter().count() != want.iter().count() {
            return Some(format!(
                "cfg {cfg:?}: kernel classified {} branches, reference {}",
                got.iter().count(),
                want.iter().count()
            ));
        }
        for (pc, w) in want.iter() {
            if got.get(pc) != Some(w) {
                return Some(format!(
                    "cfg {cfg:?}: branch {pc:#x}: kernel {:?} != reference {w:?}",
                    got.get(pc)
                ));
            }
        }
    }
    None
}

/// Diffs every materialized sweep point against an independent
/// max-window-free direct build of that window's outcome matrix.
pub fn diff_sweep(
    trace: &Trace,
    windows: &[usize],
    caps: &[usize],
    kernels: &Kernels,
) -> Option<String> {
    for (i, (&window, &cap)) in windows.iter().zip(caps).enumerate() {
        let derived = (kernels.sweep)(trace, windows, caps, i);
        let cands = TagCandidates::collect(trace, window, cap);
        let direct = OutcomeMatrix::build(trace, &cands, window);
        if derived.branch_count() != direct.branch_count() {
            return Some(format!(
                "window {window}: sweep materialized {} branches, direct build {}",
                derived.branch_count(),
                direct.branch_count()
            ));
        }
        for (pc, want) in direct.iter() {
            let Some(got) = derived.branch(pc) else {
                return Some(format!(
                    "window {window}: branch {pc:#x} missing from sweep"
                ));
            };
            if got.tags() != want.tags() {
                return Some(format!(
                    "window {window}: branch {pc:#x}: candidate columns differ"
                ));
            }
            if got.executions() != want.executions() || got.taken_plane() != want.taken_plane() {
                return Some(format!(
                    "window {window}: branch {pc:#x}: taken plane differs"
                ));
            }
            for c in 0..want.tags().len() {
                if got.inpath_plane(c) != want.inpath_plane(c) {
                    return Some(format!(
                        "window {window}: branch {pc:#x} column {c}: in-path plane differs"
                    ));
                }
                if got.dir_plane(c) != want.dir_plane(c) {
                    return Some(format!(
                        "window {window}: branch {pc:#x} column {c}: direction plane differs"
                    ));
                }
            }
        }
    }
    None
}

/// Runs every differential suite on one named trace; on the first
/// divergence, minimizes the trace against that suite and reports it.
pub fn run_case(
    name: &str,
    trace: &Trace,
    cfg: &DiffConfig,
    kernels: &Kernels,
) -> Option<Divergence> {
    if diff_oracle(trace, &cfg.oracle, kernels).is_some() {
        let oracle_cfg = cfg.oracle;
        let k = *kernels;
        let minimized = minimize(trace, |t| diff_oracle(t, &oracle_cfg, &k).is_some());
        let detail = diff_oracle(&minimized, &cfg.oracle, kernels)
            .expect("minimize preserves the divergence");
        return Some(Divergence {
            suite: "oracle",
            case_name: name.to_owned(),
            detail,
            trace: minimized,
        });
    }
    if diff_classify(trace, &cfg.classify, kernels).is_some() {
        let configs = cfg.classify.clone();
        let k = *kernels;
        let minimized = minimize(trace, |t| diff_classify(t, &configs, &k).is_some());
        let detail = diff_classify(&minimized, &cfg.classify, kernels)
            .expect("minimize preserves the divergence");
        return Some(Divergence {
            suite: "classify",
            case_name: name.to_owned(),
            detail,
            trace: minimized,
        });
    }
    if diff_sweep(trace, &cfg.windows, &cfg.caps, kernels).is_some() {
        let (windows, caps) = (cfg.windows.clone(), cfg.caps.clone());
        let k = *kernels;
        let minimized = minimize(trace, |t| diff_sweep(t, &windows, &caps, &k).is_some());
        let detail = diff_sweep(&minimized, &cfg.windows, &cfg.caps, kernels)
            .expect("minimize preserves the divergence");
        return Some(Divergence {
            suite: "sweep",
            case_name: name.to_owned(),
            detail,
            trace: minimized,
        });
    }
    None
}

/// ddmin-style trace minimization: repeatedly removes record chunks at
/// doubling granularity while `still_fails` holds, returning a (locally)
/// 1-minimal failing trace.
pub fn minimize(trace: &Trace, still_fails: impl Fn(&Trace) -> bool) -> Trace {
    let mut recs = trace.records().to_vec();
    let mut n = 2usize;
    while recs.len() >= 2 && n <= recs.len() {
        let chunk = recs.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < recs.len() {
            let end = (start + chunk).min(recs.len());
            let mut candidate = Vec::with_capacity(recs.len() - (end - start));
            candidate.extend_from_slice(&recs[..start]);
            candidate.extend_from_slice(&recs[end..]);
            if !candidate.is_empty() && still_fails(&Trace::from_records(candidate.clone())) {
                recs = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk == 1 {
                break;
            }
            n = (n * 2).min(recs.len());
        }
    }
    Trace::from_records(recs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use bp_trace::BranchRecord;

    #[test]
    fn production_kernels_agree_on_small_corpus() {
        let cfg = DiffConfig::default();
        let kernels = Kernels::default();
        for case in gen::corpus(3, 16) {
            assert!(
                run_case(&case.name, &case.trace, &cfg, &kernels).is_none(),
                "unexpected divergence on {}",
                case.name
            );
        }
    }

    #[test]
    fn minimize_shrinks_to_the_failing_record() {
        // Predicate: trace contains a not-taken record at 0x200.
        let recs: Vec<BranchRecord> = (0..200)
            .map(|i| BranchRecord::conditional(0x100 + (i % 7) * 4, i % 3 == 0))
            .chain(std::iter::once(BranchRecord::conditional(0x200, false)))
            .chain((0..100).map(|i| BranchRecord::conditional(0x300, i % 2 == 0)))
            .collect();
        let trace = Trace::from_records(recs);
        let fails = |t: &Trace| t.conditionals().any(|r| r.pc == 0x200 && !r.taken);
        let minimized = minimize(&trace, fails);
        assert_eq!(minimized.records().len(), 1);
        assert!(fails(&minimized));
    }
}

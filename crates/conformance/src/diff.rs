//! Differential runners: every optimized kernel against its executable
//! specification, with first-divergence reporting and trace minimization.
//!
//! Three kernels are pinned:
//!
//! * the bit-plane oracle scorers ([`bp_core::score_tag_set`] /
//!   [`bp_core::score_columns_presence`] and the full per-branch subset
//!   search) against the digit-at-a-time `bp_core::reference` scorers;
//! * the bit-parallel classifier (`Classifier::classify`) against
//!   `reference::classify`;
//! * incremental [`SweepMatrix`] window materialization against
//!   independent per-window [`OutcomeMatrix::build`] scans.
//!
//! Each runner is parameterized over the kernel entry point it checks, so
//! the self-test can inject a deliberately buggy kernel and prove the
//! harness catches it. On divergence, [`minimize`] shrinks the failing
//! trace with a ddmin-style chunk removal loop before it is reported.
//!
//! Two further suites pin the paper-scale machinery: `parallel` diffs the
//! sharded executor and every parallel kernel (classify, oracle select,
//! sweep materialization) against their serial twins at adversarial shard
//! and job counts, and `bps` round-trips the packed `.bps` artifacts
//! through a write → reopen cycle and diffs the analysis summary computed
//! from the reopened planes against the freshly built ones.

use std::path::Path;

use bp_core::reference;
use bp_core::{
    BranchMatrix, Classification, Classifier, ClassifierConfig, OracleConfig, OracleSelector,
    OutcomeMatrix, SweepMatrix, TagCandidates,
};
use bp_predictors::SaturatingCounter;
use bp_trace::bps::{open_streams, write_streams};
use bp_trace::io::{self, ChunkWriter, TraceIoError};
use bp_trace::{BranchRecord, BranchStreams, TagScheme, Trace, TraceSink, TraceSource};

/// The optimized tag-set scorer under test (injectable).
pub type TagScorer = fn(&BranchMatrix, &[usize], SaturatingCounter) -> u64;
/// The optimized presence scorer under test (injectable).
pub type PresenceScorer = fn(&BranchMatrix, &[usize], SaturatingCounter) -> u64;
/// The classifier under test (injectable).
pub type ClassifyFn = fn(&Trace, &ClassifierConfig) -> Classification;
/// The sweep materializer under test (injectable): builds the sweep for
/// `(trace, windows, caps)` and materializes point `idx`.
pub type SweepFn = fn(&Trace, &[usize], &[usize], usize) -> OutcomeMatrix;

/// The kernel entry points a differential pass exercises. [`Kernels::default`]
/// wires the production kernels; the self-test swaps individual entries
/// for deliberately broken ones.
#[derive(Clone, Copy)]
pub struct Kernels {
    /// Tag-set scorer (production: [`bp_core::score_tag_set`]).
    pub tag_scorer: TagScorer,
    /// Presence scorer (production: [`bp_core::score_columns_presence`]).
    pub presence_scorer: PresenceScorer,
    /// Classifier (production: [`Classifier::classify`]).
    pub classify: ClassifyFn,
    /// Sweep materializer (production: [`SweepMatrix::build`] +
    /// [`SweepMatrix::materialize`]).
    pub sweep: SweepFn,
}

fn production_classify(trace: &Trace, cfg: &ClassifierConfig) -> Classification {
    Classifier::classify(trace, cfg)
}

fn production_sweep(trace: &Trace, windows: &[usize], caps: &[usize], idx: usize) -> OutcomeMatrix {
    SweepMatrix::build(trace, windows, caps).materialize(idx)
}

impl Default for Kernels {
    fn default() -> Self {
        Kernels {
            tag_scorer: bp_core::score_tag_set,
            presence_scorer: bp_core::score_columns_presence,
            classify: production_classify,
            sweep: production_sweep,
        }
    }
}

/// Analysis parameters a differential pass runs at. Smaller than the
/// production defaults so the reference (per-digit) side stays fast.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Oracle configuration for scorer and subset-search diffing.
    pub oracle: OracleConfig,
    /// Classifier configurations (each is diffed).
    pub classify: Vec<ClassifierConfig>,
    /// Sweep window set.
    pub windows: Vec<usize>,
    /// Per-window candidate caps.
    pub caps: Vec<usize>,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            oracle: OracleConfig {
                window: 8,
                candidate_cap: 12,
                ..OracleConfig::default()
            },
            classify: vec![
                ClassifierConfig::default(),
                ClassifierConfig {
                    max_period: 64,
                    pas_history_bits: 4,
                },
                ClassifierConfig {
                    max_period: 1,
                    pas_history_bits: 1,
                },
            ],
            windows: vec![4, 8, 12, 16],
            caps: vec![10, 10, 10, 10],
        }
    }
}

/// One kernel-vs-specification disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which differential suite caught it (`oracle`, `classify`, `sweep`).
    pub suite: &'static str,
    /// Generator case name the divergence surfaced on.
    pub case_name: String,
    /// First point of disagreement, human-readable.
    pub detail: String,
    /// The minimized reproducer trace.
    pub trace: Trace,
}

/// Diffs the oracle scorers and the full per-branch subset search on one
/// trace. Returns the first disagreement.
pub fn diff_oracle(trace: &Trace, cfg: &OracleConfig, kernels: &Kernels) -> Option<String> {
    let cands = TagCandidates::collect(trace, cfg.window, cfg.candidate_cap);
    let matrix = OutcomeMatrix::build(trace, &cands, cfg.window);
    for (pc, bm) in matrix.iter() {
        let view = reference::ColumnView::new(bm);
        let n = bm.tags().len();
        // Direct scorer diff over a structured set of column subsets:
        // the empty set, every singleton, adjacent pairs, and one triple.
        let mut subsets: Vec<Vec<usize>> = vec![Vec::new()];
        subsets.extend((0..n).map(|c| vec![c]));
        subsets.extend((1..n).map(|c| vec![c - 1, c]));
        if n >= 3 {
            subsets.push(vec![0, n / 2, n - 1]);
        }
        for cols in &subsets {
            let got = (kernels.tag_scorer)(bm, cols, cfg.counter);
            let want = reference::score_tag_set(&view, cols, cfg.counter);
            if got != want {
                return Some(format!(
                    "branch {pc:#x}: tag-set scorer on columns {cols:?}: kernel {got} != reference {want}"
                ));
            }
            if !cols.is_empty() {
                let got = (kernels.presence_scorer)(bm, cols, cfg.counter);
                let want = reference::score_presence(bm, cols, cfg.counter);
                if got != want {
                    return Some(format!(
                        "branch {pc:#x}: presence scorer on columns {cols:?}: kernel {got} != reference {want}"
                    ));
                }
            }
        }
        // Full subset-search diff: the production selection must equal
        // the reference-driven search, tag for tag and score for score.
        let got = OracleSelector::select_branch(bm, cfg);
        let want = reference::select_branch(bm, cfg);
        if got.executions != want.executions || got.best != want.best {
            return Some(format!(
                "branch {pc:#x}: subset search: kernel {got:?} != reference {want:?}"
            ));
        }
    }
    None
}

/// Diffs the bit-parallel classifier against `reference::classify` on one
/// trace, across every configured [`ClassifierConfig`].
pub fn diff_classify(
    trace: &Trace,
    configs: &[ClassifierConfig],
    kernels: &Kernels,
) -> Option<String> {
    for cfg in configs {
        let got = (kernels.classify)(trace, cfg);
        let want = reference::classify(trace, cfg);
        if got.iter().count() != want.iter().count() {
            return Some(format!(
                "cfg {cfg:?}: kernel classified {} branches, reference {}",
                got.iter().count(),
                want.iter().count()
            ));
        }
        for (pc, w) in want.iter() {
            if got.get(pc) != Some(w) {
                return Some(format!(
                    "cfg {cfg:?}: branch {pc:#x}: kernel {:?} != reference {w:?}",
                    got.get(pc)
                ));
            }
        }
    }
    None
}

/// Diffs every materialized sweep point against an independent
/// max-window-free direct build of that window's outcome matrix.
pub fn diff_sweep(
    trace: &Trace,
    windows: &[usize],
    caps: &[usize],
    kernels: &Kernels,
) -> Option<String> {
    for (i, (&window, &cap)) in windows.iter().zip(caps).enumerate() {
        let derived = (kernels.sweep)(trace, windows, caps, i);
        let cands = TagCandidates::collect(trace, window, cap);
        let direct = OutcomeMatrix::build(trace, &cands, window);
        if derived.branch_count() != direct.branch_count() {
            return Some(format!(
                "window {window}: sweep materialized {} branches, direct build {}",
                derived.branch_count(),
                direct.branch_count()
            ));
        }
        for (pc, want) in direct.iter() {
            let Some(got) = derived.branch(pc) else {
                return Some(format!(
                    "window {window}: branch {pc:#x} missing from sweep"
                ));
            };
            if got.tags() != want.tags() {
                return Some(format!(
                    "window {window}: branch {pc:#x}: candidate columns differ"
                ));
            }
            if got.executions() != want.executions() || got.taken_plane() != want.taken_plane() {
                return Some(format!(
                    "window {window}: branch {pc:#x}: taken plane differs"
                ));
            }
            for c in 0..want.tags().len() {
                if got.inpath_plane(c) != want.inpath_plane(c) {
                    return Some(format!(
                        "window {window}: branch {pc:#x} column {c}: in-path plane differs"
                    ));
                }
                if got.dir_plane(c) != want.dir_plane(c) {
                    return Some(format!(
                        "window {window}: branch {pc:#x} column {c}: direction plane differs"
                    ));
                }
            }
        }
    }
    None
}

/// Diffs the runtime-dispatched SIMD kernels against their portable
/// scalar twins on one trace: the shifted-XNOR k-ago sweep per branch
/// stream and the plane-wise tag-set scorer per branch matrix. The
/// dispatching entry points are checked always; the AVX2 kernels are
/// additionally invoked directly (below the dispatcher's size threshold)
/// when the host has AVX2, so even tiny boundary cases exercise them.
pub fn diff_simd(trace: &Trace, cfg: &OracleConfig) -> Option<String> {
    let streams = BranchStreams::of(trace);
    for (pc, stream) in streams.iter() {
        let n = stream.len();
        let ks = [1usize, 2, 31, 32, 33, 63, 64, 65, 127, 128, 129]
            .into_iter()
            .chain([n.saturating_sub(1).max(1), n.max(1), n + 7]);
        for k in ks {
            let want = bp_core::kth_ago_correct_scalar(stream, k);
            let got = bp_core::kth_ago_correct(stream, k);
            if got != want {
                return Some(format!(
                    "branch {pc:#x}: k-ago dispatch at k={k}: kernel {got} != scalar {want}"
                ));
            }
            if bp_core::avx2_available() && k < n {
                let prefix = (0..k.min(n)).filter(|&e| stream.get(e)).count() as u64;
                let got = prefix + bp_core::kth_ago_body_avx2(stream.words(), n, k);
                if got != want {
                    return Some(format!(
                        "branch {pc:#x}: AVX2 k-ago kernel at k={k}: {got} != scalar {want}"
                    ));
                }
            }
        }
    }
    let cands = TagCandidates::collect(trace, cfg.window, cfg.candidate_cap);
    let matrix = OutcomeMatrix::build(trace, &cands, cfg.window);
    for (pc, bm) in matrix.iter() {
        let n = bm.tags().len();
        let mut subsets: Vec<Vec<usize>> = vec![Vec::new()];
        subsets.extend((0..n).map(|c| vec![c]));
        subsets.extend((1..n).map(|c| vec![c - 1, c]));
        if n >= 3 {
            subsets.push(vec![0, n / 2, n - 1]);
        }
        for cols in &subsets {
            let want = bp_core::score_tag_set_scalar(bm, cols, cfg.counter);
            let got = bp_core::score_tag_set(bm, cols, cfg.counter);
            if got != want {
                return Some(format!(
                    "branch {pc:#x}: tag-set dispatch on columns {cols:?}: \
                     kernel {got} != scalar {want}"
                ));
            }
            if bp_core::avx2_available() {
                let got = bp_core::score_tag_set_avx2(bm, cols, cfg.counter);
                if got != want {
                    return Some(format!(
                        "branch {pc:#x}: AVX2 tag-set kernel on columns {cols:?}: \
                         {got} != scalar {want}"
                    ));
                }
            }
        }
    }
    None
}

/// Chunk sizes the streaming suite re-frames each trace at: the
/// single-record degenerate case and the word-boundary straddle.
pub const STREAM_CHUNK_SIZES: [usize; 4] = [1, 63, 64, 65];

/// A [`TraceSource`] view of a record slice re-framed at a fixed chunk
/// size, for proving chunk boundaries carry no meaning.
struct Rechunked<'a> {
    records: &'a [BranchRecord],
    chunk: usize,
}

impl TraceSource for Rechunked<'_> {
    fn scan(&self, f: &mut dyn FnMut(&[BranchRecord])) -> Result<(), TraceIoError> {
        for chunk in self.records.chunks(self.chunk) {
            f(chunk);
        }
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.records.len() as u64)
    }
}

/// First disagreement between two outcome matrices, compared plane by
/// plane (tags, executions, taken / in-path / direction planes).
fn diff_matrices(label: &str, got: &OutcomeMatrix, want: &OutcomeMatrix) -> Option<String> {
    if got.branch_count() != want.branch_count() {
        return Some(format!(
            "{label}: {} branches != expected {}",
            got.branch_count(),
            want.branch_count()
        ));
    }
    for (pc, want_bm) in want.iter() {
        let Some(got_bm) = got.branch(pc) else {
            return Some(format!("{label}: branch {pc:#x} missing"));
        };
        if got_bm.tags() != want_bm.tags() {
            return Some(format!("{label}: branch {pc:#x}: candidate columns differ"));
        }
        if got_bm.executions() != want_bm.executions()
            || got_bm.taken_plane() != want_bm.taken_plane()
        {
            return Some(format!("{label}: branch {pc:#x}: taken plane differs"));
        }
        for c in 0..want_bm.tags().len() {
            if got_bm.inpath_plane(c) != want_bm.inpath_plane(c)
                || got_bm.dir_plane(c) != want_bm.dir_plane(c)
            {
                return Some(format!(
                    "{label}: branch {pc:#x} column {c}: tag planes differ"
                ));
            }
        }
    }
    None
}

/// Diffs the streaming artifact builders against their materialized
/// originals on one trace, re-framed at every [`STREAM_CHUNK_SIZES`]
/// chunk size: [`BranchStreams::from_source`] vs [`BranchStreams::of`],
/// the source-driven candidate/matrix/sweep builders vs their
/// whole-trace builds, and a `BPT2` encode/decode round trip.
pub fn diff_streaming(
    trace: &Trace,
    cfg: &OracleConfig,
    windows: &[usize],
    caps: &[usize],
) -> Option<String> {
    let records = trace.records();
    let want_streams = BranchStreams::of(trace);
    let want_cands = TagCandidates::collect(trace, cfg.window, cfg.candidate_cap);
    let want_matrix = OutcomeMatrix::build(trace, &want_cands, cfg.window);
    let want_sweep = SweepMatrix::build(trace, windows, caps);
    for &chunk in &STREAM_CHUNK_SIZES {
        let source = Rechunked { records, chunk };
        let label = format!("chunk size {chunk}");

        let got = BranchStreams::from_source(&source).expect("re-chunked scans cannot fail");
        if got != want_streams {
            return Some(format!("{label}: streamed BranchStreams differ"));
        }

        let got = TagCandidates::collect_from_source(
            &source,
            cfg.window,
            cfg.candidate_cap,
            &TagScheme::ALL,
        )
        .expect("re-chunked scans cannot fail");
        if got.branch_count() != want_cands.branch_count() {
            return Some(format!("{label}: streamed candidate branch count differs"));
        }
        for (pc, tags) in want_cands.iter() {
            if got.tags(pc) != tags {
                return Some(format!(
                    "{label}: branch {pc:#x}: streamed candidates differ"
                ));
            }
        }

        let got = OutcomeMatrix::build_from_source(&source, &want_cands, cfg.window)
            .expect("re-chunked scans cannot fail");
        if let Some(why) = diff_matrices(&label, &got, &want_matrix) {
            return Some(format!("streamed matrix: {why}"));
        }

        let got_sweep = SweepMatrix::build_from_source(&source, windows, caps)
            .expect("re-chunked scans cannot fail");
        for (i, window) in windows.iter().enumerate() {
            if let Some(why) = diff_matrices(
                &format!("{label} window {window}"),
                &got_sweep.materialize(i),
                &want_sweep.materialize(i),
            ) {
                return Some(format!("streamed sweep: {why}"));
            }
        }

        // BPT2 chunk-framed encode/decode round trip at this framing.
        let mut buf = Vec::new();
        let mut writer = ChunkWriter::new(&mut buf).expect("in-memory write cannot fail");
        for chunk in records.chunks(chunk) {
            writer.chunk(chunk);
        }
        let total = writer.finish().expect("in-memory write cannot fail");
        if total != records.len() as u64 {
            return Some(format!(
                "{label}: BPT2 writer counted {total} records, trace has {}",
                records.len()
            ));
        }
        match io::read_chunked_trace(buf.as_slice()) {
            Ok(rt) if rt.records() == records => {}
            Ok(_) => return Some(format!("{label}: BPT2 round trip altered records")),
            Err(e) => return Some(format!("{label}: BPT2 round trip failed: {e}")),
        }
    }
    None
}

/// Shard counts the parallel suite drives the sharded builders at: the
/// serial degenerate case and the word-boundary straddle (most corpus
/// traces have far fewer static branches than 64, so these also exercise
/// the workers-above-branches regime).
pub const PARALLEL_SHARDS: [usize; 4] = [1, 63, 64, 65];

/// Job counts the parallel suite drives the parallel analysis kernels at.
pub const PARALLEL_JOBS: [usize; 3] = [1, 2, 7];

/// Diffs the sharded streaming builders and the parallel analysis kernels
/// against their serial twins on one trace: the executor-backed
/// `from_source_sharded` builders at every [`PARALLEL_SHARDS`] count
/// (planes must be bit-identical), then classification, oracle subset
/// search, and sweep materialization at every [`PARALLEL_JOBS`] count.
pub fn diff_parallel(
    trace: &Trace,
    cfg: &OracleConfig,
    classify: &[ClassifierConfig],
    windows: &[usize],
    caps: &[usize],
) -> Option<String> {
    let records = trace.records();
    let source = Rechunked { records, chunk: 64 };
    let want_streams = BranchStreams::of(trace);
    let want_cands = TagCandidates::collect(trace, cfg.window, cfg.candidate_cap);
    let want_matrix = OutcomeMatrix::build(trace, &want_cands, cfg.window);
    for &shards in &PARALLEL_SHARDS {
        let label = format!("{shards} shards");

        let got = BranchStreams::from_source_sharded(&source, shards)
            .expect("in-memory scans cannot fail");
        if got != want_streams {
            return Some(format!("{label}: sharded BranchStreams differ"));
        }

        let got = TagCandidates::collect_from_source_sharded(
            &source,
            cfg.window,
            cfg.candidate_cap,
            &TagScheme::ALL,
            shards,
        )
        .expect("in-memory scans cannot fail");
        if got.branch_count() != want_cands.branch_count() {
            return Some(format!("{label}: sharded candidate branch count differs"));
        }
        for (pc, tags) in want_cands.iter() {
            if got.tags(pc) != tags {
                return Some(format!(
                    "{label}: branch {pc:#x}: sharded candidates differ"
                ));
            }
        }

        let got =
            OutcomeMatrix::build_from_source_sharded(&source, &want_cands, cfg.window, shards)
                .expect("in-memory scans cannot fail");
        if let Some(why) = diff_matrices(&label, &got, &want_matrix) {
            return Some(format!("sharded matrix: {why}"));
        }
    }

    let want_oracle = OracleSelector::analyze_matrix(&want_matrix, cfg);
    let want_sweep = SweepMatrix::build(trace, windows, caps);
    for &jobs in &PARALLEL_JOBS {
        let label = format!("{jobs} jobs");

        for ccfg in classify {
            let want = Classifier::classify_streams(&want_streams, ccfg);
            let (got, _) = Classifier::classify_streams_parallel(&want_streams, ccfg, jobs);
            if got.iter().count() != want.iter().count() {
                return Some(format!(
                    "{label}: cfg {ccfg:?}: parallel classifier branch count differs"
                ));
            }
            for (pc, w) in want.iter() {
                if got.get(pc) != Some(w) {
                    return Some(format!(
                        "{label}: cfg {ccfg:?}: branch {pc:#x}: parallel classification differs"
                    ));
                }
            }
        }

        let got = OracleSelector::analyze_matrix_parallel(&want_matrix, cfg, jobs);
        if got.branch_count() != want_oracle.branch_count() {
            return Some(format!("{label}: parallel oracle branch count differs"));
        }
        for (pc, w) in want_oracle.iter() {
            if got.selection(pc) != Some(w) {
                return Some(format!(
                    "{label}: branch {pc:#x}: parallel subset search differs"
                ));
            }
        }

        for (i, window) in windows.iter().enumerate() {
            if let Some(why) = diff_matrices(
                &format!("{label} window {window}"),
                &want_sweep.materialize_parallel(i, jobs),
                &want_sweep.materialize(i),
            ) {
                return Some(format!("parallel sweep: {why}"));
            }
        }
    }
    None
}

/// Diffs the packed `.bps` artifact codecs on one trace: the built
/// [`BranchStreams`] and [`OutcomeMatrix`] are written, reopened, and
/// compared plane by plane, and the analysis summary (classification,
/// oracle subset search) computed from the reopened planes must match the
/// one computed from the freshly built artifacts.
pub fn diff_bps(trace: &Trace, cfg: &OracleConfig) -> Option<String> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bp-conformance-bps-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return Some(format!("bps: cannot create {}: {e}", dir.display()));
    }
    let verdict = diff_bps_in(&dir, trace, cfg);
    std::fs::remove_dir_all(&dir).ok();
    verdict
}

fn diff_bps_in(dir: &Path, trace: &Trace, cfg: &OracleConfig) -> Option<String> {
    const CONFIG: u64 = 0xB5B5;

    let streams = BranchStreams::of(trace);
    let path = dir.join("streams.bps");
    if let Err(e) = write_streams(&path, &streams, CONFIG) {
        return Some(format!("bps: cannot write streams artifact: {e}"));
    }
    let reopened = match open_streams(&path, CONFIG) {
        Ok(o) => o.streams,
        Err(e) => return Some(format!("bps: cannot reopen streams artifact: {e}")),
    };
    if reopened != streams {
        return Some("bps: reopened BranchStreams differ from the built ones".to_owned());
    }
    let ccfg = ClassifierConfig::default();
    let want = Classifier::classify_streams(&streams, &ccfg);
    let got = Classifier::classify_streams(&reopened, &ccfg);
    for (pc, w) in want.iter() {
        if got.get(pc) != Some(w) {
            return Some(format!(
                "bps: branch {pc:#x}: classification from reopened streams differs"
            ));
        }
    }

    let cands = TagCandidates::collect(trace, cfg.window, cfg.candidate_cap);
    let matrix = OutcomeMatrix::build(trace, &cands, cfg.window);
    let path = dir.join("matrix.bps");
    if let Err(e) = bp_core::write_matrix(&path, &matrix, CONFIG) {
        return Some(format!("bps: cannot write matrix artifact: {e}"));
    }
    let reopened = match bp_core::open_matrix(&path, CONFIG) {
        Ok(o) => o.matrix,
        Err(e) => return Some(format!("bps: cannot reopen matrix artifact: {e}")),
    };
    if let Some(why) = diff_matrices("bps matrix", &reopened, &matrix) {
        return Some(why);
    }
    let want = OracleSelector::analyze_matrix(&matrix, cfg);
    let got = OracleSelector::analyze_matrix(&reopened, cfg);
    for (pc, w) in want.iter() {
        if got.selection(pc) != Some(w) {
            return Some(format!(
                "bps: branch {pc:#x}: subset search on reopened matrix differs"
            ));
        }
    }
    None
}

/// Runs every differential suite on one named trace; on the first
/// divergence, minimizes the trace against that suite and reports it.
pub fn run_case(
    name: &str,
    trace: &Trace,
    cfg: &DiffConfig,
    kernels: &Kernels,
) -> Option<Divergence> {
    if diff_oracle(trace, &cfg.oracle, kernels).is_some() {
        let oracle_cfg = cfg.oracle;
        let k = *kernels;
        let minimized = minimize(trace, |t| diff_oracle(t, &oracle_cfg, &k).is_some());
        let detail = diff_oracle(&minimized, &cfg.oracle, kernels)
            .expect("minimize preserves the divergence");
        return Some(Divergence {
            suite: "oracle",
            case_name: name.to_owned(),
            detail,
            trace: minimized,
        });
    }
    if diff_classify(trace, &cfg.classify, kernels).is_some() {
        let configs = cfg.classify.clone();
        let k = *kernels;
        let minimized = minimize(trace, |t| diff_classify(t, &configs, &k).is_some());
        let detail = diff_classify(&minimized, &cfg.classify, kernels)
            .expect("minimize preserves the divergence");
        return Some(Divergence {
            suite: "classify",
            case_name: name.to_owned(),
            detail,
            trace: minimized,
        });
    }
    if diff_sweep(trace, &cfg.windows, &cfg.caps, kernels).is_some() {
        let (windows, caps) = (cfg.windows.clone(), cfg.caps.clone());
        let k = *kernels;
        let minimized = minimize(trace, |t| diff_sweep(t, &windows, &caps, &k).is_some());
        let detail = diff_sweep(&minimized, &cfg.windows, &cfg.caps, kernels)
            .expect("minimize preserves the divergence");
        return Some(Divergence {
            suite: "sweep",
            case_name: name.to_owned(),
            detail,
            trace: minimized,
        });
    }
    if diff_simd(trace, &cfg.oracle).is_some() {
        let oracle_cfg = cfg.oracle;
        let minimized = minimize(trace, |t| diff_simd(t, &oracle_cfg).is_some());
        let detail = diff_simd(&minimized, &cfg.oracle).expect("minimize preserves the divergence");
        return Some(Divergence {
            suite: "simd",
            case_name: name.to_owned(),
            detail,
            trace: minimized,
        });
    }
    if diff_streaming(trace, &cfg.oracle, &cfg.windows, &cfg.caps).is_some() {
        let oracle_cfg = cfg.oracle;
        let (windows, caps) = (cfg.windows.clone(), cfg.caps.clone());
        let minimized = minimize(trace, |t| {
            diff_streaming(t, &oracle_cfg, &windows, &caps).is_some()
        });
        let detail = diff_streaming(&minimized, &cfg.oracle, &cfg.windows, &cfg.caps)
            .expect("minimize preserves the divergence");
        return Some(Divergence {
            suite: "streaming",
            case_name: name.to_owned(),
            detail,
            trace: minimized,
        });
    }
    if diff_parallel(trace, &cfg.oracle, &cfg.classify, &cfg.windows, &cfg.caps).is_some() {
        let oracle_cfg = cfg.oracle;
        let configs = cfg.classify.clone();
        let (windows, caps) = (cfg.windows.clone(), cfg.caps.clone());
        let minimized = minimize(trace, |t| {
            diff_parallel(t, &oracle_cfg, &configs, &windows, &caps).is_some()
        });
        let detail = diff_parallel(
            &minimized,
            &cfg.oracle,
            &cfg.classify,
            &cfg.windows,
            &cfg.caps,
        )
        .expect("minimize preserves the divergence");
        return Some(Divergence {
            suite: "parallel",
            case_name: name.to_owned(),
            detail,
            trace: minimized,
        });
    }
    if diff_bps(trace, &cfg.oracle).is_some() {
        let oracle_cfg = cfg.oracle;
        let minimized = minimize(trace, |t| diff_bps(t, &oracle_cfg).is_some());
        let detail = diff_bps(&minimized, &cfg.oracle).expect("minimize preserves the divergence");
        return Some(Divergence {
            suite: "bps",
            case_name: name.to_owned(),
            detail,
            trace: minimized,
        });
    }
    None
}

/// ddmin-style trace minimization: repeatedly removes record chunks at
/// doubling granularity while `still_fails` holds, returning a (locally)
/// 1-minimal failing trace.
pub fn minimize(trace: &Trace, still_fails: impl Fn(&Trace) -> bool) -> Trace {
    let mut recs = trace.records().to_vec();
    let mut n = 2usize;
    while recs.len() >= 2 && n <= recs.len() {
        let chunk = recs.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < recs.len() {
            let end = (start + chunk).min(recs.len());
            let mut candidate = Vec::with_capacity(recs.len() - (end - start));
            candidate.extend_from_slice(&recs[..start]);
            candidate.extend_from_slice(&recs[end..]);
            if !candidate.is_empty() && still_fails(&Trace::from_records(candidate.clone())) {
                recs = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk == 1 {
                break;
            }
            n = (n * 2).min(recs.len());
        }
    }
    Trace::from_records(recs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use bp_trace::BranchRecord;

    #[test]
    fn production_kernels_agree_on_small_corpus() {
        let cfg = DiffConfig::default();
        let kernels = Kernels::default();
        for case in gen::corpus(3, 16) {
            assert!(
                run_case(&case.name, &case.trace, &cfg, &kernels).is_none(),
                "unexpected divergence on {}",
                case.name
            );
        }
    }

    #[test]
    fn simd_and_streaming_suites_pass_on_long_traces() {
        // The canned corpus traces are short; the SIMD dispatcher only
        // engages its vector blocks past 8 words (512 executions), so
        // build correlated branches long enough to exercise them.
        let mut recs = Vec::new();
        let mut hist = [false; 3];
        let mut lcg = 0x2545_F491_4F6C_DD1D_u64;
        for i in 0..700u64 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (lcg >> 61) & 1 == 1;
            let b = hist[0] ^ (i % 5 == 0);
            let c = hist[1] & hist[2] || (lcg >> 17) & 1 == 1;
            hist = [a, b, c];
            recs.push(BranchRecord::conditional(0x40, a));
            recs.push(BranchRecord::conditional(0x80, b));
            recs.push(BranchRecord::conditional(0xC0, c));
        }
        let trace = Trace::from_records(recs);
        let cfg = DiffConfig::default();
        assert_eq!(diff_simd(&trace, &cfg.oracle), None);
        assert_eq!(
            diff_streaming(&trace, &cfg.oracle, &cfg.windows, &cfg.caps),
            None
        );
    }

    #[test]
    fn parallel_and_bps_suites_pass_on_a_long_trace() {
        // Long enough that the sharded executor crosses several chunk
        // boundaries and every branch spans multiple plane words.
        let mut recs = Vec::new();
        let mut lcg = 0x9E37_79B9_7F4A_7C15_u64;
        for i in 0..900u64 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            recs.push(BranchRecord::conditional(
                0x40 + (i % 11) * 4,
                (lcg >> 60) & 1 == 1,
            ));
            recs.push(BranchRecord::conditional(0x100, i % 7 < 3));
        }
        let trace = Trace::from_records(recs);
        let cfg = DiffConfig::default();
        assert_eq!(
            diff_parallel(&trace, &cfg.oracle, &cfg.classify, &cfg.windows, &cfg.caps),
            None
        );
        assert_eq!(diff_bps(&trace, &cfg.oracle), None);
    }

    #[test]
    fn minimize_shrinks_to_the_failing_record() {
        // Predicate: trace contains a not-taken record at 0x200.
        let recs: Vec<BranchRecord> = (0..200)
            .map(|i| BranchRecord::conditional(0x100 + (i % 7) * 4, i % 3 == 0))
            .chain(std::iter::once(BranchRecord::conditional(0x200, false)))
            .chain((0..100).map(|i| BranchRecord::conditional(0x300, i % 2 == 0)))
            .collect();
        let trace = Trace::from_records(recs);
        let fails = |t: &Trace| t.conditionals().any(|r| r.pc == 0x200 && !r.taken);
        let minimized = minimize(&trace, fails);
        assert_eq!(minimized.records().len(), 1);
        assert!(fails(&minimized));
    }
}

//! Conformance verification for the correlation-and-predictability
//! workspace: adversarial trace generation, differential kernel checking,
//! metamorphic predictor laws, and golden-snapshot verification.
//!
//! The optimized bit-parallel kernels in [`bp_core`] (oracle scorers,
//! classifier, incremental sweeps) carry executable specifications in
//! `bp_core::reference`; the predictors in [`bp_predictors`] obey
//! algebraic laws relating them to each other. This crate turns those
//! relations into a runnable subsystem:
//!
//! * [`gen`] — adversarial corpora composed from the shared
//!   [`bp_trace::script`] DSL (re-exported here): loop nests, fixed and
//!   block patterns, word-boundary polarity flips, ring-capacity-length
//!   histories, and aliasing-heavy PC maps.
//! * [`diff`] — differential runners replaying each corpus trace through
//!   every optimized kernel and its specification, reporting first
//!   divergence with a ddmin-minimized reproducer trace.
//! * [`laws`] — metamorphic laws over the predictor family.
//!
//! Golden snapshots of rendered experiment output live in
//! [`bp_experiments::goldens`]; the `bp-conformance` CLI's `sweep`
//! subcommand runs all of the above plus the golden check, and its
//! `selftest` proves the harness catches deliberately injected kernel
//! bugs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod gen;
pub mod laws;

pub use diff::{
    diff_bps, diff_parallel, diff_simd, diff_streaming, minimize, run_case, DiffConfig, Divergence,
    Kernels, PARALLEL_JOBS, PARALLEL_SHARDS, STREAM_CHUNK_SIZES,
};
pub use gen::{corpus, BranchScript, Interleave, NamedTrace, Segment, TraceSpec};
pub use laws::{all_laws, Law};

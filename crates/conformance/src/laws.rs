//! Metamorphic laws over the `bp_predictors` family.
//!
//! Each law states a relation that must hold between two predictor runs
//! on transformed inputs — no reference implementation needed, the
//! predictors check each other:
//!
//! 1. **Degenerate gshare** — gshare with 0 history bits is exactly a
//!    bimodal PHT ([`bp_predictors::Smith`]), branch for branch.
//! 2. **PAs index invariance** — PAs accuracy is invariant under PC
//!    permutations that preserve its index bits (aliasing classes), and
//!    interference-free PAs under *any* injective PC permutation.
//! 3. **Interference-free dominance** — an interference-free variant can
//!    trail its interfering twin only by cold-counter warmup, bounded by
//!    a computable per-key slack.
//! 4. **k-ago self-consistency** — per-branch, the `k·j`-ago predictor
//!    on a `k`-stretched trace scores exactly `k` times the `j`-ago
//!    predictor on the original.
//! 5. **Degenerate TAGE** — TAGE with zero tagged tables is exactly its
//!    bimodal base ([`bp_predictors::Smith`]), branch for branch.
//! 6. **Degenerate perceptron** — a perceptron with zero history bits is
//!    exactly a per-PC saturating bias counter with threshold-gated
//!    training, branch for branch.

use bp_predictors::{
    simulate, simulate_per_branch, BranchSite, Gshare, GshareInterferenceFree, KthAgo, Pas,
    PasInterferenceFree, Perceptron, Predictor, SaturatingCounter, ShiftHistory, Smith, Tage,
};
use bp_trace::{BranchRecord, Pc, Trace};

/// Law 1: `Gshare::with_geometry(0, b)` ≡ `Smith::new(b)` exactly — with
/// no history the XOR index degenerates to the PC index, so the two
/// predictors must agree prediction for prediction.
pub fn law_gshare_zero_history_is_bimodal(trace: &Trace) -> Option<String> {
    for bits in [2u32, 6, 10] {
        let mut gshare = Gshare::with_geometry(0, bits, SaturatingCounter::two_bit());
        let mut smith = Smith::new(bits);
        let g = simulate_per_branch(&mut gshare, trace);
        let s = simulate_per_branch(&mut smith, trace);
        for (pc, want) in s.iter() {
            if g.get(pc) != Some(want) {
                return Some(format!(
                    "gshare(0 history, {bits} table bits) != smith({bits}) at branch {pc:#x}: \
                     {:?} vs {want:?}",
                    g.get(pc)
                ));
            }
        }
    }
    None
}

/// Remaps `pc` preserving its low `keep_bits` bits while permuting the
/// high bits injectively (XOR then carry-free add on the small PCs the
/// corpus uses).
fn permute_high_bits(pc: Pc, keep_bits: u32) -> Pc {
    let low = pc & ((1u64 << keep_bits) - 1);
    let high = pc >> keep_bits;
    let permuted = (high ^ 0xA5) + 0x40;
    (permuted << keep_bits) | low
}

/// Applies a PC remap to every record of a trace.
fn remap_pcs(trace: &Trace, f: impl Fn(Pc) -> Pc) -> Trace {
    Trace::from_records(
        trace
            .records()
            .iter()
            .map(|rec| {
                let mut rec = *rec;
                rec.pc = f(rec.pc);
                rec
            })
            .collect(),
    )
}

/// Law 2: PAs total accuracy is invariant under PC permutations that
/// preserve every index bit it looks at (BHT and table-select), and
/// interference-free PAs under any injective permutation.
pub fn law_pas_pc_permutation_invariance(trace: &Trace) -> Option<String> {
    let (history_bits, bht_bits, table_select_bits) = (6u32, 4u32, 2u32);
    // PAs indexes with (pc >> 2) & mask(bht_bits / table_select_bits):
    // preserving the low 2 + max(...) PC bits preserves both indices,
    // hence every aliasing class.
    let keep = 2 + bht_bits.max(table_select_bits);
    let remapped = remap_pcs(trace, |pc| permute_high_bits(pc, keep));
    let base = simulate(
        &mut Pas::new(history_bits, bht_bits, table_select_bits),
        trace,
    );
    let perm = simulate(
        &mut Pas::new(history_bits, bht_bits, table_select_bits),
        &remapped,
    );
    if base != perm {
        return Some(format!(
            "pas({history_bits},{bht_bits},{table_select_bits}) not invariant under \
             index-preserving PC permutation: {base:?} vs {perm:?}"
        ));
    }
    // The interference-free variant keys on the exact PC, so any
    // injective remap (here: a bijective odd multiply) is invisible.
    let remapped = remap_pcs(trace, |pc| pc.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let base = simulate(&mut PasInterferenceFree::new(history_bits), trace);
    let perm = simulate(&mut PasInterferenceFree::new(history_bits), &remapped);
    if base != perm {
        return Some(format!(
            "if-pas({history_bits}) not invariant under injective PC permutation: \
             {base:?} vs {perm:?}"
        ));
    }
    None
}

/// Counts the distinct (pc, history-pattern) counter keys a global-history
/// predictor of `history_bits` touches on `trace` — the number of cold
/// counters the interference-free variant must warm up.
fn distinct_global_keys(trace: &Trace, history_bits: u32) -> u64 {
    let mut history = ShiftHistory::new(history_bits);
    let mut keys = std::collections::HashSet::new();
    for rec in trace.conditionals() {
        keys.insert((rec.pc, history.value()));
        history.push(rec.taken);
    }
    keys.len() as u64
}

/// As [`distinct_global_keys`] for per-address history (PAs-shaped keys).
fn distinct_per_address_keys(trace: &Trace, history_bits: u32) -> u64 {
    let mask = (1u64 << history_bits) - 1;
    let mut histories: std::collections::HashMap<Pc, u64> = std::collections::HashMap::new();
    let mut keys = std::collections::HashSet::new();
    for rec in trace.conditionals() {
        let hist = histories.entry(rec.pc).or_insert(0);
        keys.insert((rec.pc, *hist));
        *hist = ((*hist << 1) | u64::from(rec.taken)) & mask;
    }
    keys.len() as u64
}

/// Law 3: an interference-free predictor can lose to its interfering twin
/// only through warmup — a shared counter arrives pre-trained by aliasing
/// branches, a per-key counter starts cold. Each distinct key costs at
/// most 3 predictions of training (2-bit counter from weakly-taken), so:
/// `if_correct + 3 * distinct_keys >= shared_correct`.
pub fn law_interference_free_dominates(trace: &Trace) -> Option<String> {
    let h = 6u32;
    let shared = simulate(&mut Gshare::new(h), trace);
    let ideal = simulate(&mut GshareInterferenceFree::new(h), trace);
    let slack = 3 * distinct_global_keys(trace, h);
    if ideal.correct + slack < shared.correct {
        return Some(format!(
            "if-gshare({h}) {} + warmup slack {slack} < gshare({h}) {}",
            ideal.correct, shared.correct
        ));
    }
    let shared = simulate(&mut Pas::new(h, 4, 1), trace);
    let ideal = simulate(&mut PasInterferenceFree::new(h), trace);
    let slack = 3 * distinct_per_address_keys(trace, h);
    if ideal.correct + slack < shared.correct {
        return Some(format!(
            "if-pas({h}) {} + warmup slack {slack} < pas({h},4,1) {}",
            ideal.correct, shared.correct
        ));
    }
    None
}

/// Stretches a trace by `k`: every record is repeated `k` times in place,
/// so each branch's outcome sequence is element-wise `k`-stretched.
fn stretch(trace: &Trace, k: usize) -> Trace {
    let mut recs: Vec<BranchRecord> = Vec::with_capacity(trace.records().len() * k);
    for rec in trace.records() {
        recs.extend(std::iter::repeat_n(*rec, k));
    }
    Trace::from_records(recs)
}

/// Law 4: per branch, `correct(KthAgo(k*j), stretch_k(T)) ==
/// k * correct(KthAgo(j), T)` — replaying an outcome from `k*j`
/// executions ago on a `k`-stretched stream is the same comparison as
/// `j`-ago on the original, each original execution counted `k` times
/// (including the predict-taken warmup, which stretches identically).
pub fn law_kth_ago_stretch_consistency(trace: &Trace) -> Option<String> {
    for (k, j) in [(2u32, 1u32), (3, 1), (2, 2), (5, 1), (4, 3)] {
        let stretched = stretch(trace, k as usize);
        let got = simulate_per_branch(&mut KthAgo::new(k * j), &stretched);
        let want = simulate_per_branch(&mut KthAgo::new(j), trace);
        for (pc, w) in want.iter() {
            let g = got.get(pc).copied().unwrap_or_default();
            if g.correct != u64::from(k) * w.correct
                || g.predictions != u64::from(k) * w.predictions
            {
                return Some(format!(
                    "k-ago stretch law (k={k}, j={j}) at branch {pc:#x}: \
                     stretched {g:?} != {k} x original {w:?}"
                ));
            }
        }
    }
    None
}

/// Law 5: `Tage::new(0, b)` ≡ `Smith::new(b)` exactly — with no tagged
/// tables there is never a provider, every prediction and update falls
/// through to the bimodal base, and the base indexes `pc >> 2` just like
/// the Smith table.
pub fn law_tage_zero_tables_is_bimodal(trace: &Trace) -> Option<String> {
    for bits in [4u32, 8] {
        let mut tage = Tage::new(0, bits);
        let mut smith = Smith::new(bits);
        let t = simulate_per_branch(&mut tage, trace);
        let s = simulate_per_branch(&mut smith, trace);
        for (pc, want) in s.iter() {
            if t.get(pc) != Some(want) {
                return Some(format!(
                    "tage(0 tables, {bits} base bits) != smith({bits}) at branch {pc:#x}: \
                     {:?} vs {want:?}",
                    t.get(pc)
                ));
            }
        }
    }
    None
}

/// Reference model for law 6: a per-PC signed bias counter saturating at
/// the perceptron's 8-bit weight range, predicting `bias >= 0`, trained
/// only on mispredictions or while `|bias|` is within the `h = 0`
/// threshold (14) — the degenerate perceptron spelled out directly.
struct BiasCounter {
    biases: std::collections::HashMap<Pc, i32>,
}

impl Predictor for BiasCounter {
    fn name(&self) -> String {
        "bias-counter".to_owned()
    }

    fn predict(&self, site: BranchSite) -> bool {
        self.biases.get(&site.pc).copied().unwrap_or(0) >= 0
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let bias = self.biases.entry(site.pc).or_insert(0);
        let pred = *bias >= 0;
        if pred != taken || bias.abs() <= 14 {
            *bias = (*bias + if taken { 1 } else { -1 }).clamp(-128, 127);
        }
    }
}

/// Law 6: `Perceptron::new(0)` ≡ a per-PC threshold-gated bias counter,
/// branch for branch — with no history bits the dot product collapses to
/// the bias weight alone.
pub fn law_perceptron_zero_history_is_bias_counter(trace: &Trace) -> Option<String> {
    let mut perceptron = Perceptron::new(0);
    let mut reference = BiasCounter {
        biases: std::collections::HashMap::new(),
    };
    let p = simulate_per_branch(&mut perceptron, trace);
    let r = simulate_per_branch(&mut reference, trace);
    for (pc, want) in r.iter() {
        if p.get(pc) != Some(want) {
            return Some(format!(
                "perceptron(0) != per-PC bias counter at branch {pc:#x}: {:?} vs {want:?}",
                p.get(pc)
            ));
        }
    }
    None
}

/// One metamorphic law: a name and a checker returning the first
/// violation found.
pub struct Law {
    /// Short law name for reports.
    pub name: &'static str,
    /// Checker; `Some(detail)` on violation.
    pub check: fn(&Trace) -> Option<String>,
}

/// Every law in the suite.
pub fn all_laws() -> Vec<Law> {
    vec![
        Law {
            name: "gshare-zero-history-is-bimodal",
            check: law_gshare_zero_history_is_bimodal,
        },
        Law {
            name: "pas-pc-permutation-invariance",
            check: law_pas_pc_permutation_invariance,
        },
        Law {
            name: "interference-free-dominates",
            check: law_interference_free_dominates,
        },
        Law {
            name: "kth-ago-stretch-consistency",
            check: law_kth_ago_stretch_consistency,
        },
        Law {
            name: "tage-zero-tables-is-bimodal",
            check: law_tage_zero_tables_is_bimodal,
        },
        Law {
            name: "perceptron-zero-history-is-bias-counter",
            check: law_perceptron_zero_history_is_bias_counter,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn all_laws_hold_on_small_corpus() {
        for case in gen::corpus(5, 20) {
            for law in all_laws() {
                assert_eq!(
                    (law.check)(&case.trace),
                    None,
                    "law {} violated on {}",
                    law.name,
                    case.name
                );
            }
        }
    }

    #[test]
    fn permute_high_bits_is_injective_and_preserves_low_bits() {
        let mut seen = std::collections::HashSet::new();
        for pc in 0..4096u64 {
            let p = permute_high_bits(pc, 6);
            assert_eq!(p & 63, pc & 63);
            assert!(seen.insert(p), "collision at {pc:#x}");
        }
    }

    #[test]
    fn stretch_repeats_each_outcome() {
        let trace = Trace::from_records(vec![
            BranchRecord::conditional(0x10, true),
            BranchRecord::conditional(0x10, false),
        ]);
        let s = stretch(&trace, 3);
        let outcomes: Vec<bool> = s.conditionals().map(|r| r.taken).collect();
        assert_eq!(outcomes, vec![true, true, true, false, false, false]);
    }
}

//! Adversarial trace corpus built on the shared [`bp_trace::script`] DSL.
//!
//! The trace DSL itself — [`Segment`] outcome scripts, [`Interleave`]
//! policies, [`TraceSpec`] — started life here and now lives in
//! [`bp_trace::script`] as a first-class workload source (bp-probe's
//! measurement programs are composed from the same primitives). This
//! module re-exports it and keeps what is conformance-specific: the
//! canned set of known-nasty cases and the seeded generator that mixes
//! them with random compositions drawn from adversarial parameter
//! ranges. Every canned case is byte-identical to its pre-relocation
//! expansion (pinned by `tests/dsl_relocation.rs`).

pub use bp_trace::script::{BranchScript, Interleave, Segment, TraceSpec};

use bp_trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated trace with a human-readable case name.
#[derive(Debug, Clone)]
pub struct NamedTrace {
    /// Case label, stable for a given seed.
    pub name: String,
    /// The trace.
    pub trace: Trace,
}

/// Alternating pattern of length `period` whose final bit is forced
/// not-taken, so the period is genuinely `period` (never a divisor).
fn ring_pattern(period: usize) -> Vec<bool> {
    let mut bits: Vec<bool> = (0..period).map(|i| i % 2 == 0).collect();
    if let Some(last) = bits.last_mut() {
        *last = false;
    }
    bits
}

/// The deterministic known-nasty cases every corpus starts with.
fn canned_cases() -> Vec<NamedTrace> {
    let mut cases = Vec::new();
    let single = |name: &str, segments: Vec<Segment>| NamedTrace {
        name: name.to_owned(),
        trace: TraceSpec {
            branches: vec![BranchScript::new(0x400, segments)],
            interleave: Interleave::RoundRobin,
        }
        .build(),
    };

    // Long same-direction runs crossing several 64-bit words.
    cases.push(single(
        "run-crossing-words",
        vec![
            Segment::Run {
                taken: true,
                len: 200,
            },
            Segment::Run {
                taken: false,
                len: 200,
            },
        ],
    ));
    // Loop trip counts straddling the 255 run-length cap.
    for trip in [254usize, 255, 256] {
        cases.push(single(
            &format!("trip-cap-{trip}"),
            vec![Segment::Loop { trip, exits: 3 }],
        ));
    }
    // Pattern periods straddling the 64-outcome ring capacity.
    for period in [63usize, 64, 65] {
        cases.push(single(
            &format!("ring-capacity-{period}"),
            vec![Segment::Pattern {
                bits: ring_pattern(period),
                repeats: 6,
            }],
        ));
    }
    // Polarity flips pinned to word boundaries.
    cases.push(single(
        "word-boundary-flip",
        vec![Segment::WordFlip {
            bits: vec![true, true, false],
            repeats: 80,
        }],
    ));
    // Tiny traces exactly at the word-size edge.
    for len in [1usize, 64, 65] {
        cases.push(single(
            &format!("tiny-{len}"),
            vec![Segment::Pattern {
                bits: ring_pattern(len),
                repeats: 1,
            }],
        ));
    }
    // Aliasing-heavy PC map: eight branches sharing their low address
    // bits (they collide in any table indexed by fewer than 9 PC bits),
    // with conflicting periodic behaviors, in shuffled order.
    let aliased: Vec<BranchScript> = (0..8u64)
        .map(|i| {
            BranchScript::new(
                0x8000 + (i << 11),
                vec![Segment::Pattern {
                    bits: ring_pattern(2 + i as usize),
                    repeats: 40,
                }],
            )
        })
        .collect();
    cases.push(NamedTrace {
        name: "aliasing-low-bits".to_owned(),
        trace: TraceSpec {
            branches: aliased,
            interleave: Interleave::Shuffled(0xA11A5),
        }
        .build(),
    });
    // A perfectly correlated pair: the second branch copies the first.
    let pattern = ring_pattern(5);
    cases.push(NamedTrace {
        name: "correlated-copy".to_owned(),
        trace: TraceSpec {
            branches: vec![
                BranchScript::new(
                    0x100,
                    vec![Segment::Pattern {
                        bits: pattern.clone(),
                        repeats: 60,
                    }],
                ),
                BranchScript::new(
                    0x200,
                    vec![Segment::Pattern {
                        bits: pattern,
                        repeats: 60,
                    }],
                ),
            ],
            interleave: Interleave::RoundRobin,
        }
        .build(),
    });
    cases
}

/// One random segment with parameters drawn from adversarial ranges
/// (lengths clustered at the 64-word and 255-cap boundaries).
pub(crate) fn random_segment(rng: &mut StdRng) -> Segment {
    match rng.gen_range(0u32..4) {
        0 => Segment::Run {
            taken: rng.gen_bool(0.5),
            len: if rng.gen_bool(0.5) {
                rng.gen_range(60usize..70)
            } else {
                rng.gen_range(250usize..260)
            },
        },
        1 => {
            let period = if rng.gen_bool(0.5) {
                rng.gen_range(1usize..9)
            } else {
                rng.gen_range(62usize..67)
            };
            Segment::Pattern {
                bits: (0..period).map(|_| rng.gen_bool(0.5)).collect(),
                repeats: rng.gen_range(1usize..5),
            }
        }
        2 => Segment::Loop {
            trip: if rng.gen_bool(0.5) {
                rng.gen_range(1usize..7)
            } else {
                rng.gen_range(253usize..258)
            },
            exits: rng.gen_range(1usize..4),
        },
        _ => {
            let period = rng.gen_range(1usize..8);
            Segment::WordFlip {
                bits: (0..period).map(|_| rng.gen_bool(0.5)).collect(),
                repeats: 140 / period,
            }
        }
    }
}

/// One random composition: a few branches (PC strides from dense to
/// aliasing-heavy), each a chain of random segments, randomly
/// interleaved.
pub(crate) fn random_spec(rng: &mut StdRng) -> TraceSpec {
    const STRIDES: [u64; 3] = [4, 0x100, 0x10000];
    let stride = STRIDES[rng.gen_range(0usize..STRIDES.len())];
    let n_branches = rng.gen_range(1usize..6);
    let branches = (0..n_branches as u64)
        .map(|b| {
            let mut script = BranchScript::new(0x1000 + b * stride, Vec::new());
            if rng.gen_bool(0.3) {
                script.target = Some(0x800);
            }
            let n_segments = rng.gen_range(1usize..5);
            for _ in 0..n_segments {
                script.segments.push(random_segment(rng));
            }
            script
        })
        .collect();
    let interleave = match rng.gen_range(0u32..3) {
        0 => Interleave::RoundRobin,
        1 => Interleave::Blocks(rng.gen_range(1usize..80)),
        _ => Interleave::Shuffled(rng.gen::<u64>()),
    };
    TraceSpec {
        branches,
        interleave,
    }
}

fn random_case(rng: &mut StdRng, idx: usize) -> NamedTrace {
    NamedTrace {
        name: format!("random-{idx}"),
        trace: random_spec(rng).build(),
    }
}

/// A seeded stream of random [`TraceSpec`]s from the adversarial
/// parameter ranges — the raw material of the corpus, exposed so the
/// relocation tests can compare both emission paths on exactly the
/// specs the corpus draws from.
pub fn random_specs(seed: u64, count: usize) -> Vec<TraceSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| random_spec(&mut rng)).collect()
}

/// The adversarial corpus: every canned case, then random compositions
/// up to `cases` total (seeded, fully deterministic). The canned cases
/// are always included, so fewer than their count still yields them all.
pub fn corpus(seed: u64, cases: usize) -> Vec<NamedTrace> {
    let mut out = canned_cases();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx = 0;
    while out.len() < cases {
        out.push(random_case(&mut rng, idx));
        idx += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_named() {
        let a = corpus(9, 24);
        let b = corpus(9, 24);
        assert_eq!(a.len(), 24);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.trace.records(), y.trace.records());
        }
        let c = corpus(10, 24);
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.trace.records() != y.trace.records()),
            "different seeds should differ"
        );
    }

    #[test]
    fn canned_cases_are_thirteen_and_stable() {
        let canned = corpus(0, 0);
        assert_eq!(canned.len(), 13);
        let names: Vec<&str> = canned.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "run-crossing-words",
                "trip-cap-254",
                "trip-cap-255",
                "trip-cap-256",
                "ring-capacity-63",
                "ring-capacity-64",
                "ring-capacity-65",
                "word-boundary-flip",
                "tiny-1",
                "tiny-64",
                "tiny-65",
                "aliasing-low-bits",
                "correlated-copy",
            ]
        );
    }
}

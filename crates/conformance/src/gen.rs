//! Adversarial trace-generator DSL.
//!
//! Random traces rarely hit the inputs that break bit-parallel kernels:
//! runs crossing the 255 trip-count cap, patterns whose period straddles
//! the 64-bit word size, histories exactly at ring capacity, PC maps
//! where everything aliases. This module is a small composable DSL for
//! writing exactly those traces — per-branch outcome scripts built from
//! [`Segment`]s, interleaved into one trace by an [`Interleave`] policy —
//! plus a seeded generator that mixes a canned set of known-nasty cases
//! with random compositions drawn from adversarial parameter ranges.

use bp_trace::{BranchRecord, Pc, Trace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One phase of a branch's outcome script.
#[derive(Debug, Clone)]
pub enum Segment {
    /// `len` consecutive outcomes in the same direction — trip-cap and
    /// popcount-word stress when `len` nears 255 or a multiple of 64.
    Run {
        /// Direction of every outcome in the run.
        taken: bool,
        /// Run length.
        len: usize,
    },
    /// A fixed pattern repeated verbatim; periods near 63..=65 probe the
    /// ring-capacity boundary of the k-ago sweep.
    Pattern {
        /// One period of outcomes.
        bits: Vec<bool>,
        /// Number of times the period is emitted.
        repeats: usize,
    },
    /// A counted loop: `trip` taken outcomes then one not-taken exit,
    /// repeated `exits` times — `trip` near 255 crosses the run-length
    /// class-replay cap.
    Loop {
        /// Taken iterations before each exit.
        trip: usize,
        /// Number of complete loop executions.
        exits: usize,
    },
    /// A pattern whose polarity inverts whenever the branch's cumulative
    /// outcome index crosses a 64-outcome word boundary — the exact seam
    /// word-parallel kernels split work at.
    WordFlip {
        /// One period of outcomes (pre-inversion).
        bits: Vec<bool>,
        /// Number of times the period is emitted.
        repeats: usize,
    },
}

impl Segment {
    /// Appends this segment's outcomes to `out` (`out.len()` is the
    /// branch's cumulative outcome index, which [`Segment::WordFlip`]
    /// keys its polarity on).
    fn expand(&self, out: &mut Vec<bool>) {
        match self {
            Segment::Run { taken, len } => out.extend(std::iter::repeat_n(*taken, *len)),
            Segment::Pattern { bits, repeats } => {
                for _ in 0..*repeats {
                    out.extend_from_slice(bits);
                }
            }
            Segment::Loop { trip, exits } => {
                for _ in 0..*exits {
                    out.extend(std::iter::repeat_n(true, *trip));
                    out.push(false);
                }
            }
            Segment::WordFlip { bits, repeats } => {
                for _ in 0..*repeats {
                    for &b in bits {
                        let flip = (out.len() / 64) % 2 == 1;
                        out.push(b ^ flip);
                    }
                }
            }
        }
    }
}

/// One static branch: an address, an optional backward target, and its
/// outcome script.
#[derive(Debug, Clone)]
pub struct BranchScript {
    /// The branch's address.
    pub pc: Pc,
    /// Taken-target; `Some(t)` with `t <= pc` makes the branch backward.
    pub target: Option<Pc>,
    /// Outcome script, expanded in order.
    pub segments: Vec<Segment>,
}

impl BranchScript {
    /// A forward branch at `pc` with the given script.
    pub fn new(pc: Pc, segments: Vec<Segment>) -> Self {
        BranchScript {
            pc,
            target: None,
            segments,
        }
    }

    /// The branch's full outcome sequence.
    pub fn outcomes(&self) -> Vec<bool> {
        let mut out = Vec::new();
        for seg in &self.segments {
            seg.expand(&mut out);
        }
        out
    }
}

/// How per-branch outcome scripts are merged into one dynamic trace.
#[derive(Debug, Clone, Copy)]
pub enum Interleave {
    /// One outcome from each live branch per round, in script order.
    RoundRobin,
    /// `n` consecutive outcomes from each live branch per round.
    Blocks(usize),
    /// Globally shuffled execution order (seeded, deterministic); every
    /// branch still sees its own outcomes in script order.
    Shuffled(u64),
}

/// A complete trace specification.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// The static branches.
    pub branches: Vec<BranchScript>,
    /// Merge policy.
    pub interleave: Interleave,
}

impl TraceSpec {
    /// Builds the dynamic trace.
    pub fn build(&self) -> Trace {
        let outcomes: Vec<Vec<bool>> = self.branches.iter().map(BranchScript::outcomes).collect();
        let order: Vec<usize> = match self.interleave {
            Interleave::RoundRobin => interleave_blocks(&outcomes, 1),
            Interleave::Blocks(n) => interleave_blocks(&outcomes, n.max(1)),
            Interleave::Shuffled(seed) => {
                let mut order: Vec<usize> = outcomes
                    .iter()
                    .enumerate()
                    .flat_map(|(b, o)| std::iter::repeat_n(b, o.len()))
                    .collect();
                order.shuffle(&mut StdRng::seed_from_u64(seed));
                order
            }
        };
        let mut next = vec![0usize; outcomes.len()];
        let mut recs = Vec::with_capacity(order.len());
        for b in order {
            let script = &self.branches[b];
            let taken = outcomes[b][next[b]];
            next[b] += 1;
            let rec = BranchRecord::conditional(script.pc, taken);
            recs.push(match script.target {
                Some(t) => rec.with_target(t),
                None => rec,
            });
        }
        Trace::from_records(recs)
    }
}

/// Emission order for block interleaving: `n` outcomes per live branch
/// per round until all scripts are drained.
fn interleave_blocks(outcomes: &[Vec<bool>], n: usize) -> Vec<usize> {
    let total: usize = outcomes.iter().map(Vec::len).sum();
    let mut emitted = vec![0usize; outcomes.len()];
    let mut order = Vec::with_capacity(total);
    while order.len() < total {
        for (b, o) in outcomes.iter().enumerate() {
            let take = n.min(o.len() - emitted[b]);
            order.extend(std::iter::repeat_n(b, take));
            emitted[b] += take;
        }
    }
    order
}

/// A generated trace with a human-readable case name.
#[derive(Debug, Clone)]
pub struct NamedTrace {
    /// Case label, stable for a given seed.
    pub name: String,
    /// The trace.
    pub trace: Trace,
}

/// Alternating pattern of length `period` whose final bit is forced
/// not-taken, so the period is genuinely `period` (never a divisor).
fn ring_pattern(period: usize) -> Vec<bool> {
    let mut bits: Vec<bool> = (0..period).map(|i| i % 2 == 0).collect();
    if let Some(last) = bits.last_mut() {
        *last = false;
    }
    bits
}

/// The deterministic known-nasty cases every corpus starts with.
fn canned_cases() -> Vec<NamedTrace> {
    let mut cases = Vec::new();
    let single = |name: &str, segments: Vec<Segment>| NamedTrace {
        name: name.to_owned(),
        trace: TraceSpec {
            branches: vec![BranchScript::new(0x400, segments)],
            interleave: Interleave::RoundRobin,
        }
        .build(),
    };

    // Long same-direction runs crossing several 64-bit words.
    cases.push(single(
        "run-crossing-words",
        vec![
            Segment::Run {
                taken: true,
                len: 200,
            },
            Segment::Run {
                taken: false,
                len: 200,
            },
        ],
    ));
    // Loop trip counts straddling the 255 run-length cap.
    for trip in [254usize, 255, 256] {
        cases.push(single(
            &format!("trip-cap-{trip}"),
            vec![Segment::Loop { trip, exits: 3 }],
        ));
    }
    // Pattern periods straddling the 64-outcome ring capacity.
    for period in [63usize, 64, 65] {
        cases.push(single(
            &format!("ring-capacity-{period}"),
            vec![Segment::Pattern {
                bits: ring_pattern(period),
                repeats: 6,
            }],
        ));
    }
    // Polarity flips pinned to word boundaries.
    cases.push(single(
        "word-boundary-flip",
        vec![Segment::WordFlip {
            bits: vec![true, true, false],
            repeats: 80,
        }],
    ));
    // Tiny traces exactly at the word-size edge.
    for len in [1usize, 64, 65] {
        cases.push(single(
            &format!("tiny-{len}"),
            vec![Segment::Pattern {
                bits: ring_pattern(len),
                repeats: 1,
            }],
        ));
    }
    // Aliasing-heavy PC map: eight branches sharing their low address
    // bits (they collide in any table indexed by fewer than 9 PC bits),
    // with conflicting periodic behaviors, in shuffled order.
    let aliased: Vec<BranchScript> = (0..8u64)
        .map(|i| {
            BranchScript::new(
                0x8000 + (i << 11),
                vec![Segment::Pattern {
                    bits: ring_pattern(2 + i as usize),
                    repeats: 40,
                }],
            )
        })
        .collect();
    cases.push(NamedTrace {
        name: "aliasing-low-bits".to_owned(),
        trace: TraceSpec {
            branches: aliased,
            interleave: Interleave::Shuffled(0xA11A5),
        }
        .build(),
    });
    // A perfectly correlated pair: the second branch copies the first.
    let pattern = ring_pattern(5);
    cases.push(NamedTrace {
        name: "correlated-copy".to_owned(),
        trace: TraceSpec {
            branches: vec![
                BranchScript::new(
                    0x100,
                    vec![Segment::Pattern {
                        bits: pattern.clone(),
                        repeats: 60,
                    }],
                ),
                BranchScript::new(
                    0x200,
                    vec![Segment::Pattern {
                        bits: pattern,
                        repeats: 60,
                    }],
                ),
            ],
            interleave: Interleave::RoundRobin,
        }
        .build(),
    });
    cases
}

/// One random segment with parameters drawn from adversarial ranges
/// (lengths clustered at the 64-word and 255-cap boundaries).
fn random_segment(rng: &mut StdRng) -> Segment {
    match rng.gen_range(0u32..4) {
        0 => Segment::Run {
            taken: rng.gen_bool(0.5),
            len: if rng.gen_bool(0.5) {
                rng.gen_range(60usize..70)
            } else {
                rng.gen_range(250usize..260)
            },
        },
        1 => {
            let period = if rng.gen_bool(0.5) {
                rng.gen_range(1usize..9)
            } else {
                rng.gen_range(62usize..67)
            };
            Segment::Pattern {
                bits: (0..period).map(|_| rng.gen_bool(0.5)).collect(),
                repeats: rng.gen_range(1usize..5),
            }
        }
        2 => Segment::Loop {
            trip: if rng.gen_bool(0.5) {
                rng.gen_range(1usize..7)
            } else {
                rng.gen_range(253usize..258)
            },
            exits: rng.gen_range(1usize..4),
        },
        _ => {
            let period = rng.gen_range(1usize..8);
            Segment::WordFlip {
                bits: (0..period).map(|_| rng.gen_bool(0.5)).collect(),
                repeats: 140 / period,
            }
        }
    }
}

/// One random composition: a few branches (PC strides from dense to
/// aliasing-heavy), each a chain of random segments, randomly
/// interleaved.
fn random_case(rng: &mut StdRng, idx: usize) -> NamedTrace {
    const STRIDES: [u64; 3] = [4, 0x100, 0x10000];
    let stride = STRIDES[rng.gen_range(0usize..STRIDES.len())];
    let n_branches = rng.gen_range(1usize..6);
    let branches = (0..n_branches as u64)
        .map(|b| {
            let mut script = BranchScript::new(0x1000 + b * stride, Vec::new());
            if rng.gen_bool(0.3) {
                script.target = Some(0x800);
            }
            let n_segments = rng.gen_range(1usize..5);
            for _ in 0..n_segments {
                script.segments.push(random_segment(rng));
            }
            script
        })
        .collect();
    let interleave = match rng.gen_range(0u32..3) {
        0 => Interleave::RoundRobin,
        1 => Interleave::Blocks(rng.gen_range(1usize..80)),
        _ => Interleave::Shuffled(rng.gen::<u64>()),
    };
    NamedTrace {
        name: format!("random-{idx}"),
        trace: TraceSpec {
            branches,
            interleave,
        }
        .build(),
    }
}

/// The adversarial corpus: every canned case, then random compositions
/// up to `cases` total (seeded, fully deterministic). The canned cases
/// are always included, so fewer than their count still yields them all.
pub fn corpus(seed: u64, cases: usize) -> Vec<NamedTrace> {
    let mut out = canned_cases();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx = 0;
    while out.len() < cases {
        out.push(random_case(&mut rng, idx));
        idx += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_expand_as_specified() {
        let script = BranchScript::new(
            0x40,
            vec![
                Segment::Run {
                    taken: true,
                    len: 3,
                },
                Segment::Loop { trip: 2, exits: 1 },
                Segment::Pattern {
                    bits: vec![false, true],
                    repeats: 2,
                },
            ],
        );
        assert_eq!(
            script.outcomes(),
            vec![true, true, true, true, true, false, false, true, false, true]
        );
    }

    #[test]
    fn word_flip_inverts_exactly_at_word_boundaries() {
        let script = BranchScript::new(
            0x40,
            vec![Segment::WordFlip {
                bits: vec![true],
                repeats: 192,
            }],
        );
        let outcomes = script.outcomes();
        assert_eq!(outcomes.len(), 192);
        for (i, &o) in outcomes.iter().enumerate() {
            assert_eq!(o, (i / 64) % 2 == 0, "outcome {i}");
        }
    }

    #[test]
    fn interleaves_preserve_per_branch_order() {
        let spec = TraceSpec {
            branches: vec![
                BranchScript::new(
                    0x100,
                    vec![Segment::Pattern {
                        bits: vec![true, false, true],
                        repeats: 5,
                    }],
                ),
                BranchScript::new(
                    0x200,
                    vec![Segment::Run {
                        taken: false,
                        len: 9,
                    }],
                ),
            ],
            interleave: Interleave::Shuffled(7),
        };
        let trace = spec.build();
        assert_eq!(trace.conditional_count(), 24);
        for script in &spec.branches {
            let want = script.outcomes();
            let got: Vec<bool> = trace
                .conditionals()
                .filter(|r| r.pc == script.pc)
                .map(|r| r.taken)
                .collect();
            assert_eq!(got, want, "branch {:#x}", script.pc);
        }
    }

    #[test]
    fn corpus_is_deterministic_and_named() {
        let a = corpus(9, 24);
        let b = corpus(9, 24);
        assert_eq!(a.len(), 24);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.trace.records(), y.trace.records());
        }
        let c = corpus(10, 24);
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.trace.records() != y.trace.records()),
            "different seeds should differ"
        );
    }
}

//! Property-based tests for the trace substrate: the path window against a
//! naive reference model, serialization round-trips, and profile/stats
//! consistency on arbitrary traces.

use proptest::prelude::*;

use bp_trace::{
    io, BranchKind, BranchProfile, BranchRecord, InstanceTag, PathWindow, Pc, TagScheme, Trace,
    TraceStats,
};

fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (
        0u64..64,      // small pc space to force instance collisions
        0u64..64,      // target
        any::<bool>(), // taken
        0u8..4,        // kind
    )
        .prop_map(|(pc, target, taken, kind)| BranchRecord {
            pc: pc * 4,
            target: target * 4,
            taken,
            kind: match kind {
                0 => BranchKind::Conditional,
                1 => BranchKind::Call,
                2 => BranchKind::Return,
                _ => BranchKind::Jump,
            },
        })
}

fn arb_trace(max: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_record(), 0..max).prop_map(Trace::from_records)
}

/// Reference implementation of the §3.2 tagging semantics: given the raw
/// list of conditional records in the window (oldest first) and the total
/// backward count, name every instance the slow way.
fn reference_tags(window: &[BranchRecord]) -> Vec<(InstanceTag, bool)> {
    let mut out = Vec::new();
    let mut occurrence_seen: Vec<(Pc, u16)> = Vec::new();
    let mut iteration_seen: Vec<(Pc, u64)> = Vec::new();
    // Walk most-recent first.
    for (i, rec) in window.iter().enumerate().rev() {
        let backwards_since = window[i + 1..].iter().filter(|r| r.is_backward()).count() as u64;
        let occ = occurrence_seen
            .iter()
            .filter(|(pc, _)| *pc == rec.pc)
            .count() as u16;
        occurrence_seen.push((rec.pc, occ));
        out.push((InstanceTag::occurrence(rec.pc, occ), rec.taken));
        if !iteration_seen
            .iter()
            .any(|&(pc, b)| pc == rec.pc && b == backwards_since)
        {
            iteration_seen.push((rec.pc, backwards_since));
            out.push((
                InstanceTag::iteration(rec.pc, backwards_since as u16),
                rec.taken,
            ));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn window_matches_reference_model(records in prop::collection::vec(arb_record(), 0..120), cap in 1usize..24) {
        let mut window = PathWindow::new(cap);
        let mut model: Vec<BranchRecord> = Vec::new();
        for rec in &records {
            // Query before push, like the analyses do.
            let mut tags = Vec::new();
            window.visible_tags(&mut tags);
            let expected = reference_tags(&model);
            let mut got = tags.clone();
            let mut want = expected.clone();
            got.sort();
            want.sort();
            prop_assert_eq!(got, want);

            // Single lookups agree with the bulk listing.
            for (tag, outcome) in &tags {
                prop_assert_eq!(window.lookup(*tag), Some(*outcome));
            }

            window.push(rec);
            if rec.is_conditional() {
                model.push(*rec);
                if model.len() > cap {
                    model.remove(0);
                }
            }
        }
    }

    #[test]
    fn io_roundtrip(trace in arb_trace(200)) {
        let mut buf = Vec::new();
        io::write_trace(&mut buf, &trace).expect("write never fails to a Vec");
        let back = io::read_trace(buf.as_slice()).expect("decode what we encoded");
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn truncated_stream_never_panics(trace in arb_trace(60), cut in 0usize..40) {
        let mut buf = Vec::new();
        io::write_trace(&mut buf, &trace).unwrap();
        let cut = cut.min(buf.len());
        // Must error or succeed, never panic; success only for full stream.
        let _ = io::read_trace(&buf[..buf.len() - cut]);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        // Errors are fine; panics and unbounded allocation are not.
        let _ = io::read_trace(bytes.as_slice());
        if let Ok(reader) = io::TraceReader::new(bytes.as_slice()) {
            // Cap iteration: the header may claim an enormous count, but a
            // short buffer must error out almost immediately.
            for item in reader.take(1000) {
                if item.is_err() {
                    break;
                }
            }
        }
    }

    #[test]
    fn streaming_and_bulk_decoders_agree(trace in arb_trace(120)) {
        let mut buf = Vec::new();
        io::write_trace(&mut buf, &trace).unwrap();
        let bulk = io::read_trace(buf.as_slice()).unwrap();
        let streamed: Result<Vec<_>, _> = io::TraceReader::new(buf.as_slice()).unwrap().collect();
        prop_assert_eq!(streamed.unwrap(), bulk.records());
    }

    #[test]
    fn stats_and_profile_agree(trace in arb_trace(300)) {
        let stats = TraceStats::of(&trace);
        let profile = BranchProfile::of(&trace);
        prop_assert_eq!(stats.dynamic_conditional, profile.dynamic_count());
        prop_assert_eq!(stats.static_conditional as usize, profile.static_count());
        let taken_sum: u64 = profile.iter().map(|(_, e)| e.taken).sum();
        prop_assert_eq!(stats.taken, taken_sum);
        // Ideal static can never beat perfection nor lose to 50% per branch.
        let acc = profile.ideal_static_accuracy();
        if profile.dynamic_count() > 0 {
            prop_assert!((0.5..=1.0).contains(&acc));
        }
    }

    #[test]
    fn window_len_never_exceeds_capacity(records in prop::collection::vec(arb_record(), 0..150), cap in 1usize..16) {
        let mut window = PathWindow::new(cap);
        for rec in &records {
            window.push(rec);
            prop_assert!(window.len() <= cap);
        }
    }

    #[test]
    fn tags_have_consistent_schemes(records in prop::collection::vec(arb_record(), 0..80)) {
        let mut window = PathWindow::new(16);
        let mut tags = Vec::new();
        for rec in &records {
            window.push(rec);
        }
        window.visible_tags(&mut tags);
        // Occurrence tags of one pc form a contiguous 0..n index range.
        for (tag, _) in &tags {
            if tag.scheme == TagScheme::Occurrence && tag.index > 0 {
                let predecessor = InstanceTag::occurrence(tag.pc, tag.index - 1);
                prop_assert!(
                    tags.iter().any(|(t, _)| *t == predecessor),
                    "occurrence {} of {:#x} present without {}",
                    tag.index, tag.pc, tag.index - 1
                );
            }
        }
    }
}

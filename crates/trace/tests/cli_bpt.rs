//! End-to-end tests of the `bpt` trace-inspection CLI.

use std::process::Command;

use bp_trace::{io, BranchRecord, Trace};

fn bpt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bpt"))
}

fn sample_file(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bpt-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let trace = Trace::from_records(
        (0..200)
            .map(|i| BranchRecord::conditional(0x100 + (i % 5) * 4, i % 3 == 0))
            .collect(),
    );
    let mut buf = Vec::new();
    io::write_trace(&mut buf, &trace).expect("encode");
    std::fs::write(&path, buf).expect("write file");
    path
}

#[test]
fn info_reports_counts() {
    let path = sample_file("info.bpt");
    let out = bpt().arg("info").arg(&path).output().expect("run bpt");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("conditional branches: 200"), "{text}");
    assert!(text.contains("static sites:         5"), "{text}");
}

#[test]
fn head_prints_requested_records() {
    let path = sample_file("head.bpt");
    let out = bpt()
        .args(["head", path.to_str().unwrap(), "3"])
        .output()
        .expect("run bpt");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Header + 3 records.
    assert_eq!(text.lines().count(), 4, "{text}");
    assert!(text.contains("0x100"));
}

#[test]
fn verify_accepts_good_and_rejects_corrupt() {
    let path = sample_file("verify.bpt");
    let ok = bpt().arg("verify").arg(&path).output().expect("run bpt");
    assert!(ok.status.success());
    assert!(String::from_utf8_lossy(&ok.stdout).contains("ok: 200"));

    // Truncate the file: verify must fail with a diagnostic.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
    let bad = bpt().arg("verify").arg(&path).output().expect("run bpt");
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("corrupt"));
}

#[test]
fn biases_lists_heaviest_branches() {
    let path = sample_file("biases.bpt");
    let out = bpt()
        .args(["biases", path.to_str().unwrap(), "2"])
        .output()
        .expect("run bpt");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ideal static accuracy"), "{text}");
    // Header + 2 rows + summary line.
    assert_eq!(text.lines().count(), 4, "{text}");
}

#[test]
fn unknown_command_and_missing_file_fail_cleanly() {
    let out = bpt().args(["frobnicate", "x"]).output().expect("run bpt");
    assert!(!out.status.success());
    let out = bpt()
        .args(["info", "/nonexistent/definitely-missing.bpt"])
        .output()
        .expect("run bpt");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}

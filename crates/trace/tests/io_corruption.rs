//! Exhaustive corruption tests for `bp_trace::io`: every possible
//! truncation point, every magic corruption, hostile header counts, and
//! single-byte mutations must all surface as typed [`TraceIoError`]s —
//! never a panic, a hang, or a silently wrong trace.

use bp_trace::io::{read_trace, write_trace, TraceIoError, TraceReader};
use bp_trace::{BranchKind, BranchRecord, Trace};

/// A small but varied trace: different kinds, forward and backward
/// targets, and multi-byte varint pcs.
fn sample_trace() -> Trace {
    Trace::from_records(vec![
        BranchRecord::conditional(0x1000, true),
        BranchRecord::conditional(0x1004, false).with_target(0x0ff0),
        BranchRecord {
            pc: 0x2000,
            target: 0x2_0000,
            taken: true,
            kind: BranchKind::Call,
        },
        BranchRecord {
            pc: 0x2_0008,
            target: 0x2004,
            taken: true,
            kind: BranchKind::Return,
        },
        BranchRecord {
            pc: u64::MAX - 7,
            target: 0x40,
            taken: false,
            kind: BranchKind::Jump,
        },
    ])
}

fn encode(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace(&mut buf, trace).expect("encoding to a Vec cannot fail");
    buf
}

#[test]
fn every_truncation_point_is_a_typed_error() {
    let full = encode(&sample_trace());
    // Cutting the stream anywhere before the end must produce a typed
    // error: Io(UnexpectedEof) mid-read, BadMagic for a clipped magic
    // that still read 4 bytes — never Ok, never a panic.
    for cut in 0..full.len() {
        let err = read_trace(&full[..cut]).expect_err("truncated stream must not decode");
        match err {
            TraceIoError::Io(e) => {
                assert_eq!(
                    e.kind(),
                    std::io::ErrorKind::UnexpectedEof,
                    "cut at {cut} gave unexpected io error {e}"
                );
            }
            TraceIoError::BadMagic | TraceIoError::Corrupt(_) => {}
        }
    }
    // The untruncated stream still decodes (the loop above really did
    // exercise proper prefixes of a valid encoding).
    assert_eq!(
        read_trace(full.as_slice()).expect("full stream"),
        sample_trace()
    );
}

#[test]
fn every_magic_corruption_is_bad_magic() {
    let full = encode(&sample_trace());
    for byte in 0..4 {
        for flip in 1..=255u8 {
            let mut bad = full.clone();
            bad[byte] ^= flip;
            assert!(
                matches!(read_trace(bad.as_slice()), Err(TraceIoError::BadMagic)),
                "corrupting magic byte {byte} with ^{flip:#04x} must be BadMagic"
            );
        }
    }
}

#[test]
fn inflated_record_count_errors_without_overallocating() {
    // Magic + a varint claiming u64::MAX records, then nothing: the
    // reader must not trust the header's allocation hint.
    let mut buf = b"BPT1".to_vec();
    buf.extend_from_slice(&[0xff; 9]);
    buf.push(0x01); // 10-byte varint = u64::MAX
    match read_trace(buf.as_slice()) {
        Err(TraceIoError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        other => panic!("expected truncation error, got {other:?}"),
    }

    // Same header via the streaming reader: remaining() reports the
    // hostile count, but iteration fails fast instead of spinning.
    let reader = TraceReader::new(buf.as_slice()).expect("header parses");
    assert_eq!(reader.remaining(), u64::MAX);
    let mut yielded = 0usize;
    for item in reader {
        yielded += 1;
        assert!(item.is_err(), "no record bytes exist to decode");
        assert!(yielded <= 1, "poisoned reader must stop after one error");
    }
}

#[test]
fn overlong_varint_in_header_is_corrupt() {
    let mut buf = b"BPT1".to_vec();
    buf.extend_from_slice(&[0x80; 10]);
    buf.push(0x00); // 11 continuation-ish bytes: varint too long
    assert!(matches!(
        read_trace(buf.as_slice()),
        Err(TraceIoError::Corrupt(_))
    ));
}

#[test]
fn invalid_kind_codes_are_corrupt_not_panic() {
    // Encode one record, then force its flags byte to each invalid kind.
    let trace = Trace::from_records(vec![BranchRecord::conditional(0x10, false)]);
    let full = encode(&trace);
    let flags_at = 4 + 1; // magic + 1-byte count varint
    for kind_code in 4..=127u8 {
        let mut bad = full.clone();
        bad[flags_at] = kind_code << 1;
        match read_trace(bad.as_slice()) {
            Err(TraceIoError::Corrupt(what)) => assert!(!what.is_empty()),
            other => panic!("kind code {kind_code} must be Corrupt, got {other:?}"),
        }
    }
}

#[test]
fn single_byte_mutations_never_panic_and_errors_are_typed() {
    let full = encode(&sample_trace());
    for pos in 0..full.len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut bad = full.clone();
            bad[pos] ^= flip;
            // Any outcome is fine except a panic; errors must render.
            match read_trace(bad.as_slice()) {
                Ok(_) => {}
                Err(e) => assert!(!e.to_string().is_empty()),
            }
        }
    }
}

#[test]
fn mid_record_cut_yields_clean_prefix_then_poison() {
    let trace = Trace::from_records(
        (0..16)
            .map(|i| BranchRecord::conditional(0x100 + i * 4, i % 2 == 0))
            .collect(),
    );
    let full = encode(&trace);
    // Remove the last byte: the final record is clipped mid-varint.
    let clipped = &full[..full.len() - 1];
    let mut reader = TraceReader::new(clipped).expect("header intact");
    let mut decoded = Vec::new();
    let mut saw_error = false;
    for item in reader.by_ref() {
        match item {
            Ok(rec) => decoded.push(rec),
            Err(e) => {
                assert!(matches!(e, TraceIoError::Io(_) | TraceIoError::Corrupt(_)));
                saw_error = true;
            }
        }
    }
    assert!(saw_error, "the clipped record must surface an error");
    assert_eq!(decoded, trace.records()[..15], "intact prefix decodes");
    assert!(reader.next().is_none(), "reader stays poisoned");
}

#[test]
fn empty_and_tiny_streams_error_cleanly() {
    for bytes in [&b""[..], b"B", b"BP", b"BPT", b"BPT1"] {
        let err = read_trace(bytes).expect_err("incomplete stream");
        assert!(!err.to_string().is_empty());
        // The error chain is inspectable down to the io cause.
        if let TraceIoError::Io(e) = &err {
            assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
        }
    }
}

//! Corruption tests for the chunk-framed `BPT2` stream format: every
//! truncation point, every magic corruption, hostile frame counts,
//! single-byte mutations, and hostile file tails must all surface as
//! typed [`TraceIoError`]s — never a panic, a hang, an oversized
//! allocation, or a silently wrong trace. These port the `BPT1`
//! guarantees in `io_corruption.rs` to the streaming reader and the
//! windowed [`FileTraceSource`].

use std::path::PathBuf;

use bp_trace::io::{read_chunked_trace, ChunkReader, ChunkWriter, FileTraceSource, TraceIoError};
use bp_trace::{BranchKind, BranchRecord, Trace, TraceSink, TraceSource, CHUNK_RECORDS};

/// A small but varied trace: different kinds, forward and backward
/// targets, and multi-byte varint pcs.
fn sample_trace() -> Trace {
    Trace::from_records(vec![
        BranchRecord::conditional(0x1000, true),
        BranchRecord::conditional(0x1004, false).with_target(0x0ff0),
        BranchRecord {
            pc: 0x2000,
            target: 0x2_0000,
            taken: true,
            kind: BranchKind::Call,
        },
        BranchRecord {
            pc: 0x2_0008,
            target: 0x2004,
            taken: true,
            kind: BranchKind::Return,
        },
        BranchRecord {
            pc: u64::MAX - 7,
            target: 0x40,
            taken: false,
            kind: BranchKind::Jump,
        },
    ])
}

/// Encodes `trace` as a `BPT2` stream, one frame per `chunk` records.
fn encode_chunked(trace: &Trace, chunk: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut writer = ChunkWriter::new(&mut buf).expect("encoding to a Vec cannot fail");
    for frame in trace.records().chunks(chunk) {
        writer.chunk(frame);
    }
    writer.finish().expect("encoding to a Vec cannot fail");
    buf
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "bpt2-corruption-{}-{name}.bpt2",
        std::process::id()
    ));
    p
}

#[test]
fn every_truncation_point_is_a_typed_error() {
    for frame in [2, 5] {
        let full = encode_chunked(&sample_trace(), frame);
        // Cutting the stream anywhere before the end must produce a typed
        // error — the footer is the last byte, so every proper prefix is
        // missing at least the end-of-stream structure.
        for cut in 0..full.len() {
            let err =
                read_chunked_trace(&full[..cut]).expect_err("truncated stream must not decode");
            match err {
                TraceIoError::Io(e) => {
                    assert_eq!(
                        e.kind(),
                        std::io::ErrorKind::UnexpectedEof,
                        "cut at {cut} gave unexpected io error {e}"
                    );
                }
                TraceIoError::BadMagic | TraceIoError::Corrupt(_) => {}
            }
        }
        // The untruncated stream still decodes (the loop above really did
        // exercise proper prefixes of a valid encoding).
        assert_eq!(
            read_chunked_trace(full.as_slice()).expect("full stream"),
            sample_trace()
        );
    }
}

#[test]
fn every_magic_corruption_is_bad_magic() {
    let full = encode_chunked(&sample_trace(), 5);
    for byte in 0..4 {
        for flip in 1..=255u8 {
            let mut bad = full.clone();
            bad[byte] ^= flip;
            assert!(
                matches!(
                    read_chunked_trace(bad.as_slice()),
                    Err(TraceIoError::BadMagic)
                ),
                "corrupting magic byte {byte} with ^{flip:#04x} must be BadMagic"
            );
        }
    }
}

#[test]
fn hostile_frame_count_errors_without_overallocating() {
    // Magic + a frame claiming u64::MAX records, then nothing: the reader
    // must cap its reservation and fail fast on the missing bytes.
    let mut buf = b"BPT2".to_vec();
    buf.extend_from_slice(&[0xff; 9]);
    buf.push(0x01); // 10-byte varint = u64::MAX
    let mut reader = ChunkReader::new(buf.as_slice()).expect("magic parses");
    let mut chunk = Vec::new();
    match reader.next_chunk(&mut chunk) {
        Err(TraceIoError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        other => panic!("expected truncation error, got {other:?}"),
    }
    assert!(
        chunk.capacity() <= CHUNK_RECORDS,
        "hostile count must not drive allocation past one chunk \
         (capacity {})",
        chunk.capacity()
    );
    // The failed reader is poisoned: later calls repeat a typed error
    // instead of fabricating a clean end of stream.
    assert!(matches!(
        reader.next_chunk(&mut chunk),
        Err(TraceIoError::Corrupt(_))
    ));
}

#[test]
fn overlong_varint_in_frame_header_is_corrupt() {
    let mut buf = b"BPT2".to_vec();
    buf.extend_from_slice(&[0x80; 10]);
    buf.push(0x00); // 11 continuation-ish bytes: varint too long
    assert!(matches!(
        read_chunked_trace(buf.as_slice()),
        Err(TraceIoError::Corrupt(_))
    ));
}

#[test]
fn invalid_kind_codes_are_corrupt_not_panic() {
    // Encode one record, then force its flags byte to each invalid kind.
    let trace = Trace::from_records(vec![BranchRecord::conditional(0x10, false)]);
    let full = encode_chunked(&trace, 1);
    let flags_at = 4 + 1; // magic + 1-byte frame count varint
    for kind_code in 4..=127u8 {
        let mut bad = full.clone();
        bad[flags_at] = kind_code << 1;
        match read_chunked_trace(bad.as_slice()) {
            Err(TraceIoError::Corrupt(what)) => assert!(!what.is_empty()),
            other => panic!("kind code {kind_code} must be Corrupt, got {other:?}"),
        }
    }
}

#[test]
fn lying_footer_is_corrupt() {
    let mut full = encode_chunked(&sample_trace(), 5);
    let last = full.len() - 1;
    full[last] = full[last].wrapping_add(1); // footer now disagrees
    match read_chunked_trace(full.as_slice()) {
        Err(TraceIoError::Corrupt(what)) => assert!(what.contains("footer")),
        other => panic!("footer mismatch must be Corrupt, got {other:?}"),
    }
}

#[test]
fn unfinished_writer_leaves_a_rejected_stream() {
    // A crashed run drops the writer without `finish`: no end marker, no
    // footer. Readers must reject the stream rather than trust it.
    let mut buf = Vec::new();
    let writer = ChunkWriter::new(&mut buf).expect("magic write");
    let mut writer = writer;
    writer.chunk(sample_trace().records());
    drop(writer);
    match read_chunked_trace(buf.as_slice()) {
        Err(TraceIoError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        other => panic!("unfinished stream must be a truncation error, got {other:?}"),
    }
}

#[test]
fn single_byte_mutations_never_panic_and_errors_are_typed() {
    let full = encode_chunked(&sample_trace(), 2);
    for pos in 0..full.len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut bad = full.clone();
            bad[pos] ^= flip;
            // Any outcome is fine except a panic; errors must render.
            match read_chunked_trace(bad.as_slice()) {
                Ok(_) => {}
                Err(e) => assert!(!e.to_string().is_empty()),
            }
        }
    }
}

#[test]
fn mid_stream_cut_yields_clean_prefix_then_poison() {
    let trace = Trace::from_records(
        (0..16)
            .map(|i| BranchRecord::conditional(0x100 + i * 4, i % 2 == 0))
            .collect(),
    );
    let full = encode_chunked(&trace, 4);
    // Remove the last two bytes: the footer (and end marker) are gone,
    // but every record frame is intact.
    let clipped = &full[..full.len() - 2];
    let mut reader = ChunkReader::new(clipped).expect("magic intact");
    let mut decoded = Vec::new();
    let mut chunk = Vec::new();
    let err = loop {
        match reader.next_chunk(&mut chunk) {
            Ok(true) => decoded.extend_from_slice(&chunk),
            Ok(false) => panic!("clipped stream must not end cleanly"),
            Err(e) => break e,
        }
    };
    assert!(matches!(
        err,
        TraceIoError::Io(_) | TraceIoError::Corrupt(_)
    ));
    assert_eq!(decoded, trace.records(), "intact frames decode");
    assert!(
        matches!(reader.next_chunk(&mut chunk), Err(TraceIoError::Corrupt(_))),
        "reader stays poisoned"
    );
}

#[test]
fn empty_and_tiny_streams_error_cleanly() {
    for bytes in [&b""[..], b"B", b"BP", b"BPT", b"BPT2", b"BPT2\x00"] {
        let err = read_chunked_trace(bytes).expect_err("incomplete stream");
        assert!(!err.to_string().is_empty());
        if let TraceIoError::Io(e) = &err {
            assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
        }
    }
}

#[test]
fn file_source_rejects_hostile_tails_on_open() {
    let full = encode_chunked(&sample_trace(), 2);
    let path = temp_path("hostile-tails");

    // A pristine file opens and reports the exact record count.
    std::fs::write(&path, &full).expect("write");
    let source = FileTraceSource::open(&path).expect("valid file opens");
    assert_eq!(source.len(), 5);
    assert!(!source.is_empty());
    assert_eq!(source.len_hint(), Some(5));
    assert_eq!(source.path(), path.as_path());

    // Magic flips are BadMagic.
    let mut bad = full.clone();
    bad[0] ^= 0x20;
    std::fs::write(&path, &bad).expect("write");
    assert!(matches!(
        FileTraceSource::open(&path),
        Err(TraceIoError::BadMagic)
    ));

    // Every truncation is rejected: usually up front at open (the end
    // marker + footer are gone), but record bytes can accidentally end in
    // `0x00, small-varint` and impersonate a tail — those must then fail
    // the scan instead, since the writer never emits empty frames and so
    // the first zero frame count a reader meets is the true end marker.
    for cut in 0..full.len() {
        std::fs::write(&path, &full[..cut]).expect("write");
        match FileTraceSource::open(&path) {
            Err(e) => assert!(!e.to_string().is_empty()),
            Ok(source) => {
                let res = source.scan(&mut |_| {});
                assert!(
                    res.is_err(),
                    "cut at {cut} decoded cleanly from a truncated file"
                );
            }
        }
    }

    // An unterminated footer varint (high bit set on the last byte) is
    // Corrupt, not a wild length.
    let mut bad = full.clone();
    let last = bad.len() - 1;
    bad[last] |= 0x80;
    std::fs::write(&path, &bad).expect("write");
    assert!(matches!(
        FileTraceSource::open(&path),
        Err(TraceIoError::Corrupt(_))
    ));

    // A tail whose end marker byte is nonzero is Corrupt.
    let mut bad = full.clone();
    let marker = bad.len() - 2; // single-byte footer ⇒ marker just before
    assert_eq!(bad[marker], 0, "test encoding has a one-byte footer");
    bad[marker] = 0x07;
    std::fs::write(&path, &bad).expect("write");
    assert!(matches!(
        FileTraceSource::open(&path),
        Err(TraceIoError::Corrupt(_))
    ));

    std::fs::remove_file(&path).ok();
}

#[test]
fn file_source_surfaces_body_corruption_during_scan() {
    // Open only validates the tail; rot in the middle of the file must
    // surface as a typed scan error, not a panic or silent truncation.
    let trace = Trace::from_records(
        (0..256)
            .map(|i| BranchRecord::conditional(0x400 + i * 4, i % 3 == 0))
            .collect(),
    );
    let full = encode_chunked(&trace, 32);
    let mut bad = full.clone();
    bad[full.len() / 2] = 0xff; // clobber a record mid-file
    let path = temp_path("body-rot");
    std::fs::write(&path, &bad).expect("write");
    let source = FileTraceSource::open(&path).expect("tail still validates");
    let mut seen = 0u64;
    let err = source
        .scan(&mut |chunk| seen += chunk.len() as u64)
        .expect_err("body corruption must fail the scan");
    assert!(!err.to_string().is_empty());
    assert!(seen < trace.records().len() as u64);

    // The pristine file scans back byte-identically through the window.
    std::fs::write(&path, &full).expect("write");
    let source = FileTraceSource::open(&path).expect("valid file opens");
    let mut records = Vec::new();
    source
        .scan(&mut |chunk| records.extend_from_slice(chunk))
        .expect("valid scan");
    assert_eq!(records, trace.records());
    std::fs::remove_file(&path).ok();
}

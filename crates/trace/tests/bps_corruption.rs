//! Corruption tests for the `.bps` packed-artifact store: every
//! truncation boundary, magic/kind/version flip, fingerprint mismatch,
//! and lying plane length or offset must surface as a typed
//! [`BpsError`] — never a panic, an oversized allocation, or a silently
//! wrong artifact. These port the `BPT2` guarantees in
//! `bpt2_corruption.rs` to the mmap-able bit-plane format, with the
//! extra twist that the file length is validated *before* the file is
//! handed to `mmap(2)` or sliced.

use std::path::PathBuf;

use bp_trace::bps::{open_streams, write_streams, BpsError};
use bp_trace::sidecar::Sidecar;
use bp_trace::{BranchRecord, BranchStreams, Trace};

const CONFIG: u64 = 0x5eed_cafe;

fn sample_streams() -> BranchStreams {
    let recs: Vec<BranchRecord> = (0..4000u64)
        .map(|i| BranchRecord::conditional(0x10 + (i % 13) * 8, (i / (1 + i % 5)) % 2 == 0))
        .collect();
    BranchStreams::of(&Trace::from_records(recs))
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bps-corruption-{}-{name}.bps", std::process::id()));
    p
}

/// Writes the sample artifact and returns its raw bytes alongside the
/// path, leaving a valid sidecar in place.
fn written(name: &str) -> (PathBuf, Vec<u8>) {
    let path = temp_path(name);
    write_streams(&path, &sample_streams(), CONFIG).expect("write artifact");
    let bytes = std::fs::read(&path).expect("read artifact back");
    (path, bytes)
}

fn cleanup(path: &PathBuf) {
    std::fs::remove_file(path).ok();
    std::fs::remove_file(Sidecar::path_for(path)).ok();
}

#[test]
fn pristine_artifact_round_trips() {
    let (path, bytes) = written("pristine");
    assert!(bytes.len().is_multiple_of(8));
    let opened = open_streams(&path, CONFIG).expect("open");
    assert_eq!(opened.streams, sample_streams());
    cleanup(&path);
}

#[test]
fn every_truncation_boundary_is_a_typed_error() {
    let (path, bytes) = written("truncation");
    // Every proper prefix must fail with a typed error: prefixes that are
    // not whole words fail the pre-mmap length check, whole-word prefixes
    // fail the declared-length or structure checks.
    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).expect("write truncated");
        let err = open_streams(&path, CONFIG).expect_err("truncated artifact must not open");
        assert!(!err.to_string().is_empty(), "cut at {cut}");
        assert!(
            matches!(
                err,
                BpsError::Truncated(_) | BpsError::Corrupt(_) | BpsError::Io(_)
            ),
            "cut at {cut} gave {err:?}"
        );
    }
    // The untruncated artifact still opens (the loop really did exercise
    // proper prefixes of a valid file).
    std::fs::write(&path, &bytes).expect("restore");
    assert!(open_streams(&path, CONFIG).is_ok());
    cleanup(&path);
}

#[test]
fn every_magic_and_version_flip_is_rejected() {
    let (path, bytes) = written("magic");
    // Bytes 0..4 are the magic (a "BPS2" version flip lands here); byte 4
    // is the kind; bytes 5..8 are reserved and must be zero.
    for byte in 0..8 {
        for flip in [0x01u8, 0x20, 0xff] {
            let mut bad = bytes.clone();
            bad[byte] ^= flip;
            std::fs::write(&path, &bad).expect("write");
            let err = open_streams(&path, CONFIG).expect_err("flipped header must not open");
            assert!(
                matches!(err, BpsError::BadMagic | BpsError::WrongKind),
                "byte {byte} ^ {flip:#04x} gave {err:?}"
            );
        }
    }
    cleanup(&path);
}

#[test]
fn wrong_kind_byte_is_wrong_kind() {
    let (path, mut bytes) = written("kind");
    bytes[4] = bp_trace::bps::MATRIX_KIND; // a matrix where streams were expected
    std::fs::write(&path, &bytes).expect("write");
    // Flipping the kind changes the header word, so either error order
    // would be sound; the kind check runs before the fingerprint.
    assert!(matches!(
        open_streams(&path, CONFIG),
        Err(BpsError::WrongKind)
    ));
    cleanup(&path);
}

#[test]
fn fingerprint_mismatches_are_typed() {
    let (path, _) = written("fingerprint");
    // Wrong question: the config fingerprint differs.
    assert!(matches!(
        open_streams(&path, CONFIG ^ 1),
        Err(BpsError::ConfigMismatch)
    ));
    // Rotten sidecar content hash.
    Sidecar {
        config: CONFIG,
        content: 0xbad,
    }
    .write(&path)
    .expect("write sidecar");
    assert!(matches!(
        open_streams(&path, CONFIG),
        Err(BpsError::ContentMismatch)
    ));
    // Missing or malformed sidecar.
    std::fs::remove_file(Sidecar::path_for(&path)).expect("remove sidecar");
    assert!(matches!(
        open_streams(&path, CONFIG),
        Err(BpsError::Sidecar(_))
    ));
    std::fs::write(Sidecar::path_for(&path), "bpfp9 0 0\n").expect("future sidecar");
    assert!(matches!(
        open_streams(&path, CONFIG),
        Err(BpsError::Sidecar(_))
    ));
    cleanup(&path);
}

#[test]
fn lying_plane_lengths_and_offsets_are_corrupt() {
    let (path, bytes) = written("lying-index");
    let word =
        |i: usize| -> u64 { u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap()) };
    let patch = |i: usize, v: u64| -> Vec<u8> {
        let mut bad = bytes.clone();
        bad[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        bad
    };
    let branch_count = word(2) as usize;
    assert!(branch_count >= 2, "sample artifact has several branches");

    // Inflate the first stream's bit length: the next entry's offset no
    // longer matches, or (for the last entry) the file is too short.
    for entry in [0usize, branch_count - 1] {
        let len_at = 4 + 3 * entry + 1;
        std::fs::write(&path, patch(len_at, word(len_at) + 64)).expect("write");
        let err = open_streams(&path, CONFIG).expect_err("lying length must not open");
        assert!(
            matches!(err, BpsError::Corrupt(_) | BpsError::Truncated(_)),
            "entry {entry} gave {err:?}"
        );
    }
    // A huge length must fail cleanly (overflow-checked), not allocate.
    let len_at = 4 + 3 * (branch_count - 1) + 1;
    std::fs::write(&path, patch(len_at, u64::MAX - 7)).expect("write");
    assert!(matches!(
        open_streams(&path, CONFIG),
        Err(BpsError::Corrupt(_) | BpsError::Truncated(_))
    ));

    // A shifted plane offset breaks the running-offset check.
    let off_at = 4 + 3 + 2; // one 3-word index entry, then the offset word
    std::fs::write(&path, patch(off_at, word(off_at) + 1)).expect("write");
    assert!(matches!(
        open_streams(&path, CONFIG),
        Err(BpsError::Corrupt(_))
    ));

    // An unsorted index is rejected (it would also break merge keys).
    let pc_at = 4 + 3;
    std::fs::write(&path, patch(pc_at, word(4))).expect("write");
    assert!(matches!(
        open_streams(&path, CONFIG),
        Err(BpsError::Corrupt(_))
    ));

    // A lying declared total length is caught against the real file.
    std::fs::write(&path, patch(1, word(1) + 8)).expect("write");
    assert!(matches!(
        open_streams(&path, CONFIG),
        Err(BpsError::Corrupt(_))
    ));

    // A lying dynamic total is caught against the summed stream lengths.
    std::fs::write(&path, patch(3, word(3) + 1)).expect("write");
    assert!(matches!(
        open_streams(&path, CONFIG),
        Err(BpsError::Corrupt(_))
    ));
    cleanup(&path);
}

#[test]
fn single_byte_mutations_never_panic_and_errors_render() {
    let (path, bytes) = written("mutations");
    // Step through the file (every byte for the header and index, strided
    // through the plane area) flipping bits; any outcome except a panic
    // is acceptable, and errors must have a message. Plane-area flips are
    // caught structurally only when they hit padding bits — the content
    // fingerprint deliberately covers the header+index, with the planes'
    // integrity riding on the length/offset/padding checks, exactly like
    // the record-count stand-in of `.bpt2` sidecars.
    let header_end = (4 + 3 * (u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize)) * 8;
    let positions: Vec<usize> = (0..header_end)
        .chain((header_end..bytes.len()).step_by(97))
        .collect();
    for pos in positions {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut bad = bytes.clone();
            bad[pos] ^= flip;
            std::fs::write(&path, &bad).expect("write");
            match open_streams(&path, CONFIG) {
                Ok(opened) => drop(opened),
                Err(e) => assert!(!e.to_string().is_empty(), "pos {pos} flip {flip:#04x}"),
            }
        }
    }
    cleanup(&path);
}

#[test]
fn header_mutations_never_open_silently() {
    let (path, bytes) = written("header-strict");
    // Within the fingerprinted header+index region every flip MUST be
    // rejected — the content hash covers these bytes.
    let header_end = (4 + 3 * (u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize)) * 8;
    for pos in 0..header_end {
        let mut bad = bytes.clone();
        bad[pos] ^= 0xff;
        std::fs::write(&path, &bad).expect("write");
        assert!(
            open_streams(&path, CONFIG).is_err(),
            "header byte {pos} flipped but the artifact still opened"
        );
    }
    cleanup(&path);
}

#[test]
fn padding_bits_past_stream_length_are_corrupt() {
    let (path, bytes) = written("padding");
    let word =
        |i: usize| -> u64 { u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap()) };
    let branch_count = word(2) as usize;
    // Find a stream whose length is not word-aligned and set a bit past
    // its declared end.
    let mut patched = false;
    for entry in 0..branch_count {
        let len = word(4 + 3 * entry + 1);
        let off = word(4 + 3 * entry + 2);
        if len % 64 != 0 {
            let last_word = (off + len.div_ceil(64) - 1) as usize;
            let mut bad = bytes.clone();
            bad[last_word * 8..last_word * 8 + 8]
                .copy_from_slice(&(word(last_word) | (1u64 << 63)).to_le_bytes());
            std::fs::write(&path, &bad).expect("write");
            assert!(
                matches!(open_streams(&path, CONFIG), Err(BpsError::Corrupt(_))),
                "entry {entry}"
            );
            patched = true;
            break;
        }
    }
    assert!(patched, "sample artifact has an unaligned stream");
    cleanup(&path);
}

#[test]
fn tiny_and_empty_files_error_cleanly() {
    let path = temp_path("tiny");
    Sidecar {
        config: CONFIG,
        content: 0,
    }
    .write(&path)
    .expect("sidecar");
    for bytes in [
        &b""[..],
        b"B",
        b"BPS1",
        b"BPS1\x01\x00\x00",
        b"BPS1\x01\x00\x00\x00",
    ] {
        std::fs::write(&path, bytes).expect("write");
        let err = open_streams(&path, CONFIG).expect_err("tiny file must not open");
        assert!(
            matches!(err, BpsError::Truncated(_)),
            "{} bytes",
            bytes.len()
        );
    }
    cleanup(&path);
}

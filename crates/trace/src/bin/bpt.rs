//! `bpt` — inspect `.bpt` trace files (the `bp-trace` binary format, as
//! written by `repro --cache`).
//!
//! ```text
//! bpt info  FILE          header + aggregate statistics
//! bpt head  FILE [N]      print the first N records (default 20)
//! bpt biases FILE [N]     per-branch profile, N heaviest branches
//! bpt verify FILE         decode every record, report corruption
//! ```

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use bp_trace::{io, BranchKind, BranchProfile, Trace, TraceStats};

fn usage() -> ExitCode {
    eprintln!("usage: bpt <info|head|biases|verify> FILE [N]");
    ExitCode::FAILURE
}

fn open(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    io::read_trace(BufReader::new(file)).map_err(|e| format!("cannot decode {path}: {e}"))
}

fn kind_letter(kind: BranchKind) -> char {
    match kind {
        BranchKind::Conditional => 'C',
        BranchKind::Call => 'L',
        BranchKind::Return => 'R',
        BranchKind::Jump => 'J',
    }
}

fn cmd_info(path: &str) -> Result<(), String> {
    let trace = open(path)?;
    let stats = TraceStats::of(&trace);
    println!("records:              {}", trace.len());
    println!("conditional branches: {}", stats.dynamic_conditional);
    println!("static sites:         {}", stats.static_conditional);
    println!("taken rate:           {:.4}", stats.taken_rate());
    println!("backward branches:    {}", stats.backward);
    println!("calls/returns/jumps:  {}", stats.other_transfers);
    println!(
        "execs per static site: {:.1}",
        stats.executions_per_static()
    );
    Ok(())
}

fn cmd_head(path: &str, n: usize) -> Result<(), String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let reader = io::TraceReader::new(BufReader::new(file))
        .map_err(|e| format!("cannot decode {path}: {e}"))?;
    println!("{:<4} {:>12} {:>12} kind taken", "#", "pc", "target");
    for (i, rec) in reader.take(n).enumerate() {
        let rec = rec.map_err(|e| format!("record {i}: {e}"))?;
        println!(
            "{:<4} {:>#12x} {:>#12x}    {} {}",
            i,
            rec.pc,
            rec.target,
            kind_letter(rec.kind),
            if rec.taken { "T" } else { "-" },
        );
    }
    Ok(())
}

fn cmd_biases(path: &str, n: usize) -> Result<(), String> {
    let trace = open(path)?;
    let profile = BranchProfile::of(&trace);
    let mut rows: Vec<_> = profile.iter().collect();
    rows.sort_by_key(|(pc, e)| (std::cmp::Reverse(e.executions), *pc));
    println!(
        "{:>12} {:>10} {:>7} {:>7}",
        "pc", "execs", "taken%", "bias%"
    );
    for (pc, e) in rows.into_iter().take(n) {
        println!(
            "{pc:>#12x} {:>10} {:>7.2} {:>7.2}",
            e.executions,
            e.taken_rate() * 100.0,
            e.bias() * 100.0
        );
    }
    println!(
        "(ideal static accuracy over all branches: {:.2}%)",
        profile.ideal_static_accuracy() * 100.0
    );
    Ok(())
}

fn cmd_verify(path: &str) -> Result<(), String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let reader = io::TraceReader::new(BufReader::new(file))
        .map_err(|e| format!("bad header in {path}: {e}"))?;
    let expected = reader.remaining();
    let mut decoded = 0u64;
    for rec in reader {
        rec.map_err(|e| format!("corrupt at record {decoded}: {e}"))?;
        decoded += 1;
    }
    if decoded != expected {
        return Err(format!("header claims {expected} records, found {decoded}"));
    }
    println!("ok: {decoded} records");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => return usage(),
    };
    let n = args
        .get(2)
        .map(|v| v.parse::<usize>())
        .transpose()
        .unwrap_or(None);

    let result = match cmd {
        "info" => cmd_info(path),
        "head" => cmd_head(path, n.unwrap_or(20)),
        "biases" => cmd_biases(path, n.unwrap_or(20)),
        "verify" => cmd_verify(path),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bpt: {msg}");
            ExitCode::FAILURE
        }
    }
}

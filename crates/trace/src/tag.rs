use serde::{Deserialize, Serialize};

use crate::record::Pc;

/// How a prior branch *instance* is named relative to the current branch
/// (paper §3.2).
///
/// In tight loops several dynamic instances of the same static branch fit in
/// the examined window, so the address alone is ambiguous. The paper tags
/// instances two complementary ways and treats tags from the two schemes as
/// distinct candidates:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TagScheme {
    /// Number instances of a static branch from the current branch
    /// backwards: `A0` is the most recent occurrence of `A`, `A1` the one
    /// before it, and so on. Precise about recency, but cannot pin a branch
    /// to a particular loop iteration when it does not execute every
    /// iteration.
    Occurrence,
    /// Number an instance by how many *backward* branches executed between
    /// it and the current branch. Pins instances to loop iterations, but
    /// names branches from before the loop differently as iterations pass.
    Iteration,
}

impl TagScheme {
    /// Both schemes, in a stable order.
    pub const ALL: [TagScheme; 2] = [TagScheme::Occurrence, TagScheme::Iteration];
}

/// A named instance of a prior static branch, relative to the branch being
/// predicted.
///
/// `index` is the occurrence number ([`TagScheme::Occurrence`]) or the
/// backward-branch count ([`TagScheme::Iteration`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceTag {
    /// Static address of the prior branch.
    pub pc: Pc,
    /// Instance number under `scheme`.
    pub index: u16,
    /// Which tagging scheme `index` is expressed in.
    pub scheme: TagScheme,
}

impl InstanceTag {
    /// Convenience constructor for an occurrence-scheme tag.
    pub fn occurrence(pc: Pc, index: u16) -> Self {
        InstanceTag {
            pc,
            index,
            scheme: TagScheme::Occurrence,
        }
    }

    /// Convenience constructor for an iteration-scheme tag.
    pub fn iteration(pc: Pc, index: u16) -> Self {
        InstanceTag {
            pc,
            index,
            scheme: TagScheme::Iteration,
        }
    }
}

/// The ternary outcome of looking an [`InstanceTag`] up in the path leading
/// to the current branch (paper §3.4).
///
/// A selective history is built from these outcomes: with *k* tags the
/// history has `3^k` possible patterns, each selecting its own two-bit
/// counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TagOutcome {
    /// The tagged instance is in the window and was taken.
    Taken,
    /// The tagged instance is in the window and was not taken.
    NotTaken,
    /// The tagged instance does not appear in the last *n* branches.
    NotInPath,
}

impl TagOutcome {
    /// Radix-3 digit used when composing a selective-history pattern index.
    #[inline]
    pub fn digit(self) -> usize {
        match self {
            TagOutcome::Taken => 0,
            TagOutcome::NotTaken => 1,
            TagOutcome::NotInPath => 2,
        }
    }

    /// Inverse of [`TagOutcome::digit`].
    ///
    /// # Panics
    ///
    /// Panics if `d > 2`.
    #[inline]
    pub fn from_digit(d: usize) -> Self {
        match d {
            0 => TagOutcome::Taken,
            1 => TagOutcome::NotTaken,
            2 => TagOutcome::NotInPath,
            _ => panic!("tag outcome digit out of range: {d}"),
        }
    }

    /// Maps a branch outcome to the corresponding in-path tag outcome.
    #[inline]
    pub fn from_taken(taken: bool) -> Self {
        if taken {
            TagOutcome::Taken
        } else {
            TagOutcome::NotTaken
        }
    }
}

/// Composes the radix-3 pattern index of a sequence of tag outcomes.
///
/// An empty slice yields pattern 0 (the degenerate single-counter history).
pub fn pattern_index(outcomes: &[TagOutcome]) -> usize {
    outcomes.iter().fold(0, |acc, o| acc * 3 + o.digit())
}

/// Number of distinct patterns for a selective history of `k` tags: `3^k`.
pub fn pattern_count(k: usize) -> usize {
    3usize.pow(k as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_roundtrip() {
        for d in 0..3 {
            assert_eq!(TagOutcome::from_digit(d).digit(), d);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digit_out_of_range_panics() {
        let _ = TagOutcome::from_digit(3);
    }

    #[test]
    fn from_taken() {
        assert_eq!(TagOutcome::from_taken(true), TagOutcome::Taken);
        assert_eq!(TagOutcome::from_taken(false), TagOutcome::NotTaken);
    }

    #[test]
    fn pattern_index_radix3() {
        use TagOutcome::*;
        assert_eq!(pattern_index(&[]), 0);
        assert_eq!(pattern_index(&[Taken]), 0);
        assert_eq!(pattern_index(&[NotInPath]), 2);
        assert_eq!(pattern_index(&[Taken, NotTaken, NotInPath]), 5); // 0*9 + 1*3 + 2
        assert_eq!(pattern_index(&[NotInPath, NotInPath, NotInPath]), 26);
    }

    #[test]
    fn pattern_count_powers() {
        assert_eq!(pattern_count(0), 1);
        assert_eq!(pattern_count(1), 3);
        assert_eq!(pattern_count(2), 9);
        assert_eq!(pattern_count(3), 27);
    }

    #[test]
    fn tag_constructors() {
        let a = InstanceTag::occurrence(10, 2);
        let b = InstanceTag::iteration(10, 2);
        assert_ne!(a, b);
        assert_eq!(a.scheme, TagScheme::Occurrence);
        assert_eq!(b.scheme, TagScheme::Iteration);
    }
}
